"""The fleet run report: ledger + traces + aggregate, one document.

The paper's operator-facing claim is that a PFM architecture must be
*inspectable* — what was predicted, what was decided, what was recovered.
This module turns the three artifacts a fleet run leaves behind into one
human-readable report:

- the **trace directory** (per-shard sidecars, supervisor lane, chaos
  records, merged timeline — :mod:`repro.telemetry.tracing`),
- the **ledger** (completed / failed / quarantined shard checkpoints —
  :mod:`repro.fleet.ledger`), and
- the **aggregate document** (:meth:`repro.fleet.aggregate.FleetReport.
  aggregate`).

All three inputs are optional: the report renders whatever subset
exists, which is what makes it usable as a post-mortem tool (a run that
crashed half-way has a trace and a partial ledger, no aggregate).

Two renderers, no dependencies beyond the standard library:
:func:`render_markdown` and :func:`render_html` (the markdown document
wrapped in a minimal self-contained page).  The CLI entry point is
``python -m repro.cli report``.
"""

from __future__ import annotations

import html as _html
import json
import os

from repro.telemetry.tracing import (
    CHAOS_EVENT_PREFIX,
    MERGED_FILE,
    SUPERVISOR_LANE,
    merge_fleet_trace,
    read_merged_trace,
)

#: Span-profile rows per shard in the rendered report (the data dict
#: keeps everything; the renderer caps for readability).
TOP_SPANS = 8


# ----------------------------------------------------------------------
# Collection: artifacts on disk -> one structured dict
# ----------------------------------------------------------------------


def _shard_profiles(records: list[dict]) -> dict[str, dict]:
    """Per-lane span profiles from the merged timeline's span events."""
    profiles: dict[str, dict] = {}
    for doc in records:
        lane = doc.get("lane")
        if lane is None or lane == SUPERVISOR_LANE:
            continue
        profile = profiles.setdefault(lane, {"events": 0, "spans": {}})
        profile["events"] += 1
        if doc.get("event") != "span":
            continue
        row = profile["spans"].setdefault(
            str(doc.get("name", "span")),
            {"count": 0, "sim_seconds": 0.0, "errors": 0},
        )
        row["count"] += 1
        row["sim_seconds"] += float(doc.get("sim_duration", 0.0))
        if doc.get("status") not in (None, "ok"):
            row["errors"] += 1
    return profiles


def _recovery_timeline(records: list[dict]) -> list[dict]:
    """Supervisor-lane events (chaos injections included), in order."""
    return [dict(doc) for doc in records if doc.get("lane") == SUPERVISOR_LANE]


def _ledger_statuses(ledger_path: str) -> list[dict]:
    from repro.fleet.ledger import ShardLedger

    state = ShardLedger(ledger_path).load_entries()
    rows = [
        {"key": key, **status} for key, status in sorted(state.statuses.items())
    ]
    return rows


def quality_rollup(aggregate: dict) -> dict[str, dict]:
    """Sect. 3.3 quality metrics per scenario, from the outcome matrices.

    ``precision = TP/(TP+FP)``, ``recall = TP/(TP+FN)``,
    ``fpr = FP/(FP+TN)`` over the summed per-shard outcome counts (the
    same definitions :class:`repro.telemetry.rolling.
    RollingQualityTracker` streams live).  Scenarios without an outcome
    matrix (e.g. ``no-pfm``, which runs no predictor) are skipped.
    """
    rollup: dict[str, dict] = {}
    for name, scenario in sorted((aggregate.get("scenarios") or {}).items()):
        matrix = scenario.get("outcome_matrix")
        if not matrix:
            continue
        counts = {
            outcome: int(matrix.get(outcome, {}).get("count", 0))
            for outcome in ("TP", "FP", "TN", "FN")
        }

        def _ratio(num: int, den: int) -> float | None:
            return (num / den) if den else None

        rollup[name] = {
            **counts,
            "precision": _ratio(counts["TP"], counts["TP"] + counts["FP"]),
            "recall": _ratio(counts["TP"], counts["TP"] + counts["FN"]),
            "fpr": _ratio(counts["FP"], counts["FP"] + counts["TN"]),
        }
    return rollup


def collect_report(
    trace_dir: str | None = None,
    ledger_path: str | None = None,
    aggregate: dict | str | None = None,
    title: str = "fleet run report",
) -> dict:
    """Gather every available artifact into one report data dict.

    ``aggregate`` accepts the dict itself or a path to the JSON document
    (``repro.cli fleet --out``).  Missing inputs produce empty sections,
    never errors — a post-mortem must render from whatever survived.
    """
    data: dict = {
        "title": title,
        "trace": None,
        "shards": {},
        "timeline": [],
        "statuses": [],
        "quality": {},
        "aggregate": None,
    }

    if isinstance(aggregate, str):
        with open(aggregate, "r", encoding="utf-8") as handle:
            aggregate = json.load(handle)
    if aggregate is not None:
        data["aggregate"] = aggregate
        data["quality"] = quality_rollup(aggregate)

    if trace_dir is not None and os.path.isdir(trace_dir):
        if not os.path.exists(os.path.join(trace_dir, MERGED_FILE)):
            merge_fleet_trace(trace_dir)
        records = read_merged_trace(trace_dir)
        meta = [doc for doc in records if doc.get("event") == "fleet.run_start"]
        data["trace"] = {
            "dir": trace_dir,
            "trace_id": meta[0].get("trace_id") if meta else None,
            "events": len(records),
        }
        data["shards"] = _shard_profiles(records)
        data["timeline"] = _recovery_timeline(records)

    if ledger_path is not None and os.path.exists(ledger_path):
        data["statuses"] = _ledger_statuses(ledger_path)

    return data


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------


def _format_quality(value: float | None) -> str:
    return "n/a" if value is None else f"{value:.4f}"


def _timeline_detail(doc: dict) -> str:
    skip = {"t", "event", "lane", "seq", "span_id"}
    parts = [
        f"{key}={doc[key]}" for key in sorted(doc) if key not in skip
    ]
    return ", ".join(parts)


def render_markdown(data: dict) -> str:
    """The report as GitHub-flavored markdown."""
    lines = [f"# {data['title']}", ""]

    trace = data.get("trace")
    aggregate = data.get("aggregate")
    overview = []
    if trace is not None:
        overview.append(f"- trace: `{trace['dir']}` (id `{trace['trace_id']}`, "
                        f"{trace['events']} merged events)")
    if aggregate is not None:
        overview.append(
            f"- shards aggregated: {aggregate.get('shards', '?')}"
            + (
                f", quarantined: {', '.join(aggregate['quarantined'])}"
                if aggregate.get("quarantined")
                else ""
            )
        )
        recovery = aggregate.get("recovery")
        if recovery:
            overview.append(
                f"- recovery: {recovery.get('retries', 0)} retries, "
                f"{recovery.get('worker_restarts', 0)} worker restarts, "
                f"{recovery.get('infrastructure_failures', 0)} "
                "infrastructure failures absorbed"
            )
    if overview:
        lines += ["## Overview", "", *overview, ""]

    quality = data.get("quality") or {}
    if quality:
        lines += [
            "## Prediction quality (Sect. 3.3 roll-up)",
            "",
            "| scenario | TP | FP | TN | FN | precision | recall | FPR |",
            "|---|---:|---:|---:|---:|---:|---:|---:|",
        ]
        for name, row in quality.items():
            lines.append(
                f"| {name} | {row['TP']} | {row['FP']} | {row['TN']} | "
                f"{row['FN']} | {_format_quality(row['precision'])} | "
                f"{_format_quality(row['recall'])} | "
                f"{_format_quality(row['fpr'])} |"
            )
        lines.append("")

    shards = data.get("shards") or {}
    if shards:
        lines += ["## Per-shard span profiles", ""]
        for lane in sorted(shards):
            profile = shards[lane]
            lines.append(f"### `{lane}` ({profile['events']} events)")
            spans = profile["spans"]
            if not spans:
                lines += ["", "_no spans captured (telemetry off)_", ""]
                continue
            lines += [
                "",
                "| span | count | sim seconds | errors |",
                "|---|---:|---:|---:|",
            ]
            top = sorted(
                spans.items(),
                key=lambda item: (-item[1]["sim_seconds"], item[0]),
            )
            for name, row in top[:TOP_SPANS]:
                lines.append(
                    f"| {name} | {row['count']} | {row['sim_seconds']:.1f} "
                    f"| {row['errors']} |"
                )
            if len(top) > TOP_SPANS:
                lines.append(
                    f"| _... {len(top) - TOP_SPANS} more span names_ | | | |"
                )
            lines.append("")

    timeline = data.get("timeline") or []
    if timeline:
        lines += [
            "## Recovery timeline (supervisor lane)",
            "",
            "| step | event | detail |",
            "|---:|---|---|",
        ]
        for doc in timeline:
            marker = (
                "**" if str(doc.get("event", "")).startswith(
                    CHAOS_EVENT_PREFIX
                ) or doc.get("event") in (
                    "fleet.worker_restart", "fleet.quarantine"
                ) else ""
            )
            lines.append(
                f"| {doc.get('t', 0):g} | {marker}{doc.get('event')}{marker} "
                f"| {_timeline_detail(doc)} |"
            )
        lines.append("")

    statuses = data.get("statuses") or []
    if statuses:
        lines += [
            "## Quarantine & failure causes (ledger)",
            "",
            "| shard | status | kind | attempts | error |",
            "|---|---|---|---:|---|",
        ]
        for row in statuses:
            lines.append(
                f"| {row['key']} | {row.get('status')} | {row.get('kind')} "
                f"| {row.get('attempts')} | {row.get('error')} |"
            )
        lines.append("")

    if len(lines) == 2:
        lines += ["_no artifacts found — nothing to report_", ""]
    return "\n".join(lines)


def render_html(data: dict) -> str:
    """The report as one self-contained HTML page.

    Deliberately simple: the markdown tables are re-rendered as real
    ``<table>`` elements, everything else becomes headings/paragraphs.
    No external assets, so the CI artifact opens anywhere.
    """
    body: list[str] = []
    in_table = False
    for line in render_markdown(data).splitlines():
        stripped = line.strip()
        is_row = stripped.startswith("|") and stripped.endswith("|")
        if in_table and not is_row:
            body.append("</table>")
            in_table = False
        if stripped.startswith("# "):
            body.append(f"<h1>{_html.escape(stripped[2:])}</h1>")
        elif stripped.startswith("## "):
            body.append(f"<h2>{_html.escape(stripped[3:])}</h2>")
        elif stripped.startswith("### "):
            body.append(f"<h3>{_html.escape(stripped[4:])}</h3>")
        elif is_row:
            cells = [cell.strip() for cell in stripped.strip("|").split("|")]
            if all(set(cell) <= {"-", ":"} and cell for cell in cells):
                continue  # the markdown separator row
            tag = "td" if in_table else "th"
            if not in_table:
                body.append("<table>")
                in_table = True
            body.append(
                "<tr>"
                + "".join(
                    f"<{tag}>{_html.escape(cell.strip('*_`'))}</{tag}>"
                    for cell in cells
                )
                + "</tr>"
            )
        elif stripped:
            body.append(f"<p>{_html.escape(stripped.strip('_*'))}</p>")
    if in_table:
        body.append("</table>")

    style = (
        "body{font-family:sans-serif;margin:2em;max-width:72em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "th,td{border:1px solid #999;padding:0.3em 0.6em;text-align:left}"
        "th{background:#eee}"
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_html.escape(data['title'])}</title>"
        f"<style>{style}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )
