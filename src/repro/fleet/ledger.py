"""The shard ledger: JSONL checkpoint/resume for partially-run grids.

Every completed shard is appended as one self-describing JSON line and
flushed immediately, so a fleet killed mid-grid loses at most the shards
that were still in flight.  On resume the runner replays the ledger,
keeps every line whose key matches a spec in the requested grid, and
re-runs only the missing shards.

The reader is deliberately forgiving: a truncated final line (the
signature of a hard kill during a write) or a line that no longer parses
is skipped — the worst case is re-running a shard, never crashing or
double-counting one.
"""

from __future__ import annotations

import json
import os
import re
import warnings

from repro.errors import LedgerRoundTripWarning, ReproError
from repro.fleet.spec import RunResult

#: Schema tag so future ledger formats can be detected, not guessed.
LEDGER_VERSION = 1

#: The signature of CPython's default ``object.__repr__``: a memory
#: address, which no other process can reproduce.
_ID_REPR = re.compile(r" at 0x[0-9a-fA-F]+")


class ShardLedger:
    """Append-only record of completed shards at ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> dict[str, RunResult]:
        """Completed results keyed by spec key (tolerant of torn tails)."""
        results: dict[str, RunResult] = {}
        if not self.exists():
            return results
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    key = doc["key"]
                    result = RunResult.from_json_dict(doc["result"])
                except (ValueError, KeyError, TypeError):
                    # Torn write or a spec that does not JSON-round-trip
                    # (rich config objects in options): re-run that shard.
                    continue
                if key != result.spec.key():
                    continue  # stale line from an older spec layout
                results[key] = result
        return results

    def append(self, result: RunResult) -> None:
        """Durably record one completed shard.

        ``default=repr`` keeps the write from ever crashing on a rich
        options value, but that tolerance has two resume-breaking
        failure shapes, both validated here at append time instead of
        silently burning work on every later resume:

        - the line does not re-parse into a result whose spec key
          matches — :meth:`load` will drop it;
        - a value fell back to an *id-based* repr (``... at 0x...``).
          Within this process the re-parsed key still matches, but in
          the resuming process the fresh spec reprs a different address,
          its key never matches the line, and the shard re-runs forever.
          (Deterministic reprs — dataclass configs and the like — are
          fine and stay silent.)

        Either way a :class:`~repro.errors.LedgerRoundTripWarning` names
        the shard; the line is still written, since it remains useful to
        humans and to non-resume tooling.
        """
        key = result.spec.key()
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        line = json.dumps(
            {
                "version": LEDGER_VERSION,
                "key": key,
                "result": result.to_json_dict(),
            },
            default=repr,
        )
        problem = self._round_trip_problem(line, key)
        if problem is not None:
            warnings.warn(
                LedgerRoundTripWarning(f"shard {key}: {problem}"),
                stacklevel=2,
            )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    @staticmethod
    def _round_trip_problem(line: str, key: str) -> str | None:
        """Why :meth:`load` would fail to restore this line (or ``None``)."""
        try:
            doc = json.loads(line)
            restored = RunResult.from_json_dict(doc["result"])
        except (ValueError, KeyError, TypeError, ReproError):
            return (
                "does not survive the ledger's JSON round trip; it will be "
                "dropped and re-run on every resume"
            )
        if restored.spec.key() != key:
            return (
                "re-parses to a different spec key; it will be dropped and "
                "re-run on every resume"
            )
        if _ID_REPR.search(line):
            return (
                "serialized through a memory-address repr, which the "
                "resuming process cannot reproduce; it will re-run on every "
                "resume (pass plain JSON values in spec options instead)"
            )
        return None
