"""The shard ledger: JSONL checkpoint/resume for partially-run grids.

Every completed shard is appended as one self-describing JSON line and
flushed immediately, so a fleet killed mid-grid loses at most the shards
that were still in flight.  On resume the runner replays the ledger,
keeps every line whose key matches a spec in the requested grid, and
re-runs only the missing shards.

The reader is deliberately forgiving: a truncated final line (the
signature of a hard kill during a write) or a line that no longer parses
is skipped — the worst case is re-running a shard, never crashing or
double-counting one.

Besides completed results, the ledger records *failure* checkpoints:
``status: "failed"`` for a shard whose own code raised (deterministic —
re-running reproduces it) and ``status: "quarantined"`` for a shard that
kept taking workers down.  Resume skips both by default instead of
re-executing known failures forever; ``run_fleet(retry_failed=True)``
drops them from the replay and runs the shards again.  A later line for
the same key always supersedes an earlier one, so a retried shard that
succeeds simply overwrites its failure record.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from dataclasses import dataclass, field

from repro.errors import LedgerRoundTripWarning, ReproError
from repro.fleet.spec import RunResult

#: Schema tag so future ledger formats can be detected, not guessed.
LEDGER_VERSION = 1

#: The two failure statuses a ledger line may carry.
STATUS_FAILED = "failed"
STATUS_QUARANTINED = "quarantined"


@dataclass
class LedgerState:
    """Everything a ledger replay recovered, keyed by spec key."""

    results: dict[str, RunResult] = field(default_factory=dict)
    #: key -> {"status", "kind", "error", "attempts"} for shards whose
    #: last ledger line is a failure checkpoint.
    statuses: dict[str, dict] = field(default_factory=dict)

#: The signature of CPython's default ``object.__repr__``: a memory
#: address, which no other process can reproduce.
_ID_REPR = re.compile(r" at 0x[0-9a-fA-F]+")


class ShardLedger:
    """Append-only record of completed shards at ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> dict[str, RunResult]:
        """Completed results keyed by spec key (tolerant of torn tails)."""
        return self.load_entries().results

    def load_entries(self) -> LedgerState:
        """Replay every line: completed results *and* failure statuses.

        Lines are applied in file order and the last line per key wins,
        so a shard that failed, was retried, and succeeded ends up as a
        result; one that succeeded under an old spec layout and failed
        under the new one ends up failed.  Torn or unparseable lines are
        skipped (the worst case is re-running that shard).
        """
        state = LedgerState()
        if not self.exists():
            return state
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    key = doc["key"]
                    if doc.get("status") in (STATUS_FAILED, STATUS_QUARANTINED):
                        state.statuses[key] = {
                            name: doc.get(name)
                            for name in ("status", "kind", "error", "attempts")
                        }
                        state.results.pop(key, None)
                        continue
                    result = RunResult.from_json_dict(doc["result"])
                except (ValueError, KeyError, TypeError):
                    # Torn write or a spec that does not JSON-round-trip
                    # (rich config objects in options): re-run that shard.
                    continue
                if key != result.spec.key():
                    continue  # stale line from an older spec layout
                state.results[key] = result
                state.statuses.pop(key, None)
        return state

    def append(self, result: RunResult) -> None:
        """Durably record one completed shard.

        ``default=repr`` keeps the write from ever crashing on a rich
        options value, but that tolerance has two resume-breaking
        failure shapes, both validated here at append time instead of
        silently burning work on every later resume:

        - the line does not re-parse into a result whose spec key
          matches — :meth:`load` will drop it;
        - a value fell back to an *id-based* repr (``... at 0x...``).
          Within this process the re-parsed key still matches, but in
          the resuming process the fresh spec reprs a different address,
          its key never matches the line, and the shard re-runs forever.
          (Deterministic reprs — dataclass configs and the like — are
          fine and stay silent.)

        Either way a :class:`~repro.errors.LedgerRoundTripWarning` names
        the shard; the line is still written, since it remains useful to
        humans and to non-resume tooling.
        """
        key = result.spec.key()
        line = json.dumps(
            {
                "version": LEDGER_VERSION,
                "key": key,
                "result": result.to_json_dict(),
            },
            default=repr,
        )
        problem = self._round_trip_problem(line, key)
        if problem is not None:
            warnings.warn(
                LedgerRoundTripWarning(f"shard {key}: {problem}"),
                stacklevel=2,
            )
        self._write_line(line)

    def append_status(
        self,
        key: str,
        status: str,
        kind: str,
        error: str,
        attempts: int,
    ) -> None:
        """Durably record one *failed* or *quarantined* shard.

        ``error`` is a plain one-line rendering (never a pickled
        exception), so status lines always round-trip.  Readers that
        predate status lines skip them harmlessly (no ``result`` field).
        """
        if status not in (STATUS_FAILED, STATUS_QUARANTINED):
            raise ReproError(f"unknown ledger status {status!r}")
        self._write_line(
            json.dumps(
                {
                    "version": LEDGER_VERSION,
                    "key": key,
                    "status": status,
                    "kind": kind,
                    "error": error,
                    "attempts": attempts,
                }
            )
        )

    def _write_line(self, line: str) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    @staticmethod
    def _round_trip_problem(line: str, key: str) -> str | None:
        """Why :meth:`load` would fail to restore this line (or ``None``)."""
        try:
            doc = json.loads(line)
            restored = RunResult.from_json_dict(doc["result"])
        except (ValueError, KeyError, TypeError, ReproError):
            return (
                "does not survive the ledger's JSON round trip; it will be "
                "dropped and re-run on every resume"
            )
        if restored.spec.key() != key:
            return (
                "re-parses to a different spec key; it will be dropped and "
                "re-run on every resume"
            )
        if _ID_REPR.search(line):
            return (
                "serialized through a memory-address repr, which the "
                "resuming process cannot reproduce; it will re-run on every "
                "resume (pass plain JSON values in spec options instead)"
            )
        return None
