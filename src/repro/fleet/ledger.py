"""The shard ledger: JSONL checkpoint/resume for partially-run grids.

Every completed shard is appended as one self-describing JSON line and
flushed immediately, so a fleet killed mid-grid loses at most the shards
that were still in flight.  On resume the runner replays the ledger,
keeps every line whose key matches a spec in the requested grid, and
re-runs only the missing shards.

The reader is deliberately forgiving: a truncated final line (the
signature of a hard kill during a write) or a line that no longer parses
is skipped — the worst case is re-running a shard, never crashing or
double-counting one.
"""

from __future__ import annotations

import json
import os

from repro.fleet.spec import RunResult

#: Schema tag so future ledger formats can be detected, not guessed.
LEDGER_VERSION = 1


class ShardLedger:
    """Append-only record of completed shards at ``path``."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def load(self) -> dict[str, RunResult]:
        """Completed results keyed by spec key (tolerant of torn tails)."""
        results: dict[str, RunResult] = {}
        if not self.exists():
            return results
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    key = doc["key"]
                    result = RunResult.from_json_dict(doc["result"])
                except (ValueError, KeyError, TypeError):
                    # Torn write or a spec that does not JSON-round-trip
                    # (rich config objects in options): re-run that shard.
                    continue
                if key != result.spec.key():
                    continue  # stale line from an older spec layout
                results[key] = result
        return results

    def append(self, result: RunResult) -> None:
        """Durably record one completed shard."""
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        line = json.dumps(
            {
                "version": LEDGER_VERSION,
                "key": result.spec.key(),
                "result": result.to_json_dict(),
            },
            default=repr,
        )
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
