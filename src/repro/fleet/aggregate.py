"""Fleet aggregation: per-scenario distributions and merged telemetry.

The paper's case-study numbers (Sect. 3.3 metrics, Sect. 5 availability
deltas) are distributions over faultloads, not single draws.  The
aggregator turns a bag of shard results into exactly that: for every
scenario, the availability / failure-count / ratio distribution across
seeds with a mean and a bootstrap confidence interval, plus one merged
telemetry metrics registry across all shards.

Everything here is deterministic:

- shards are processed in sorted-key order (never completion order —
  the runner's in-order commit already hands them over that way),
- the bootstrap RNG is seeded from the scenario name and sample size by
  the same hash-derivation trick :class:`repro.simulator.RandomStreams`
  uses, and
- wall-clock values are excluded from :meth:`FleetReport.aggregate` (they
  live in :attr:`FleetReport.timing`),

so a serial run, a process-pool run, and a resumed run of the same grid
produce byte-identical aggregate documents.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.spec import RunResult
from repro.telemetry.metrics import Histogram, MetricsRegistry

#: Bootstrap resamples for the confidence intervals.
N_BOOTSTRAP = 500
CI_LEVEL = 0.95


def _derive_seed(key: str) -> int:
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:8], "little")


def bootstrap_ci(
    values,
    seed_key: str,
    n_boot: int = N_BOOTSTRAP,
    level: float = CI_LEVEL,
) -> tuple[float, float]:
    """Deterministic percentile-bootstrap CI of the mean.

    The RNG is derived from ``seed_key`` and the sample size, so the same
    distribution always gets the same interval no matter which backend
    (or resume) produced it.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return (math.nan, math.nan)
    if arr.size == 1:
        return (float(arr[0]), float(arr[0]))
    rng = np.random.default_rng(_derive_seed(f"bootstrap:{seed_key}:{arr.size}"))
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return (float(lo), float(hi))


def _distribution(values, seed_key: str) -> dict:
    arr = np.asarray(list(values), dtype=float)
    lo, hi = bootstrap_ci(arr, seed_key)
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()) if arr.size else math.nan,
        "std": float(arr.std()) if arr.size else math.nan,
        "min": float(arr.min()) if arr.size else math.nan,
        "max": float(arr.max()) if arr.size else math.nan,
        "ci95": [lo, hi],
        "values": [float(v) for v in arr],
    }


@dataclass
class ScenarioAggregate:
    """The distribution one scenario produced across its shards."""

    scenario: str
    results: list[RunResult]  # sorted by spec key

    @property
    def seeds(self) -> list[int]:
        return [r.spec.seed for r in self.results]

    @property
    def availabilities(self) -> list[float]:
        return [r.availability for r in self.results]

    def to_json_dict(self) -> dict:
        rows = self.results
        doc = {
            "scenario": self.scenario,
            "shards": len(rows),
            "seeds": self.seeds,
            "availability": _distribution(
                self.availabilities, f"{self.scenario}:availability"
            ),
            "failures": _distribution(
                [r.failures for r in rows], f"{self.scenario}:failures"
            ),
            "warnings_raised": sum(r.warnings_raised for r in rows),
            "actions_taken": sum(r.actions_taken for r in rows),
            "attack_episodes": sum(r.attack_episodes for r in rows),
            "mea_iterations": sum(r.mea_iterations for r in rows),
            "telemetry_events": sum(r.telemetry_events for r in rows),
        }
        ratios = [
            r.unavailability_ratio
            for r in rows
            if r.baseline_availability is not None
        ]
        if ratios:
            doc["unavailability_ratio"] = _distribution(
                ratios, f"{self.scenario}:ratio"
            )
            doc["baseline_availability"] = _distribution(
                [r.baseline_availability for r in rows],
                f"{self.scenario}:baseline",
            )
        matrix: dict[str, dict[str, int]] = {}
        for r in rows:
            for outcome, cells in r.outcome_matrix.items():
                slot = matrix.setdefault(outcome, {})
                for cell, count in cells.items():
                    slot[cell] = slot.get(cell, 0) + int(count)
        if matrix:
            doc["outcome_matrix"] = matrix
        return doc


@dataclass
class FleetReport:
    """Everything one fleet run produced.

    ``results`` is sorted by spec key; ``timing`` holds the wall-clock
    story (backend, workers, per-shard and total seconds) and is the only
    part allowed to differ between backends.
    """

    results: list[RunResult]
    timing: dict = field(default_factory=dict)
    #: Shards whose infrastructure retry budget ran out, sorted by key:
    #: ``{"key", "error", "attempts", "source"}`` with source ``"run"``
    #: (this run) or ``"ledger"`` (skipped on resume).  Quarantine never
    #: raises — a poison shard must not abort the grid — but it is never
    #: silent either: it lives here, in :meth:`aggregate`, and in
    #: :meth:`summary`.
    quarantined: list = field(default_factory=list)
    #: The runner's own retry/restart/quarantine counters (supervisor
    #: telemetry, distinct from the shards' merged simulation metrics).
    fleet_metrics: MetricsRegistry | None = None

    def __post_init__(self) -> None:
        self.results = sorted(self.results, key=lambda r: r.spec.key())

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def scenarios(self) -> list[ScenarioAggregate]:
        """Per-scenario groups, sorted by scenario name."""
        grouped: dict[str, list[RunResult]] = {}
        for result in self.results:
            grouped.setdefault(result.spec.scenario, []).append(result)
        return [
            ScenarioAggregate(scenario=name, results=grouped[name])
            for name in sorted(grouped)
        ]

    def scenario(self, name: str) -> ScenarioAggregate:
        for agg in self.scenarios():
            if agg.scenario == name:
                return agg
        raise KeyError(f"no shards for scenario {name!r}")

    def result_for(self, spec) -> RunResult:
        """The shard result for one spec (KeyError when missing)."""
        key = spec.key()
        for result in self.results:
            if result.spec.key() == key:
                return result
        raise KeyError(f"no result for spec {key}")

    def merged_metrics(self) -> MetricsRegistry:
        """All shard metric registries folded into one, in key order."""
        merged = MetricsRegistry()
        for result in self.results:
            if result.metrics_state is not None:
                merged.merge(result.metrics_registry())
        return merged

    # ------------------------------------------------------------------
    # Deterministic aggregate document
    # ------------------------------------------------------------------

    def aggregate(self) -> dict:
        """The backend-independent aggregate (no wall-clock values).

        This is the document the CI smoke compares byte-for-byte between
        the serial and process backends.
        """
        metrics = {}
        for (name, labels), metric in self.merged_metrics()._metrics.items():
            if "wall" in name:
                continue  # wall-clock: legitimately differs per backend
            label_part = ",".join(f"{k}={v}" for k, v in labels)
            key = name if not label_part else f"{name}{{{label_part}}}"
            if isinstance(metric, Histogram):
                metrics[key] = {
                    "count": metric.count,
                    "sum": metric.total,
                    "p50": metric.quantile(0.5),
                    "p99": metric.quantile(0.99),
                }
            else:
                value = metric.value
                metrics[key] = None if isinstance(value, float) and math.isnan(value) else value
        return {
            "shards": len(self.results),
            "scenarios": {
                agg.scenario: agg.to_json_dict() for agg in self.scenarios()
            },
            "metrics": metrics,
            # Quarantined shard keys are part of the scientific record: an
            # aggregate missing shards must say so.  (Keys only — attempt
            # counts and error text are infrastructure noise and live in
            # the report.)  Empty on any fully-clean run, so the
            # serial-vs-process byte-equality contract is unchanged.
            "quarantined": sorted({q["key"] for q in self.quarantined}),
        }

    def recovery_snapshot(self) -> dict:
        """The supervisor's recovery activity, as one JSON-ready dict.

        Combines the runner's ``recovery`` counters, the quarantine
        records, and the ``fleet_metrics`` registry counters (the
        Prometheus-facing names).  This is *operational* data — it
        legitimately differs between a clean run and a chaos run that
        absorbed worker kills — which is exactly why it lives outside
        :meth:`aggregate`'s byte-identity contract and is only folded
        into the document on request (``aggregate_json(
        include_recovery=True)``, the CLI's ``fleet --json`` view).
        """
        counters: dict[str, float] = {}
        if self.fleet_metrics is not None:
            for (name, labels), metric in sorted(
                self.fleet_metrics._metrics.items()
            ):
                label_part = ",".join(f"{k}={v}" for k, v in labels)
                key = name if not label_part else f"{name}{{{label_part}}}"
                counters[key] = metric.value
        return {
            "counters": counters,
            "quarantined_shards": self.quarantined,
            **{
                key: value
                for key, value in (self.timing.get("recovery") or {}).items()
            },
        }

    def prometheus(self) -> str:
        """Prometheus text exposition: shard metrics + recovery counters.

        The merged per-shard simulation metrics and the supervisor's
        ``fleet_*`` recovery counters rendered as one scrape document,
        so dashboards see restarts/retries/quarantines next to the
        workload they disturbed.
        """
        from repro.telemetry.exporters import prometheus_text

        text = prometheus_text(self.merged_metrics())
        if self.fleet_metrics is not None and len(self.fleet_metrics._metrics):
            text += prometheus_text(self.fleet_metrics)
        return text

    def aggregate_json(self, include_recovery: bool = False) -> str:
        """Canonical serialization of :meth:`aggregate` (sorted keys).

        The default document is the byte-identity contract (identical
        across backends, chaos, resume, tracing on/off).  With
        ``include_recovery=True`` a ``"recovery"`` section
        (:meth:`recovery_snapshot`) is added for operational views —
        those bytes legitimately vary with infrastructure weather.
        """
        doc = self.aggregate()
        if include_recovery:
            doc["recovery"] = self.recovery_snapshot()
        return json.dumps(doc, indent=2, sort_keys=True)

    # ------------------------------------------------------------------
    # Human-readable summary
    # ------------------------------------------------------------------

    def summary(self) -> str:
        lines = [
            f"fleet: {len(self.results)} shards "
            f"({self.timing.get('backend', '?')} backend, "
            f"{self.timing.get('workers', '?')} workers, "
            f"{self.timing.get('wall_seconds', 0.0):.1f}s wall"
            + (
                f", {self.timing['resumed_from_ledger']} resumed"
                if self.timing.get("resumed_from_ledger")
                else ""
            )
            + (
                f", {self.timing['chunks']} chunks of {self.timing['chunk_size']}"
                if self.timing.get("chunks")
                else ""
            )
            + (
                f", prewarmed {self.timing['prewarm']['unique_keys']} "
                "training configs"
                if self.timing.get("prewarm")
                else ""
            )
            + ")",
        ]
        recovery = self.timing.get("recovery") or {}
        if recovery.get("retries") or recovery.get("worker_restarts"):
            lines.append(
                f"recovery: {recovery.get('retries', 0)} retries, "
                f"{recovery.get('worker_restarts', 0)} worker restarts, "
                f"{recovery.get('infrastructure_failures', 0)} "
                "infrastructure failures absorbed"
            )
        for record in self.quarantined:
            lines.append(
                f"QUARANTINED {record['key']}: {record.get('error')} "
                f"(after {record.get('attempts')} attempts)"
            )
        lines += [
            (
                f"{'scenario':<24s} {'n':>3s} {'avail mean':>10s} "
                f"{'ci95':>19s} {'fail':>6s} {'warn':>6s} {'act':>5s}"
            ),
        ]
        for agg in self.scenarios():
            doc = agg.to_json_dict()
            avail = doc["availability"]
            lo, hi = avail["ci95"]
            lines.append(
                f"{agg.scenario:<24s} {doc['shards']:3d} {avail['mean']:10.4f} "
                f"[{lo:8.4f},{hi:8.4f}] {sum(r.failures for r in agg.results):6d} "
                f"{doc['warnings_raised']:6d} {doc['actions_taken']:5d}"
            )
        return "\n".join(lines)
