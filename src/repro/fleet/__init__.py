"""``repro.fleet``: sharded multi-seed experiment campaigns.

One :class:`RunSpec` describes one run; :func:`grid` builds the cross
product ``scenario x seed x predictor``; :func:`run_fleet` fans the grid
across a process pool (or runs it serially for debugging), checkpoints
completed shards to a JSONL ledger, and returns a :class:`FleetReport`
with per-scenario distributions and merged telemetry metrics.  The
parallel run is bit-identical to the serial run because every shard
derives all of its randomness from its own spec.

Quickstart::

    from repro.fleet import RunSpec, grid, run_fleet

    report = run_fleet(
        grid(["closed-loop"], seeds=range(21, 29), horizon=86_400.0),
        backend="process", workers=4, ledger_path="fleet.jsonl",
        artifact_store="fleet-artifacts",   # train once, load per worker
    )
    print(report.summary())
    report.scenario("closed-loop").to_json_dict()["availability"]["ci95"]

The heavyweight pieces (runner, aggregation — which pull in the whole
experiment stack) load lazily; importing :mod:`repro.fleet` for the spec
types alone stays cheap and cycle-free.
"""

from repro.fleet.spec import CLOSED_LOOP, RunResult, RunSpec, grid

__all__ = [
    "CLOSED_LOOP",
    "RunSpec",
    "RunResult",
    "grid",
    # lazily loaded:
    "ArtifactStore",
    "DETERMINISTIC",
    "INFRASTRUCTURE",
    "FleetReport",
    "classify_failure",
    "ScenarioAggregate",
    "ShardLedger",
    "bootstrap_ci",
    "collect_report",
    "execute_spec",
    "executor_names",
    "prewarm_training",
    "render_html",
    "render_markdown",
    "register_executor",
    "register_scenario_runner",
    "register_training_plan",
    "run_fleet",
    "train_key_digest",
]

_LAZY = {
    "FleetReport": ("repro.fleet.aggregate", "FleetReport"),
    "ScenarioAggregate": ("repro.fleet.aggregate", "ScenarioAggregate"),
    "bootstrap_ci": ("repro.fleet.aggregate", "bootstrap_ci"),
    "ArtifactStore": ("repro.fleet.artifacts", "ArtifactStore"),
    "prewarm_training": ("repro.fleet.artifacts", "prewarm_training"),
    "train_key_digest": ("repro.fleet.artifacts", "train_key_digest"),
    "DETERMINISTIC": ("repro.fleet.failures", "DETERMINISTIC"),
    "INFRASTRUCTURE": ("repro.fleet.failures", "INFRASTRUCTURE"),
    "classify_failure": ("repro.fleet.failures", "classify_failure"),
    "executor_names": ("repro.fleet.executors", "executor_names"),
    "register_executor": ("repro.fleet.executors", "register_executor"),
    "ShardLedger": ("repro.fleet.ledger", "ShardLedger"),
    "collect_report": ("repro.fleet.report", "collect_report"),
    "render_markdown": ("repro.fleet.report", "render_markdown"),
    "render_html": ("repro.fleet.report", "render_html"),
    "execute_spec": ("repro.fleet.shards", "execute_spec"),
    "register_scenario_runner": ("repro.fleet.shards", "register_scenario_runner"),
    "register_training_plan": ("repro.fleet.shards", "register_training_plan"),
    "run_fleet": ("repro.fleet.runner", "run_fleet"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
