"""The fleet runner: fan a grid of shards across supervised workers.

Backends live behind the executor seam (:mod:`repro.fleet.executors`):

- ``serial`` — run every shard in this process, in key order.  The
  debugging backend: breakpoints work, tracebacks are local, and the
  per-process training cache degenerates to "train each configuration
  once", exactly like the pre-fleet serial experiments.
- ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`.
  Workers inherit the registered scenario runners (the pool forks after
  imports) and, with an ``artifact_store``, *load* pre-trained models
  instead of re-training them.
- anything registered via
  :func:`repro.fleet.executors.register_executor` — a distributed
  executor drops in without touching this module.

Three mechanisms make parallelism actually pay:

1. **Shared training artifacts** — with ``artifact_store=...`` each
   unique training configuration is trained exactly once (a pre-warm
   pass in the parent, before fan-out) and serialized to a
   content-addressed store; workers load, never train.  Without it the
   per-worker training caches are cold and every worker re-trains.
2. **Chunked scheduling** — pending shards are submitted in key-ordered
   chunks so pool/pickle overhead is paid per chunk, not per shard.
3. **In-order commit** — chunk results are buffered and committed in
   chunk-index (= spec-key) order, so ledger line order, ``progress``
   callback order, and the failure report are all byte-stable run to
   run, whatever the completion timing.

And one mechanism makes the fan-out *dependable* — the *supervisor
loop*, which applies the repo's own proactive-fault-management doctrine
to the fleet layer.  Every failure at the executor seam is classified
(:mod:`repro.fleet.failures`):

- **spec-deterministic** — the shard raised.  Checkpointed as a
  ``status: "failed"`` ledger line (resume skips it instead of
  re-running a known failure forever), and every such failure is
  reported together in one :class:`~repro.errors.FleetExecutionError`.
- **infrastructure** — a worker died, the pool broke, an artifact read
  tore.  The supervisor rebuilds the executor if the pool is broken,
  resubmits the lost shards one at a time under a bounded
  :class:`~repro.resilience.RetryPolicy` (attempt *counting* only —
  retries are immediate, so no wall-clock backoff can leak into
  results), and **quarantines** a shard whose retry budget runs out:
  recorded in the ledger, listed in ``FleetReport.quarantined``, never
  silently dropped and never allowed to abort the rest of the grid.

Because every shard is self-contained and the aggregator orders results
by spec key, all backends — and any number of worker crashes absorbed by
retries — produce byte-identical aggregates: the executor and the chaos
only change wall-clock time, never results.  With a ``ledger_path``,
completed shards are checkpointed as they commit and a re-run executes
only the shards the ledger is missing.
"""

from __future__ import annotations

import math
import os
import time
import warnings

from repro.errors import (
    ConfigurationError,
    FleetConfigWarning,
    FleetExecutionError,
)
from repro.faults.chaos import ChaosConfig, active_chaos, clear_chaos, install_chaos
from repro.fleet.aggregate import FleetReport
from repro.fleet.artifacts import (
    ArtifactStore,
    active_artifact_store,
    configure_artifact_store,
    prewarm_training,
    worker_store_initializer,
)
from repro.fleet.executors import create_executor, executor_names
from repro.fleet.failures import (
    DETERMINISTIC,
    INFRASTRUCTURE,
    classify_failure,
    error_text,
    is_pool_fatal,
)
from repro.fleet.ledger import STATUS_FAILED, STATUS_QUARANTINED, ShardLedger
from repro.fleet.shards import execute_spec
from repro.fleet.spec import RunResult, RunSpec
from repro.resilience.policies import RetryPolicy
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import (
    FLEET_CHAOS_ARMED,
    FLEET_QUARANTINE,
    FLEET_RETRY,
    FLEET_RUN_END,
    FLEET_RUN_START,
    FLEET_SHARD_FAILED,
    FLEET_WORKER_RESTART,
    SupervisorRecorder,
    TraceContext,
    clear_trace,
    derive_trace_id,
    export_chrome_trace,
    install_trace,
    merge_fleet_trace,
)

#: The built-in backends (dynamic registrations extend executor_names()).
BACKENDS = ("serial", "process")

#: Scheduling waves per worker: chunks are sized so each worker sees
#: about this many chunks, balancing pickle amortization (bigger chunks)
#: against tail latency when shard costs vary (smaller chunks).
CHUNK_WAVES = 2

#: Default retry budget for infrastructure failures: one try plus two
#: resubmissions per shard before quarantine.  Only ``max_attempts`` is
#: used — fleet retries are immediate (deterministic attempt counting,
#: no wall-clock backoff anywhere near the results).
DEFAULT_RETRY = RetryPolicy(max_attempts=3)


def default_workers() -> int:
    """Worker count when unspecified: all cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def default_chunk_size(n_pending: int, workers: int) -> int:
    """Shards per submitted chunk: ``workers * CHUNK_WAVES`` chunks total.

    One worker (the serial backend) gets chunks of 1 so progress and
    ledger writes stream shard by shard with nothing to amortize.
    """
    if workers <= 1:
        return 1
    return max(1, math.ceil(n_pending / (workers * CHUNK_WAVES)))


def _worker_initializer(
    store_root, chaos_config, parent_pid, trace_context=None
) -> None:
    """Per-worker setup: arm artifact store, chaos harness, fleet tracing.

    Module-level (hence picklable) so spawn-based pools can ship it.  On
    the serial backend it runs in the parent itself, which is why the
    chaos injector needs ``parent_pid``: a "worker crash" there must be
    simulated (raised), not executed (``os._exit``).  The trace context
    propagates the same way the chaos config does — installed
    process-globally, read back by :func:`~repro.fleet.shards.
    execute_spec` (sidecar capture) and the chaos injector (fault
    records).
    """
    if store_root is not None:
        worker_store_initializer(store_root)
    if chaos_config is not None:
        install_chaos(chaos_config, parent_pid)
    if trace_context is not None:
        install_trace(trace_context)


def _execute_chunk(specs: list[RunSpec], attempts: dict | None = None) -> list[tuple]:
    """Run one chunk of shards in this worker, capturing per-spec failures.

    Returns one entry per spec, in order: ``("ok", result)`` or
    ``("err", spec_key, exception, kind)`` with the failure classified at
    the point of capture.  Execution continues past a failed spec so the
    rest of the chunk is still checkpointable.  ``attempts`` (spec key ->
    attempt number, 1-based) feeds the chaos harness, whose fault
    decisions are keyed by attempt so retried shards get fresh draws.
    """
    outcomes: list[tuple] = []
    chaos = active_chaos()
    for spec in specs:
        key = spec.key()
        attempt = (attempts or {}).get(key, 1)
        try:
            if chaos is not None:
                chaos.before_spec(key, attempt)
            outcomes.append(("ok", execute_spec(spec, attempt=attempt)))
        except Exception as exc:
            outcomes.append(("err", key, exc, classify_failure(exc)))
    return outcomes


def run_fleet(
    specs: list[RunSpec],
    backend: str = "process",
    workers: int | None = None,
    ledger_path: str | None = None,
    progress=None,
    artifact_store: ArtifactStore | str | None = None,
    prewarm: bool = True,
    chunk_size: int | None = None,
    retry: RetryPolicy | None = None,
    retry_failed: bool = False,
    chaos: ChaosConfig | None = None,
    trace_dir: str | None = None,
    trace_deterministic: bool = False,
) -> FleetReport:
    """Run every shard of ``specs`` and aggregate the results.

    Parameters
    ----------
    specs:
        The grid (see :func:`repro.fleet.grid`).  Keys must be unique —
        a duplicate spec would silently double-weight a distribution.
    backend:
        ``"process"`` (default), ``"serial"``, or any backend registered
        with :func:`repro.fleet.executors.register_executor`.
    workers:
        Process-pool size.  The serial backend runs exactly one worker:
        passing ``workers > 1`` with ``backend="serial"`` raises a
        :class:`~repro.errors.FleetConfigWarning` instead of silently
        ignoring the value.
    ledger_path:
        JSONL checkpoint file.  Existing completed shards are loaded and
        skipped; newly completed shards are appended in spec-key order.
        Failed and quarantined shards are checkpointed too (``status``
        lines) and skipped on resume unless ``retry_failed`` is set.
    progress:
        Optional callable ``progress(done, total, result)`` invoked as
        each shard commits (the CLI prints a line per shard through
        this).  Commit order is spec-key order, deterministically.
    artifact_store:
        Root directory (or :class:`~repro.fleet.artifacts.ArtifactStore`)
        for shared trained-model artifacts.  Enables the pre-warm pass
        and worker-side artifact loading; omit to keep the historical
        train-per-process behavior.
    prewarm:
        With an ``artifact_store``, train each unique training
        configuration once in this process before fan-out (default).
        Set ``False`` to let workers train-and-publish on first miss
        instead (first-come duplication, but no up-front serial phase).
    chunk_size:
        Shards per submitted chunk; default
        :func:`default_chunk_size` (``workers * CHUNK_WAVES`` chunks).
    retry:
        Retry budget for *infrastructure* failures (worker death, broken
        pool, torn reads); default :data:`DEFAULT_RETRY` (3 attempts per
        shard).  Only ``max_attempts`` is consulted — fleet retries are
        immediate, so results carry no wall-clock backoff.  A shard that
        exhausts the budget is quarantined.  ``RetryPolicy(max_attempts=1)``
        disables retries.
    retry_failed:
        Re-execute shards the ledger recorded as failed or quarantined
        instead of skipping them on resume.
    chaos:
        Arm the fleet chaos harness (:mod:`repro.faults.chaos`) in every
        worker: seeded worker-crash / slow-worker / torn-artifact fault
        injection, used by the chaos bench and tests to prove the
        supervisor absorbs infrastructure faults without perturbing
        aggregates.
    trace_dir:
        Arm fleet-wide distributed tracing: every worker serializes each
        shard's full telemetry span/event stream to a per-shard JSONL
        sidecar under ``trace_dir/shards/``, the supervisor loop records
        its recovery work (restarts, retries, quarantines, chaos arming)
        to ``supervisor.jsonl``, chaos injections drop records under
        ``chaos/``, and after the run everything is merged into a
        deterministic ``fleet_trace.jsonl`` timeline plus a
        Chrome/Perfetto ``fleet_trace.chrome.json`` render (see
        :mod:`repro.telemetry.tracing`).  Tracing reads results, never
        feeds back: aggregates are byte-identical with it on or off
        (``benchmarks/test_bench_fleet_trace.py``).
    trace_deterministic:
        Zero wall-clock fields in the trace sidecars so trace bytes are
        a pure function of simulated behaviour (golden comparisons);
        default keeps wall timings for profiling.

    Raises
    ------
    FleetExecutionError
        When any shard failed deterministically — after every completed
        shard has been committed and checkpointed.  The error carries
        *all* failures (this run's and, on resume, the ledger's skipped
        ones), sorted by spec key.
    """
    if backend not in executor_names():
        raise ConfigurationError(
            f"unknown backend {backend!r}; use one of {executor_names()}"
        )
    if not specs:
        raise ConfigurationError("need at least one RunSpec")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    if backend == "serial" and workers not in (None, 1):
        warnings.warn(
            FleetConfigWarning(
                f"backend='serial' runs in-process; workers={workers} is "
                "ignored (use backend='process' to parallelize)"
            ),
            stacklevel=2,
        )
    retry_policy = retry if retry is not None else DEFAULT_RETRY
    keyed: dict[str, RunSpec] = {}
    for spec in specs:
        key = spec.key()
        if key in keyed:
            raise ConfigurationError(f"duplicate shard in grid: {key}")
        keyed[key] = spec

    ledger = ShardLedger(ledger_path) if ledger_path else None
    results: dict[str, RunResult] = {}
    #: Failure checkpoints replayed from the ledger and *not* re-run.
    skipped: dict[str, dict] = {}
    resumed = 0
    if ledger is not None:
        state = ledger.load_entries()
        for key, result in state.results.items():
            if key in keyed:
                results[key] = result
        resumed = len(results)
        if not retry_failed:
            for key, status in state.statuses.items():
                if key in keyed and key not in results:
                    skipped[key] = status

    # Key order everywhere: submission, commit, ledger lines, progress.
    pending = [
        keyed[key]
        for key in sorted(keyed)
        if key not in results and key not in skipped
    ]
    total = len(keyed)
    done = len(results)
    pool_workers = 1 if backend == "serial" else (workers or default_workers())
    size = (
        chunk_size
        if chunk_size is not None
        else default_chunk_size(len(pending), pool_workers)
    )
    chunks = [pending[i : i + size] for i in range(0, len(pending), size)]
    chunk_keys = [[spec.key() for spec in chunk] for chunk in chunks]
    wall_start = time.perf_counter()

    store = artifact_store
    if isinstance(store, str):
        store = ArtifactStore(store)
    previous_store = active_artifact_store()
    prewarm_stats: dict | None = None

    trace_context: TraceContext | None = None
    recorder: SupervisorRecorder | None = None
    trace_summary: dict | None = None
    if trace_dir is not None:
        trace_context = TraceContext(
            trace_id=derive_trace_id(sorted(keyed)),
            root=str(trace_dir),
            deterministic=trace_deterministic,
        )
        recorder = SupervisorRecorder(trace_context)
        recorder.event(
            FLEET_RUN_START,
            trace_id=trace_context.trace_id,
            backend=backend,
            shards=total,
            resumed=resumed,
        )
        if chaos is not None:
            recorder.event(
                FLEET_CHAOS_ARMED,
                seed=chaos.seed,
                crash_probability=chaos.crash_probability,
                slow_probability=chaos.slow_probability,
                torn_artifact_probability=chaos.torn_artifact_probability,
            )

    fleet_metrics = MetricsRegistry()
    recovery = {
        "retries": 0,
        "worker_restarts": 0,
        "quarantined": 0,
        "deterministic_failures": 0,
        "infrastructure_failures": 0,
    }

    def _record(result: RunResult) -> None:
        nonlocal done
        key = result.spec.key()
        results[key] = result
        if ledger is not None:
            ledger.append(result)
        done += 1
        if recorder is not None:
            # Commit order is spec-key order, so this lane is stable.
            recorder.shard_committed(
                key,
                attempts=attempts.get(key, 1),
                telemetry_events=result.telemetry_events,
            )
        if progress is not None:
            progress(done, total, result)

    #: ``(spec_key, exception)`` deterministic failures, in commit order.
    failures: list[tuple[str, BaseException]] = []
    #: Quarantine records (never silently dropped): committed shards
    #: whose infrastructure retry budget ran out.
    quarantined: list[dict] = []
    #: Submission counts per spec key (1 = first try).
    attempts: dict[str, int] = {}
    #: chunk idx -> spec key -> ("ok", result) | ("failed", exc) |
    #: ("quarantined", exc).  A chunk commits when every key resolved.
    resolved: dict[int, dict[str, tuple]] = {i: {} for i in range(len(chunks))}

    def _commit_chunk(idx: int) -> None:
        """Checkpoint one chunk's resolved entries, in spec order."""
        for key in chunk_keys[idx]:
            entry = resolved[idx].get(key)
            if entry is None:
                continue  # abandoned mid-flight (abort path)
            tag = entry[0]
            if tag == "ok":
                _record(entry[1])
            elif tag == "failed":
                failures.append((key, entry[1]))
                if recorder is not None:
                    recorder.event(
                        FLEET_SHARD_FAILED,
                        key=key,
                        error=error_text(entry[1]),
                        attempts=attempts.get(key, 1),
                    )
                if ledger is not None:
                    ledger.append_status(
                        key,
                        STATUS_FAILED,
                        kind=DETERMINISTIC,
                        error=error_text(entry[1]),
                        attempts=attempts.get(key, 1),
                    )
            else:
                quarantined.append(
                    {
                        "key": key,
                        "error": error_text(entry[1]),
                        "attempts": attempts.get(key, 1),
                        "source": "run",
                    }
                )
                if recorder is not None:
                    recorder.event(
                        FLEET_QUARANTINE,
                        key=key,
                        error=error_text(entry[1]),
                        attempts=attempts.get(key, 1),
                    )
                if ledger is not None:
                    ledger.append_status(
                        key,
                        STATUS_QUARANTINED,
                        kind=INFRASTRUCTURE,
                        error=error_text(entry[1]),
                        attempts=attempts.get(key, 1),
                    )

    def _supervise() -> None:
        """The supervisor loop: submit, classify, retry, quarantine.

        Rebuilds the executor whenever a pool-fatal failure poisons it
        (each rebuild is one ``worker_restarts``), resubmits
        infrastructure-failed shards one spec at a time so a poison
        shard is isolated from its chunk-mates, and stops scheduling on
        the first deterministic failure (in-flight work still commits).
        Commits happen inside the loop, in chunk-index order, so the
        ledger streams deterministically however the faults land.
        """
        pending_units: list[tuple[int, list[RunSpec]]] = [
            (idx, chunk) for idx, chunk in enumerate(chunks)
        ]
        next_commit = 0
        aborted = False
        first_executor = True
        initializer = (
            _worker_initializer
            if (store is not None or chaos is not None or trace_context is not None)
            else None
        )
        initargs = (
            (
                store.root if store is not None else None,
                chaos,
                os.getpid(),
                trace_context,
            )
            if initializer is not None
            else ()
        )

        while pending_units and not aborted:
            if not first_executor:
                recovery["worker_restarts"] += 1
                fleet_metrics.counter("fleet_worker_restarts_total").inc()
                if recorder is not None:
                    recorder.event(
                        FLEET_WORKER_RESTART,
                        restart=recovery["worker_restarts"],
                        pending_units=len(pending_units),
                    )
            first_executor = False
            broken = False
            with create_executor(
                backend, pool_workers, initializer=initializer, initargs=initargs
            ) as executor:
                index_of: dict = {}

                def _submit(unit) -> None:
                    nonlocal broken
                    idx, unit_specs = unit
                    prospective = {
                        s.key(): attempts.get(s.key(), 0) + 1 for s in unit_specs
                    }
                    try:
                        future = executor.submit(
                            _execute_chunk, list(unit_specs), prospective
                        )
                    except Exception:
                        # Pool already broken/shut down: park the unit for
                        # the rebuilt executor, without charging an attempt.
                        broken = True
                        pending_units.append(unit)
                        return
                    attempts.update(prospective)
                    index_of[future] = unit

                def _requeue(idx: int, spec: RunSpec, exc: BaseException) -> None:
                    """Retry one infrastructure-failed spec, or quarantine."""
                    key = spec.key()
                    recovery["infrastructure_failures"] += 1
                    fleet_metrics.counter(
                        "fleet_shard_failures_total", kind=INFRASTRUCTURE
                    ).inc()
                    if aborted:
                        return  # abandoned, like a cancelled future
                    if attempts.get(key, 1) >= retry_policy.max_attempts:
                        resolved[idx][key] = ("quarantined", exc)
                        recovery["quarantined"] += 1
                        fleet_metrics.counter("fleet_quarantined_total").inc()
                        return
                    recovery["retries"] += 1
                    fleet_metrics.counter("fleet_retries_total").inc()
                    if recorder is not None:
                        recorder.event(
                            FLEET_RETRY,
                            key=key,
                            attempt=attempts.get(key, 1) + 1,
                            error=error_text(exc),
                        )
                    unit = (idx, [spec])
                    if broken:
                        pending_units.append(unit)
                    else:
                        _submit(unit)

                units, pending_units[:] = list(pending_units), []
                for unit in units:
                    _submit(unit)

                for future in executor.as_completed():
                    if future.cancelled():
                        continue
                    idx, unit_specs = index_of[future]
                    exc = future.exception()
                    newly_failed = False
                    if exc is not None:
                        if is_pool_fatal(exc):
                            broken = True
                        kind = classify_failure(exc)
                        if kind == INFRASTRUCTURE:
                            for spec in unit_specs:
                                if spec.key() not in resolved[idx]:
                                    _requeue(idx, spec, exc)
                        elif len(unit_specs) == 1:
                            resolved[idx][unit_specs[0].key()] = ("failed", exc)
                            newly_failed = True
                        else:
                            # Deterministic chunk-level error (e.g. an
                            # unpicklable result): isolate the culprit by
                            # re-running the chunk one spec at a time.
                            for spec in unit_specs:
                                if spec.key() not in resolved[idx]:
                                    _submit((idx, [spec]))
                    else:
                        for entry in future.result():
                            if entry[0] == "ok":
                                result = entry[1]
                                resolved[idx][result.spec.key()] = ("ok", result)
                            else:
                                _, key, err, kind = entry
                                if kind == INFRASTRUCTURE:
                                    _requeue(idx, keyed[key], err)
                                else:
                                    resolved[idx][key] = ("failed", err)
                                    newly_failed = True
                    if newly_failed:
                        recovery["deterministic_failures"] += 1
                        fleet_metrics.counter(
                            "fleet_shard_failures_total", kind=DETERMINISTIC
                        ).inc()
                        if not aborted:
                            # Stop scheduling; running chunks finish
                            # (shutdown waits) so they still checkpoint.
                            aborted = True
                            pending_units.clear()
                            executor.shutdown(cancel_futures=True)
                    # Commit the contiguous complete-chunk prefix:
                    # streaming checkpoints in deterministic key order.
                    while next_commit < len(chunks) and len(
                        resolved[next_commit]
                    ) == len(chunk_keys[next_commit]):
                        _commit_chunk(next_commit)
                        next_commit += 1

        # Chunks stranded behind the gap an aborted, quarantined or
        # abandoned chunk left still checkpoint, in order.
        for idx in range(next_commit, len(chunks)):
            _commit_chunk(idx)

    try:
        configure_artifact_store(store)
        if store is not None and prewarm and pending:
            prewarm_stats = prewarm_training(pending, store)
        if pending:
            _supervise()
        _raise_failures(failures, skipped, quarantined)
    finally:
        configure_artifact_store(previous_store)
        if chaos is not None:
            clear_chaos()  # the serial backend armed it in this process
        if trace_context is not None:
            clear_trace()  # likewise for the trace context
            if recorder is not None:
                recorder.event(FLEET_RUN_END, **recovery)
                recorder.finalize()
            # Finalized in the finally block so a failed run still
            # leaves a merged, renderable trace behind for post-mortems.
            trace_summary = merge_fleet_trace(trace_context)
            export_chrome_trace(trace_context)
            trace_summary["chrome_path"] = trace_context.chrome_path

    wall_seconds = time.perf_counter() - wall_start
    ordered = [results[key] for key in sorted(results)]
    return FleetReport(
        results=ordered,
        timing={
            "backend": backend,
            "workers": pool_workers,
            "shards": total,
            "resumed_from_ledger": resumed,
            "skipped_failed": len(skipped),
            "executed": total - resumed - len(skipped),
            "chunks": len(chunks),
            "chunk_size": size,
            "artifact_store": store.root if store is not None else None,
            "prewarm": prewarm_stats,
            "recovery": recovery,
            "trace": trace_summary,
            "wall_seconds": wall_seconds,
            "shard_wall_seconds": {
                r.spec.key(): r.wall_seconds for r in ordered
            },
        },
        quarantined=sorted(quarantined, key=lambda q: q["key"]),
        fleet_metrics=fleet_metrics,
    )


def _raise_failures(
    failures: list[tuple[str, BaseException]],
    skipped: dict[str, dict],
    quarantined: list[dict],
) -> None:
    """Raise one aggregate error naming *every* deterministic failure.

    Ledger-skipped failures count too (a resumed grid with known-failed
    shards did not succeed just because nothing new broke); skipped
    *quarantined* shards instead rejoin the quarantine report, since
    their infrastructure may have healed on another day or host.
    """
    records: list[dict] = []
    causes: list[BaseException] = []
    for key, exc in failures:
        records.append({"key": key, "error": error_text(exc), "source": "run"})
        causes.append(exc)
    for key, status in skipped.items():
        if status.get("status") == STATUS_FAILED:
            records.append(
                {
                    "key": key,
                    "error": status.get("error") or "unknown error",
                    "source": "ledger",
                }
            )
        else:
            quarantined.append(
                {
                    "key": key,
                    "error": status.get("error"),
                    "attempts": status.get("attempts"),
                    "source": "ledger",
                }
            )
    if not records:
        return
    records.sort(key=lambda record: record["key"])
    parts = [
        f"{record['key']} ({record['error']})"
        + (" [from ledger]" if record["source"] == "ledger" else "")
        for record in records
    ]
    message = (
        f"{len(records)} shard(s) failed deterministically: " + "; ".join(parts)
    )
    if any(record["source"] == "ledger" for record in records):
        message += " — pass retry_failed=True to re-run ledger-recorded failures"
    raise FleetExecutionError(message, failures=records, causes=causes) from (
        causes[0] if causes else None
    )
