"""The fleet runner: fan a grid of shards across workers.

Backends live behind the executor seam (:mod:`repro.fleet.executors`):

- ``serial`` — run every shard in this process, in key order.  The
  debugging backend: breakpoints work, tracebacks are local, and the
  per-process training cache degenerates to "train each configuration
  once", exactly like the pre-fleet serial experiments.
- ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`.
  Workers inherit the registered scenario runners (the pool forks after
  imports) and, with an ``artifact_store``, *load* pre-trained models
  instead of re-training them.
- anything registered via
  :func:`repro.fleet.executors.register_executor` — a distributed
  executor drops in without touching this module.

Three mechanisms make parallelism actually pay:

1. **Shared training artifacts** — with ``artifact_store=...`` each
   unique training configuration is trained exactly once (a pre-warm
   pass in the parent, before fan-out) and serialized to a
   content-addressed store; workers load, never train.  Without it the
   per-worker training caches are cold and every worker re-trains.
2. **Chunked scheduling** — pending shards are submitted in key-ordered
   chunks so pool/pickle overhead is paid per chunk, not per shard.
3. **In-order commit** — chunk results are buffered and committed in
   chunk-index (= spec-key) order, so ledger line order, ``progress``
   callback order, and *which* failure propagates (the smallest spec
   key) are all byte-stable run to run, whatever the completion timing.

Because every shard is self-contained and the aggregator orders results
by spec key, all backends produce byte-identical aggregates — the
executor only changes wall-clock time, never results.  With a
``ledger_path``, completed shards are checkpointed as they commit and a
re-run executes only the shards the ledger is missing.
"""

from __future__ import annotations

import math
import os
import time
import warnings

from repro.errors import ConfigurationError, FleetConfigWarning
from repro.fleet.aggregate import FleetReport
from repro.fleet.artifacts import (
    ArtifactStore,
    active_artifact_store,
    configure_artifact_store,
    prewarm_training,
    worker_store_initializer,
)
from repro.fleet.executors import create_executor, executor_names
from repro.fleet.ledger import ShardLedger
from repro.fleet.shards import execute_spec
from repro.fleet.spec import RunResult, RunSpec

#: The built-in backends (dynamic registrations extend executor_names()).
BACKENDS = ("serial", "process")

#: Scheduling waves per worker: chunks are sized so each worker sees
#: about this many chunks, balancing pickle amortization (bigger chunks)
#: against tail latency when shard costs vary (smaller chunks).
CHUNK_WAVES = 2


def default_workers() -> int:
    """Worker count when unspecified: all cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def default_chunk_size(n_pending: int, workers: int) -> int:
    """Shards per submitted chunk: ``workers * CHUNK_WAVES`` chunks total.

    One worker (the serial backend) gets chunks of 1 so progress and
    ledger writes stream shard by shard with nothing to amortize.
    """
    if workers <= 1:
        return 1
    return max(1, math.ceil(n_pending / (workers * CHUNK_WAVES)))


def _execute_chunk(specs: list[RunSpec]) -> list[tuple]:
    """Run one chunk of shards in this worker, capturing per-spec failures.

    Returns one entry per spec, in order: ``("ok", result)`` or
    ``("err", spec_key, exception)``.  Execution continues past a failed
    spec so the rest of the chunk is still checkpointable.
    """
    outcomes: list[tuple] = []
    for spec in specs:
        try:
            outcomes.append(("ok", execute_spec(spec)))
        except Exception as exc:
            outcomes.append(("err", spec.key(), exc))
    return outcomes


def run_fleet(
    specs: list[RunSpec],
    backend: str = "process",
    workers: int | None = None,
    ledger_path: str | None = None,
    progress=None,
    artifact_store: ArtifactStore | str | None = None,
    prewarm: bool = True,
    chunk_size: int | None = None,
) -> FleetReport:
    """Run every shard of ``specs`` and aggregate the results.

    Parameters
    ----------
    specs:
        The grid (see :func:`repro.fleet.grid`).  Keys must be unique —
        a duplicate spec would silently double-weight a distribution.
    backend:
        ``"process"`` (default), ``"serial"``, or any backend registered
        with :func:`repro.fleet.executors.register_executor`.
    workers:
        Process-pool size.  The serial backend runs exactly one worker:
        passing ``workers > 1`` with ``backend="serial"`` raises a
        :class:`~repro.errors.FleetConfigWarning` instead of silently
        ignoring the value.
    ledger_path:
        JSONL checkpoint file.  Existing completed shards are loaded and
        skipped; newly completed shards are appended in spec-key order.
    progress:
        Optional callable ``progress(done, total, result)`` invoked as
        each shard commits (the CLI prints a line per shard through
        this).  Commit order is spec-key order, deterministically.
    artifact_store:
        Root directory (or :class:`~repro.fleet.artifacts.ArtifactStore`)
        for shared trained-model artifacts.  Enables the pre-warm pass
        and worker-side artifact loading; omit to keep the historical
        train-per-process behavior.
    prewarm:
        With an ``artifact_store``, train each unique training
        configuration once in this process before fan-out (default).
        Set ``False`` to let workers train-and-publish on first miss
        instead (first-come duplication, but no up-front serial phase).
    chunk_size:
        Shards per submitted chunk; default
        :func:`default_chunk_size` (``workers * CHUNK_WAVES`` chunks).
    """
    if backend not in executor_names():
        raise ConfigurationError(
            f"unknown backend {backend!r}; use one of {executor_names()}"
        )
    if not specs:
        raise ConfigurationError("need at least one RunSpec")
    if chunk_size is not None and chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
    if backend == "serial" and workers not in (None, 1):
        warnings.warn(
            FleetConfigWarning(
                f"backend='serial' runs in-process; workers={workers} is "
                "ignored (use backend='process' to parallelize)"
            ),
            stacklevel=2,
        )
    keyed: dict[str, RunSpec] = {}
    for spec in specs:
        key = spec.key()
        if key in keyed:
            raise ConfigurationError(f"duplicate shard in grid: {key}")
        keyed[key] = spec

    ledger = ShardLedger(ledger_path) if ledger_path else None
    results: dict[str, RunResult] = {}
    resumed = 0
    if ledger is not None:
        for key, result in ledger.load().items():
            if key in keyed:
                results[key] = result
        resumed = len(results)

    # Key order everywhere: submission, commit, ledger lines, progress.
    pending = [keyed[key] for key in sorted(keyed) if key not in results]
    total = len(keyed)
    done = len(results)
    pool_workers = 1 if backend == "serial" else (workers or default_workers())
    size = (
        chunk_size
        if chunk_size is not None
        else default_chunk_size(len(pending), pool_workers)
    )
    chunks = [pending[i : i + size] for i in range(0, len(pending), size)]
    wall_start = time.perf_counter()

    store = artifact_store
    if isinstance(store, str):
        store = ArtifactStore(store)
    previous_store = active_artifact_store()
    prewarm_stats: dict | None = None

    def _record(result: RunResult) -> None:
        nonlocal done
        results[result.spec.key()] = result
        if ledger is not None:
            ledger.append(result)
        done += 1
        if progress is not None:
            progress(done, total, result)

    #: ``(spec_key, exception)`` pairs, committed in chunk order.
    failures: list[tuple[str, BaseException]] = []

    def _commit(outcome: list[tuple]) -> None:
        for entry in outcome:
            if entry[0] == "ok":
                _record(entry[1])
            else:
                failures.append((entry[1], entry[2]))

    try:
        configure_artifact_store(store)
        if store is not None and prewarm and pending:
            prewarm_stats = prewarm_training(pending, store)
        if pending:
            initializer = worker_store_initializer if store is not None else None
            initargs = (store.root,) if store is not None else ()
            with create_executor(
                backend, pool_workers, initializer=initializer, initargs=initargs
            ) as executor:
                index_of = {
                    executor.submit(_execute_chunk, chunk): idx
                    for idx, chunk in enumerate(chunks)
                }
                buffered: dict[int, list[tuple]] = {}
                next_commit = 0
                aborted = False
                for future in executor.as_completed():
                    if future.cancelled():
                        continue
                    idx = index_of[future]
                    exc = future.exception()
                    if exc is not None:
                        # Chunk-level crash (broken pool, unpicklable
                        # payload, ...): charge it to the chunk's first
                        # spec so it still sorts deterministically.
                        buffered[idx] = [("err", chunks[idx][0].key(), exc)]
                    else:
                        buffered[idx] = future.result()
                    if not aborted and any(e[0] != "ok" for e in buffered[idx]):
                        # Stop scheduling new chunks; running ones finish
                        # (shutdown waits) so they can still checkpoint.
                        aborted = True
                        executor.shutdown(cancel_futures=True)
                    # Commit the contiguous chunk prefix: streaming
                    # checkpoints in deterministic spec-key order.
                    while next_commit in buffered:
                        _commit(buffered.pop(next_commit))
                        next_commit += 1
                # Failure path: chunks stranded behind the gap a failed
                # or cancelled chunk left still checkpoint, in order.
                for idx in sorted(buffered):
                    _commit(buffered[idx])
        if failures:
            failures.sort(key=lambda item: item[0])
            raise failures[0][1]
    finally:
        configure_artifact_store(previous_store)

    wall_seconds = time.perf_counter() - wall_start
    ordered = [results[key] for key in sorted(results)]
    return FleetReport(
        results=ordered,
        timing={
            "backend": backend,
            "workers": pool_workers,
            "shards": total,
            "resumed_from_ledger": resumed,
            "executed": total - resumed,
            "chunks": len(chunks),
            "chunk_size": size,
            "artifact_store": store.root if store is not None else None,
            "prewarm": prewarm_stats,
            "wall_seconds": wall_seconds,
            "shard_wall_seconds": {
                r.spec.key(): r.wall_seconds for r in ordered
            },
        },
    )
