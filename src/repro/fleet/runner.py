"""The fleet runner: fan a grid of shards across workers.

Two backends behind one call:

- ``serial`` — run every shard in this process, in grid order.  The
  debugging backend: breakpoints work, tracebacks are local, and the
  per-process training cache degenerates to "train each configuration
  once", exactly like the pre-fleet serial experiments.
- ``process`` — a :class:`concurrent.futures.ProcessPoolExecutor`.  Each
  worker inherits the registered scenario runners (the pool forks after
  imports) and keeps its own training cache.

Because every shard is self-contained and the aggregator orders results
by spec key, the two backends produce byte-identical aggregates — the
process pool only changes wall-clock time, never results.  With a
``ledger_path``, completed shards are checkpointed as they finish and a
re-run executes only the shards the ledger is missing.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from repro.errors import ConfigurationError
from repro.fleet.aggregate import FleetReport
from repro.fleet.ledger import ShardLedger
from repro.fleet.shards import execute_spec
from repro.fleet.spec import RunResult, RunSpec

BACKENDS = ("serial", "process")


def default_workers() -> int:
    """Worker count when unspecified: all cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 1))


def run_fleet(
    specs: list[RunSpec],
    backend: str = "process",
    workers: int | None = None,
    ledger_path: str | None = None,
    progress=None,
) -> FleetReport:
    """Run every shard of ``specs`` and aggregate the results.

    Parameters
    ----------
    specs:
        The grid (see :func:`repro.fleet.grid`).  Keys must be unique —
        a duplicate spec would silently double-weight a distribution.
    backend:
        ``"process"`` (default) or ``"serial"``.
    workers:
        Process-pool size; ignored by the serial backend.
    ledger_path:
        JSONL checkpoint file.  Existing completed shards are loaded and
        skipped; newly completed shards are appended as they finish.
    progress:
        Optional callable ``progress(done, total, result)`` invoked after
        each shard (the CLI prints a line per shard through this).
    """
    if backend not in BACKENDS:
        raise ConfigurationError(f"unknown backend {backend!r}; use one of {BACKENDS}")
    if not specs:
        raise ConfigurationError("need at least one RunSpec")
    keyed: dict[str, RunSpec] = {}
    for spec in specs:
        key = spec.key()
        if key in keyed:
            raise ConfigurationError(f"duplicate shard in grid: {key}")
        keyed[key] = spec

    ledger = ShardLedger(ledger_path) if ledger_path else None
    results: dict[str, RunResult] = {}
    resumed = 0
    if ledger is not None:
        for key, result in ledger.load().items():
            if key in keyed:
                results[key] = result
        resumed = len(results)

    pending = [spec for key, spec in keyed.items() if key not in results]
    total = len(keyed)
    done = len(results)
    wall_start = time.perf_counter()

    def _record(result: RunResult) -> None:
        nonlocal done
        results[result.spec.key()] = result
        if ledger is not None:
            ledger.append(result)
        done += 1
        if progress is not None:
            progress(done, total, result)

    if backend == "serial":
        for spec in pending:
            _record(execute_spec(spec))
        pool_workers = 1
    else:
        pool_workers = workers or default_workers()
        if pending:
            with ProcessPoolExecutor(max_workers=pool_workers) as pool:
                futures = {pool.submit(execute_spec, spec) for spec in pending}
                while futures:
                    finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                    # Checkpoint the shards that completed this round
                    # before surfacing any failure, so a crashed grid
                    # resumes from everything that actually finished.
                    failure = None
                    for future in finished:
                        exc = future.exception()
                        if exc is not None:
                            failure = failure or exc
                        else:
                            _record(future.result())
                    if failure is not None:
                        for future in futures:
                            future.cancel()
                        raise failure

    wall_seconds = time.perf_counter() - wall_start
    ordered = [results[key] for key in sorted(results)]
    return FleetReport(
        results=ordered,
        timing={
            "backend": backend,
            "workers": pool_workers if backend == "process" else 1,
            "shards": total,
            "resumed_from_ledger": resumed,
            "executed": total - resumed,
            "wall_seconds": wall_seconds,
            "shard_wall_seconds": {
                r.spec.key(): r.wall_seconds for r in ordered
            },
        },
    )
