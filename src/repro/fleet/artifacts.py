"""Shared trained-model artifacts: train once, load everywhere.

The fleet's original parallel slowdown (BENCH_fleet.json at 0.87x) came
from every worker process re-training the same predictor configuration:
the per-process memo in :mod:`repro.fleet.shards` cannot cross a process
boundary, so a grid that shares one ``train_key`` across all shards paid
for training once per *worker* instead of once per *fleet*.

This module fixes that with a content-addressed on-disk store:

- :func:`train_key_digest` hashes the (already hashable, deterministic)
  training-cache key into a stable file name, so every process that
  computes the same key addresses the same artifact;
- :class:`ArtifactStore` serializes a trained predictor exactly once
  (atomic write: temp file + ``os.replace``) and loads it everywhere
  else.  The reader is tolerant the same way the shard ledger is: a
  corrupt or torn artifact is *reported* (:class:`ArtifactStoreWarning`)
  and treated as a miss, so the worst case is re-training a model, never
  crashing a fleet;
- :func:`prewarm_training` walks a grid before fan-out and trains each
  unique training configuration exactly once in the parent process, so
  workers start with a warm store and never train at all;
- :func:`worker_store_initializer` is the picklable
  ``ProcessPoolExecutor`` initializer that points each worker at the
  store.

The store is consulted by :func:`repro.fleet.shards.cached_training`
between the in-process memo and the builder: memo hit, then artifact
load, then train-and-publish.  Training is deterministic given the key
and pickling round-trips numpy arrays exactly, so a loaded artifact and
a fresh train are interchangeable — the byte-identical aggregate
guarantee is preserved.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings

from repro.errors import ArtifactStoreWarning

#: Schema tag inside every artifact payload so future layouts can be
#: detected, not guessed (mirrors the ledger's LEDGER_VERSION).
ARTIFACT_VERSION = 1


def train_key_digest(key) -> str:
    """Stable content digest of a training-cache key.

    Keys are tuples of primitives (names, seeds, ParamSets, deterministic
    dataclass reprs), so ``repr`` is a canonical byte string that agrees
    across processes and interpreter runs — no ``PYTHONHASHSEED``
    dependence, unlike ``hash()``.
    """
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class ArtifactStore:
    """Content-addressed trained-model files under one root directory."""

    def __init__(self, root: str) -> None:
        self.root = str(root)

    def path_for(self, key) -> str:
        """Where the artifact for ``key`` lives (exists or not)."""
        return os.path.join(self.root, f"{train_key_digest(key)}.pkl")

    def contains(self, key) -> bool:
        return os.path.exists(self.path_for(key))

    def __len__(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for name in os.listdir(self.root) if name.endswith(".pkl"))

    def save(self, key, trained) -> str:
        """Atomically publish ``trained`` for ``key``; returns the path.

        Write-to-temp + ``os.replace`` so a concurrent reader never sees
        a half-written artifact and concurrent writers (two pre-warms
        racing on a shared store) just overwrite with identical bytes.
        """
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(key)
        tmp_path = f"{path}.tmp.{os.getpid()}"
        payload = {
            "version": ARTIFACT_VERSION,
            "key_repr": repr(key),
            "trained": trained,
        }
        with open(tmp_path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        return path

    def load(self, key):
        """The trained model for ``key``, or ``None`` on miss/corruption.

        Tolerant by design: any unreadable, torn, mis-versioned or
        colliding artifact is surfaced as an :class:`ArtifactStoreWarning`
        and treated as a cache miss (the caller re-trains), mirroring the
        shard ledger's forgiving reader.
        """
        path = self.path_for(key)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception as exc:  # torn write, truncation, stale class, ...
            warnings.warn(
                ArtifactStoreWarning(
                    f"unreadable artifact {path} ({exc!r}); re-training"
                ),
                stacklevel=2,
            )
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("version") != ARTIFACT_VERSION
            or payload.get("key_repr") != repr(key)
        ):
            warnings.warn(
                ArtifactStoreWarning(
                    f"artifact {path} does not match its key "
                    "(version or key mismatch); re-training"
                ),
                stacklevel=2,
            )
            return None
        return payload["trained"]


# ----------------------------------------------------------------------
# The process-wide active store (what cached_training consults)
# ----------------------------------------------------------------------

_ACTIVE_STORE: ArtifactStore | None = None


def configure_artifact_store(store: ArtifactStore | str | None) -> ArtifactStore | None:
    """Install (or clear, with ``None``) this process's artifact store.

    Accepts a ready :class:`ArtifactStore` or a root path.  Returns the
    installed store so callers can keep a handle.
    """
    global _ACTIVE_STORE
    if isinstance(store, str):
        store = ArtifactStore(store)
    _ACTIVE_STORE = store
    return store


def active_artifact_store() -> ArtifactStore | None:
    """The store :func:`~repro.fleet.shards.cached_training` consults."""
    return _ACTIVE_STORE


def worker_store_initializer(root: str) -> None:
    """``ProcessPoolExecutor`` initializer: point this worker at ``root``.

    Module-level (hence picklable) so the process backend can ship it to
    spawned as well as forked workers.
    """
    configure_artifact_store(ArtifactStore(root))


# ----------------------------------------------------------------------
# Pre-warm: train each unique configuration exactly once before fan-out
# ----------------------------------------------------------------------


def prewarm_training(specs, store: ArtifactStore) -> dict:
    """Publish every training artifact a grid needs, training each once.

    Walks ``specs`` in key order, asks each scenario for its training
    plan (``(train_key, builder)`` — see
    :func:`repro.fleet.shards.training_plan`), dedupes on the key digest,
    and trains only the configurations the store does not already hold.
    Returns counters: ``unique_keys`` (distinct training configurations
    in the grid), ``trained`` (built this pass) and ``reused`` (already
    in the store), plus ``unplanned`` shards whose scenario declares no
    training (e.g. ``no-pfm``).
    """
    from repro.fleet.shards import training_plan

    plans: dict[str, tuple] = {}
    unplanned = 0
    for spec in sorted(specs, key=lambda s: s.key()):
        plan = training_plan(spec)
        if plan is None:
            unplanned += 1
            continue
        key, builder = plan
        plans.setdefault(train_key_digest(key), (key, builder))
    trained = reused = 0
    for _digest, (key, builder) in sorted(plans.items()):
        if store.contains(key):
            reused += 1
            continue
        store.save(key, builder())
        trained += 1
    return {
        "unique_keys": len(plans),
        "trained": trained,
        "reused": reused,
        "unplanned": unplanned,
    }
