"""The fleet failure taxonomy: what kind of failure is this, and who pays?

The paper's core argument is that a dependable system *classifies* the
faults it observes and reacts per class instead of dying on the first
one.  Dogfooding that onto the fleet runner means drawing one line at
the executor seam:

- **spec-deterministic** — the shard's own code raised.  Re-running the
  spec reproduces the exception bit for bit (every shard derives all of
  its state from the spec), so retrying is wasted work.  These are
  recorded as ``status: "failed"`` ledger entries, skipped on resume,
  and surfaced together in one :class:`~repro.errors.FleetExecutionError`.
- **infrastructure** — the machinery under the shard failed: a worker
  died (``BrokenProcessPool`` / :class:`~repro.errors.WorkerCrashError`),
  an artifact read tore mid-write (``OSError`` / ``EOFError``), the host
  ran out of memory.  The shard itself is innocent until proven
  otherwise, so the supervisor rebuilds the executor if needed and
  resubmits under a bounded :class:`~repro.resilience.RetryPolicy`;
  a spec that keeps taking workers down is quarantined, never retried
  forever and never silently dropped.

Exceptions can override the type-based classification by carrying a
``fleet_failure_kind`` attribute set to one of the two constants — the
seam for custom scenario runners that know better (e.g. a runner that
wraps a flaky network read and wants it retried even though it raises a
``ValueError``).
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor

from repro.errors import WorkerCrashError

#: The shard's own code raised; re-running reproduces it.  Abort + report.
DETERMINISTIC = "spec-deterministic"

#: The machinery under the shard failed; retry, then quarantine.
INFRASTRUCTURE = "infrastructure"

#: Attribute an exception may carry to override classification.
KIND_ATTRIBUTE = "fleet_failure_kind"

#: Exception types that always mean "the machinery failed", not the spec:
#: a broken pool (worker death), a simulated/reported worker crash, torn
#: or failed IO (artifact store, ledger, network filesystem), and memory
#: exhaustion.  ``EOFError`` is what a half-written pickle raises.
_INFRASTRUCTURE_TYPES = (
    BrokenExecutor,
    WorkerCrashError,
    OSError,
    EOFError,
    MemoryError,
)


def classify_failure(exc: BaseException) -> str:
    """``DETERMINISTIC`` or ``INFRASTRUCTURE`` for one observed failure."""
    kind = getattr(exc, KIND_ATTRIBUTE, None)
    if kind in (DETERMINISTIC, INFRASTRUCTURE):
        return kind
    if isinstance(exc, _INFRASTRUCTURE_TYPES):
        return INFRASTRUCTURE
    return DETERMINISTIC


def is_pool_fatal(exc: BaseException) -> bool:
    """Whether this failure killed the whole executor, not just one task.

    ``BrokenExecutor`` (and its ``BrokenProcessPool`` subclass) poisons
    every outstanding future and rejects new submissions — the supervisor
    must rebuild the executor before resubmitting anything.
    """
    return isinstance(exc, BrokenExecutor)


def error_text(exc: BaseException | None) -> str:
    """Deterministic one-line rendering for ledgers and error messages."""
    if exc is None:
        return "unknown error"
    detail = str(exc)
    name = type(exc).__name__
    return f"{name}: {detail}" if detail else name
