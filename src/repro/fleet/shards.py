"""Shard execution: turn one :class:`RunSpec` into one :class:`RunResult`.

A shard is fully self-contained — it derives every RNG seed from the
spec, trains its own predictor (through a per-process memo cache, so a
worker that sees ten shards with the same training configuration trains
once), runs the simulation, and returns a picklable result.  That
self-containment is what makes the K-shard parallel run bit-identical to
the serial run: no shard reads state another shard wrote.

Scenario dispatch is by name:

- ``closed-loop`` — train, then replay one faultload with and without the
  PFM controller (the :func:`repro.core.run_closed_loop` experiment);
- everything else is routed to the PFM fault-injection campaign
  (:func:`repro.resilience.campaign.run_scenario_spec`): ``no-pfm``,
  ``healthy-pfm``, and any attacked scenario whose attack surfaces are
  carried in ``spec.options["attacks"]``.

Custom workloads plug in via :func:`register_scenario_runner`.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.fleet.spec import CLOSED_LOOP, RunResult, RunSpec

# ----------------------------------------------------------------------
# Per-process training cache
# ----------------------------------------------------------------------

#: Trained-model memo, keyed by hashable training configuration.  Lives at
#: module level so each worker process (and the serial backend) trains a
#: given configuration exactly once.  Training is deterministic given the
#: key, so a cache hit and a fresh train are interchangeable — the
#: property the parallel/serial equality guarantee rests on.
_TRAIN_CACHE: dict = {}


def cached_training(key, builder: Callable):
    """The trained model for ``key``: memo, then artifact store, then build.

    Lookup order is (1) the per-process memo, (2) the process's active
    :class:`~repro.fleet.artifacts.ArtifactStore` (where a pre-warm pass
    or another worker already published the model), and only then (3)
    ``builder()`` — whose product is published back to the store so every
    later process loads instead of training.
    """
    if key in _TRAIN_CACHE:
        return _TRAIN_CACHE[key]
    from repro.fleet.artifacts import active_artifact_store

    store = active_artifact_store()
    trained = store.load(key) if store is not None else None
    if trained is None:
        trained = builder()
        if store is not None:
            store.save(key, trained)
    _TRAIN_CACHE[key] = trained
    return trained


def seed_training_cache(key, trained) -> None:
    """Pre-populate the cache (benchmarks inject pre-trained models)."""
    _TRAIN_CACHE[key] = trained


def clear_training_cache() -> None:
    """Drop every cached model (tests; memory pressure)."""
    _TRAIN_CACHE.clear()


# ----------------------------------------------------------------------
# Scenario runners
# ----------------------------------------------------------------------

_RUNNERS: dict[str, Callable[[RunSpec], RunResult]] = {}


def register_scenario_runner(
    name: str, runner: Callable[[RunSpec], RunResult], overwrite: bool = False
) -> None:
    """Make scenario ``name`` executable by the fleet.

    The runner receives the spec and must return a :class:`RunResult`.
    Registration happens at import time of the defining module, so worker
    processes inherit it (the pool forks after imports).
    """
    if name in _RUNNERS and not overwrite:
        raise ConfigurationError(f"scenario runner {name!r} already registered")
    _RUNNERS[name] = runner


def _closed_loop_dataset(spec: RunSpec):
    from repro.telecom.dataset import DatasetConfig

    base = spec.option("dataset")
    if base is None:
        base = DatasetConfig()
    elif isinstance(base, dict):
        base = DatasetConfig(**base)
    return base


def _closed_loop_training_plan(spec: RunSpec):
    """``(train_key, builder)`` for a closed-loop shard.

    Shared by the in-shard training path and the fleet's pre-warm pass,
    so both address the identical cache/artifact entry.
    """
    from dataclasses import replace as dc_replace

    from repro.core import experiment
    from repro.prediction.registry import make_predictor

    seeds = spec.seeds()
    variables = (
        list(spec.variables) if spec.variables else list(experiment.DEFAULT_VARIABLES)
    )
    base = _closed_loop_dataset(spec)
    train_config = dc_replace(base, seed=seeds["train"], horizon=spec.horizon)

    train_key = (
        CLOSED_LOOP,
        spec.predictor,
        spec.predictor_params,
        seeds["train"],
        spec.horizon,
        tuple(variables),
        repr(base),
    )

    def _train():
        predictor = make_predictor(
            spec.predictor,
            rng=np.random.default_rng(seeds["train"]),
            **spec.params(),
        )
        return experiment.train_predictor(train_config, variables, predictor)

    return train_key, _train


def _closed_loop_runner(spec: RunSpec) -> RunResult:
    from repro.core import experiment
    from repro.telemetry.hub import TelemetryHub

    seeds = spec.seeds()
    variables = (
        list(spec.variables) if spec.variables else list(experiment.DEFAULT_VARIABLES)
    )
    base = _closed_loop_dataset(spec)
    trained = cached_training(*_closed_loop_training_plan(spec))

    hub = TelemetryHub() if spec.telemetry else None
    if hub is not None:
        from repro.telemetry.tracing import announce_shard_hub

        announce_shard_hub(hub)
    wall_start = time.perf_counter()
    result = experiment.run_closed_loop(
        train_seed=seeds["train"],
        eval_seed=seeds["eval"],
        horizon=spec.horizon,
        variables=variables,
        config=base,
        trained=trained,
        telemetry=hub,
    )
    wall_seconds = time.perf_counter() - wall_start

    return RunResult(
        spec=spec,
        availability=result.pfm_window_availability,
        failures=result.pfm_failures,
        baseline_availability=result.baseline_window_availability,
        baseline_failures=result.baseline_failures,
        mea_iterations=result.mea_iterations,
        warnings_raised=result.warnings_raised,
        actions_taken=result.actions_taken,
        outcome_matrix=result.outcome_matrix,
        telemetry_events=len(hub.events) if hub is not None else 0,
        metrics_state=hub.registry.to_state() if hub is not None else None,
        wall_seconds=wall_seconds,
    )


register_scenario_runner(CLOSED_LOOP, _closed_loop_runner)


# ----------------------------------------------------------------------
# Training plans (what the artifact-store pre-warm pass walks)
# ----------------------------------------------------------------------

#: scenario name -> plan(spec) -> (train_key, builder) | None
_TRAINING_PLANS: dict[str, Callable] = {CLOSED_LOOP: _closed_loop_training_plan}


def register_training_plan(name: str, plan: Callable, overwrite: bool = False) -> None:
    """Declare how scenario ``name`` trains, for pre-warming.

    ``plan(spec)`` returns ``(train_key, builder)`` — the exact pair the
    scenario's runner hands to :func:`cached_training` — or ``None`` for
    specs that need no training.  Scenarios without a registered plan
    still run; they just cannot be pre-warmed.
    """
    if name in _TRAINING_PLANS and not overwrite:
        raise ConfigurationError(f"training plan {name!r} already registered")
    _TRAINING_PLANS[name] = plan


def training_plan(spec: RunSpec):
    """``(train_key, builder)`` for ``spec``, or ``None`` when unknown.

    Campaign scenarios resolve lazily through
    :func:`repro.resilience.campaign.training_plan_for_spec`, mirroring
    :func:`execute_spec`'s runner dispatch.
    """
    plan = _TRAINING_PLANS.get(spec.scenario)
    if plan is None:
        from repro.resilience import campaign

        if campaign.knows_scenario(spec):
            plan = campaign.training_plan_for_spec
        else:
            return None
    return plan(spec)


def execute_spec(spec: RunSpec, attempt: int = 1) -> RunResult:
    """Run one shard in this process (the worker entry point).

    Module-level (hence picklable) so a ``ProcessPoolExecutor`` can ship
    it; the campaign runners resolve lazily to keep import cycles out of
    the fleet substrate.

    When fleet tracing is armed in this process (the worker initializer
    installed a :class:`~repro.telemetry.tracing.TraceContext`), the
    runner call is bracketed by a capture window: whatever telemetry
    hubs the runner announces are serialized to the shard's JSONL
    sidecar after the run succeeds.  ``attempt`` stamps the sidecar
    header only — a retried shard's event lines byte-match the first
    attempt's, which is how the chaos bench proves a restarted worker's
    trace is complete.  Tracing reads the hubs, never mutates them, so
    results are identical with tracing on or off.
    """
    runner = _RUNNERS.get(spec.scenario)
    if runner is None:
        from repro.resilience import campaign

        if campaign.knows_scenario(spec):
            runner = campaign.run_scenario_spec
        else:
            raise ConfigurationError(
                f"no runner for scenario {spec.scenario!r}; known: "
                f"{sorted(_RUNNERS) + sorted(campaign.known_scenario_names())}"
            )

    from repro.telemetry import tracing

    context = tracing.active_trace()
    if context is None:
        return runner(spec)

    tracing.begin_shard_capture()
    try:
        result = runner(spec)
    finally:
        hubs = tracing.end_shard_capture()
    tracing.write_shard_trace(context, spec.key(), hubs, attempt=attempt)
    return result
