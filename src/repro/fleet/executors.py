"""Executor backends: the seam between ``run_fleet`` and its workers.

``run_fleet`` used to wire a ``ProcessPoolExecutor`` inline, which made
the serial path a separate code branch and left no room for other
executors (a distributed one, a thread pool for IO-bound scenario
runners, ...).  This module extracts the minimal protocol the runner
actually needs — ``submit`` / ``as_completed`` / ``shutdown``, shaped
after :mod:`concurrent.futures` — and a registry so new backends are
drop-in:

- :class:`SerialExecutor` queues tasks at ``submit`` time and runs them
  one at a time, lazily, as :meth:`~SerialExecutor.as_completed` is
  consumed — so progress callbacks and ledger writes still stream
  shard-by-shard, and ``shutdown(cancel_futures=True)`` really does
  abandon the queued remainder.
- :class:`ProcessExecutor` wraps :class:`concurrent.futures.\
ProcessPoolExecutor`; completed futures are yielded in *submission*
  order within each completion batch, so no unordered-set iteration
  (the PFM004 shape) leaks out of the seam.

Both yield plain :class:`concurrent.futures.Future` objects (or the
process pool's), so the runner handles results, exceptions and
cancellation uniformly.  Register additional backends with
:func:`register_executor`; ``run_fleet(backend=name)`` resolves through
:func:`create_executor`.

The supervisor contract: executors are *disposable*.  When a failure is
pool-fatal (``BrokenExecutor`` — see :mod:`repro.fleet.failures`), the
runner's supervisor loop discards the instance and builds a fresh one
through :func:`create_executor`, so a factory must be safely callable
many times per fleet run.  After a pool breaks, every outstanding future
must still complete (with the broken-pool exception) so ``as_completed``
terminates, and ``submit`` should raise rather than hang — exactly the
``ProcessPoolExecutor`` semantics.  A custom backend that cannot honor
this can still run fleets; it just won't survive its own death.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Callable

from repro.errors import ConfigurationError


class SerialExecutor:
    """Run submitted tasks in this process, in submission order, lazily."""

    name = "serial"

    def __init__(
        self, workers: int = 1, initializer: Callable | None = None, initargs=()
    ) -> None:
        # One process, one worker: the initializer runs right here, so
        # serial shards see exactly the environment pool workers would.
        if initializer is not None:
            initializer(*initargs)
        self._queue: list[tuple[Future, Callable, tuple]] = []

    def submit(self, fn: Callable, *args) -> Future:
        future: Future = Future()
        self._queue.append((future, fn, args))
        return future

    def as_completed(self):
        """Execute-and-yield one task at a time (streaming, cancellable)."""
        while self._queue:
            future, fn, args = self._queue.pop(0)
            if not future.set_running_or_notify_cancel():
                continue  # cancelled while queued
            try:
                future.set_result(fn(*args))
            except Exception as exc:  # propagate via Future, like a pool
                future.set_exception(exc)
            yield future

    def shutdown(self, cancel_futures: bool = False) -> None:
        if cancel_futures:
            for future, _fn, _args in self._queue:
                future.cancel()
            self._queue.clear()

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class ProcessExecutor:
    """A ``ProcessPoolExecutor`` behind the fleet executor protocol."""

    name = "process"

    def __init__(
        self, workers: int, initializer: Callable | None = None, initargs=()
    ) -> None:
        self._pool = ProcessPoolExecutor(
            max_workers=workers, initializer=initializer, initargs=initargs
        )
        self._outstanding: set[Future] = set()
        self._submit_order: dict[Future, int] = {}

    def submit(self, fn: Callable, *args) -> Future:
        future = self._pool.submit(fn, *args)
        self._submit_order[future] = len(self._submit_order)
        self._outstanding.add(future)
        return future

    def as_completed(self):
        """Yield futures as they finish, submission-ordered per batch.

        ``wait`` returns an unordered *set*; sorting each batch by
        submission index keeps everything downstream of this seam
        deterministic given the same completion timing.
        """
        while self._outstanding:
            finished, self._outstanding = wait(
                self._outstanding, return_when=FIRST_COMPLETED
            )
            for future in sorted(finished, key=self._submit_order.__getitem__):
                yield future

    def shutdown(self, cancel_futures: bool = False) -> None:
        # cancel_futures drops everything still queued inside the pool;
        # wait=True lets already-running tasks finish so their results
        # can still be checkpointed by the caller.
        self._pool.shutdown(wait=True, cancel_futures=cancel_futures)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: name -> factory(workers, initializer, initargs) -> executor
_EXECUTORS: dict[str, Callable] = {
    "serial": SerialExecutor,
    "process": ProcessExecutor,
}


def executor_names() -> tuple[str, ...]:
    """The registered backend names, sorted (for messages and docs)."""
    return tuple(sorted(_EXECUTORS))


def register_executor(name: str, factory: Callable, overwrite: bool = False) -> None:
    """Make ``run_fleet(backend=name)`` resolve to ``factory``.

    ``factory(workers, initializer=..., initargs=...)`` must return an
    object with the ``submit`` / ``as_completed`` / ``shutdown`` shape
    above.  This is the drop-in point for a future distributed executor.
    """
    if name in _EXECUTORS and not overwrite:
        raise ConfigurationError(f"executor backend {name!r} already registered")
    _EXECUTORS[name] = factory


def create_executor(
    name: str, workers: int, initializer: Callable | None = None, initargs=()
):
    """Instantiate the backend registered under ``name``."""
    try:
        factory = _EXECUTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; use one of {executor_names()}"
        ) from None
    return factory(workers, initializer=initializer, initargs=initargs)
