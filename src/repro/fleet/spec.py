"""The unified run description: one :class:`RunSpec` per shard.

Every entry point used to grow its own kwarg list (``train_seed=...,
eval_seed=..., horizon=...`` on :func:`repro.core.run_closed_loop`, a
mutable :class:`~repro.resilience.campaign.CampaignConfig` on the
campaign, argparse flags on the CLI).  The fleet API collapses them into
one frozen value object:

- a **scenario** name selecting what kind of run a shard performs
  (``closed-loop``, ``no-pfm``, ``healthy-pfm``, or any PFM attack
  scenario from :func:`repro.resilience.campaign.default_scenarios`),
- one **master seed** from which the train / eval / injection seeds are
  derived exactly as :class:`~repro.resilience.campaign.CampaignConfig`
  derives them (``seed``, ``seed + 1000``, ``seed + 2000``), with
  optional explicit overrides for designs that share a training seed
  across evaluation faultloads,
- a declarative **predictor** name resolved through
  :func:`repro.prediction.make_predictor`, plus its parameters,
- the **horizon** and **telemetry** flags.

Specs are hashable, picklable and JSON-round-trippable; :meth:`RunSpec.key`
is the stable identity used by the shard ledger to decide, on resume,
which shards of a grid are already done.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace

from repro.errors import ConfigurationError

#: Hashable form of a parameter mapping: sorted ``(name, value)`` pairs.
ParamSet = tuple[tuple[str, object], ...]

#: Offsets of the master-seed derivation (mirrors ``CampaignConfig``).
EVAL_SEED_OFFSET = 1000
INJECTION_SEED_OFFSET = 2000

#: The scenario every plain train-then-evaluate comparison uses.
CLOSED_LOOP = "closed-loop"


def _paramset(params) -> ParamSet:
    """Normalize a dict / iterable of pairs into a canonical ParamSet."""
    if params is None:
        return ()
    if isinstance(params, dict):
        items = params.items()
    else:
        items = [(k, v) for k, v in params]
    normalized = []
    for key, value in sorted(items):
        normalized.append((str(key), _paramvalue(value)))
    return tuple(normalized)


def _paramvalue(value):
    """Normalize one param value into a hashable canonical form.

    Dicts become nested ParamSets and list/tuple *elements* are
    normalized recursively, so nested ensemble specs (lists of member
    dicts) stay hashable — ``RunSpec`` identity and the per-process
    training cache both key on these values.
    """
    if isinstance(value, dict):
        return _paramset(value)
    if isinstance(value, (list, tuple)):
        return tuple(_paramvalue(v) for v in value)
    return value


def _jsonable(value):
    """ParamSet values back into plain JSON types (tuples -> lists).

    A tuple reads back as a dict only when every element is a
    ``(str, value)`` pair — a nested ParamSet; anything else (including a
    list of nested ParamSets, e.g. ensemble members) stays a list.
    """
    if isinstance(value, tuple):
        if value and all(
            isinstance(v, tuple) and len(v) == 2 and isinstance(v[0], str)
            for v in value
        ):
            return {k: _jsonable(v) for k, v in value}
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class RunSpec:
    """One shard of an experiment grid, described declaratively."""

    scenario: str = CLOSED_LOOP
    seed: int = 11
    predictor: str = "ubf"
    predictor_params: ParamSet = ()
    horizon: float = 2 * 86_400.0
    variables: tuple[str, ...] | None = None
    telemetry: bool = False
    #: Explicit seed overrides; ``None`` means "derive from the master
    #: seed".  Multi-seed sweeps that share one trained predictor pin
    #: ``train_seed`` and let ``eval_seed`` follow the master seed.
    train_seed: int | None = None
    eval_seed: int | None = None
    injection_seed: int | None = None
    #: Scenario-specific knobs (attack_mtbf, attack_duration, dataset
    #: overrides, ...), canonicalized like ``predictor_params``.
    options: ParamSet = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "predictor_params", _paramset(self.predictor_params))
        object.__setattr__(self, "options", _paramset(self.options))
        if self.variables is not None:
            object.__setattr__(self, "variables", tuple(self.variables))
        if not self.scenario:
            raise ConfigurationError("scenario must be a non-empty name")
        if not self.predictor:
            raise ConfigurationError("predictor must be a non-empty name")
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")

    # ------------------------------------------------------------------
    # Derived values
    # ------------------------------------------------------------------

    def seeds(self) -> dict[str, int]:
        """The resolved train / eval / injection seeds of this shard."""
        return {
            "train": self.train_seed if self.train_seed is not None else self.seed,
            "eval": (
                self.eval_seed
                if self.eval_seed is not None
                else self.seed + EVAL_SEED_OFFSET
            ),
            "injection": (
                self.injection_seed
                if self.injection_seed is not None
                else self.seed + INJECTION_SEED_OFFSET
            ),
        }

    def params(self) -> dict[str, object]:
        """Predictor parameters as a plain dict."""
        return {k: _jsonable(v) for k, v in self.predictor_params}

    def option(self, name: str, default=None):
        """Look up one scenario option (flat keys only)."""
        for key, value in self.options:
            if key == name:
                return _jsonable(value)
        return default

    def option_dict(self) -> dict[str, object]:
        """All scenario options as a plain dict."""
        return {k: _jsonable(v) for k, v in self.options}

    def key(self) -> str:
        """Stable shard identity: readable prefix + content digest.

        Two specs share a key iff every field is equal, so the ledger can
        match completed shards across processes and sessions.
        """
        # default=repr: options may carry rich config objects (e.g. a full
        # DatasetConfig); their dataclass repr is deterministic, keeping
        # the key stable even when the spec is not JSON-round-trippable.
        doc = json.dumps(self.to_json_dict(), sort_keys=True, default=repr)
        digest = hashlib.sha256(doc.encode()).hexdigest()[:12]
        return f"{self.scenario}:{self.predictor}:seed{self.seed}:{digest}"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_json_dict(self) -> dict:
        """JSON-ready document (round-trips via :meth:`from_json_dict`)."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "predictor": self.predictor,
            "predictor_params": {k: _jsonable(v) for k, v in self.predictor_params},
            "horizon": self.horizon,
            "variables": list(self.variables) if self.variables is not None else None,
            "telemetry": self.telemetry,
            "train_seed": self.train_seed,
            "eval_seed": self.eval_seed,
            "injection_seed": self.injection_seed,
            "options": {k: _jsonable(v) for k, v in self.options},
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigurationError(f"unknown RunSpec fields: {sorted(unknown)}")
        return cls(**doc)

    def json_roundtrips(self) -> bool:
        """Whether this spec is made of plain JSON values end to end.

        A spec carrying rich objects in ``options`` still *runs* (and
        still has a stable :meth:`key` — serialization falls back to
        ``repr``), but checkpoint/resume then depends on every such repr
        being byte-identical in the resuming process.  Deterministic
        dataclass reprs survive that; id-based reprs do not, and the
        shard re-runs on every resume (the ledger warns at append time —
        see :meth:`ShardLedger.append`).  Grids meant for resume should
        keep this predicate true by passing options as plain JSON types.
        """
        try:
            doc = json.loads(json.dumps(self.to_json_dict()))
            return RunSpec.from_json_dict(doc).key() == self.key()
        except (ValueError, TypeError, ConfigurationError):
            return False

    def replace(self, **changes) -> "RunSpec":
        """A copy with the given fields changed (specs are immutable)."""
        return replace(self, **changes)


def grid(
    scenarios,
    seeds,
    predictors=("ubf",),
    **common,
) -> list[RunSpec]:
    """The cross product ``scenario x seed x predictor`` as RunSpecs.

    ``predictors`` entries are names, ``(name, params)`` pairs, or nested
    spec dicts (``{"name": "noisy-or", "members": [...]}``, validated via
    :func:`repro.prediction.registry.normalize_predictor_spec`); ``common``
    fields (horizon, telemetry, options, ...) are shared by every spec.
    Duplicate specs collapse — the grid is a set.
    """
    specs: list[RunSpec] = []
    seen: set[str] = set()
    for scenario in scenarios:
        for seed in seeds:
            for predictor in predictors:
                if isinstance(predictor, str):
                    name, params = predictor, ()
                elif isinstance(predictor, dict):
                    from repro.prediction.registry import normalize_predictor_spec

                    normalized = normalize_predictor_spec(predictor)
                    name = normalized["name"]
                    params = {
                        k: v for k, v in normalized.items() if k != "name"
                    }
                else:
                    name, params = predictor
                spec = RunSpec(
                    scenario=scenario,
                    seed=int(seed),
                    predictor=name,
                    predictor_params=params,
                    **common,
                )
                if spec.key() not in seen:
                    seen.add(spec.key())
                    specs.append(spec)
    if not specs:
        raise ConfigurationError("empty grid: need >= 1 scenario, seed, predictor")
    return specs


@dataclass
class RunResult:
    """The picklable outcome of one shard.

    Every field is a plain value (or JSON-ready container) so results
    cross process boundaries and land in the shard ledger unchanged.
    Telemetry metrics travel as the registry *state*
    (:meth:`repro.telemetry.MetricsRegistry.to_state`), which the
    aggregator merges across shards.
    """

    spec: RunSpec
    availability: float
    failures: int
    baseline_availability: float | None = None
    baseline_failures: int | None = None
    mea_iterations: int = 0
    warnings_raised: int = 0
    warning_episodes: int = 0
    actions_taken: int = 0
    attack_episodes: int = 0
    outcome_matrix: dict = field(default_factory=dict)
    resilience: dict = field(default_factory=dict)
    online_quality: dict = field(default_factory=dict)
    telemetry_events: int = 0
    metrics_state: list | None = None
    artifacts: dict = field(default_factory=dict)
    #: Wall-clock cost of the shard.  Excluded from aggregates (it is the
    #: one legitimately nondeterministic field) but kept for timing
    #: reports and the fleet bench.
    wall_seconds: float = 0.0

    @property
    def unavailability_ratio(self) -> float:
        """Measured Eq. 14 ratio vs this shard's own baseline (if any)."""
        if self.baseline_availability is None:
            return float("nan")
        baseline_unavail = 1.0 - self.baseline_availability
        if baseline_unavail <= 0:
            return 1.0
        return (1.0 - self.availability) / baseline_unavail

    def metrics_registry(self):
        """Rebuild the shard's metric registry (empty when none shipped)."""
        from repro.telemetry.metrics import MetricsRegistry

        if self.metrics_state is None:
            return MetricsRegistry()
        return MetricsRegistry.from_state(self.metrics_state)

    def to_json_dict(self) -> dict:
        doc = {
            "spec": self.spec.to_json_dict(),
            "availability": self.availability,
            "failures": self.failures,
            "baseline_availability": self.baseline_availability,
            "baseline_failures": self.baseline_failures,
            "mea_iterations": self.mea_iterations,
            "warnings_raised": self.warnings_raised,
            "warning_episodes": self.warning_episodes,
            "actions_taken": self.actions_taken,
            "attack_episodes": self.attack_episodes,
            "outcome_matrix": self.outcome_matrix,
            "resilience": self.resilience,
            "online_quality": self.online_quality,
            "telemetry_events": self.telemetry_events,
            "metrics_state": self.metrics_state,
            "artifacts": self.artifacts,
            "wall_seconds": self.wall_seconds,
        }
        return doc

    @classmethod
    def from_json_dict(cls, doc: dict) -> "RunResult":
        doc = dict(doc)
        doc["spec"] = RunSpec.from_json_dict(doc["spec"])
        known = {f.name for f in fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ConfigurationError(f"unknown RunResult fields: {sorted(unknown)}")
        return cls(**doc)
