"""Event primitives for the discrete-event engine.

Three things can sit in a process's ``yield``:

- :class:`Timeout` -- resume after a simulated delay,
- :class:`Signal` -- resume when another process triggers the signal,
- a resource request (see :mod:`repro.simulator.resources`).

:class:`Event` is the internal queue entry; user code rarely constructs it
directly (use :meth:`Engine.schedule`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError


@dataclass(order=True)
class Event:
    """An entry in the engine's event queue.

    Ordering is by ``(time, priority, seq)`` so simultaneous events fire in
    deterministic (priority, then insertion) order.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated time units."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:
        return f"Timeout({self.delay})"


class Signal:
    """A broadcast condition processes can wait on.

    A process waits by ``value = yield signal``; another process wakes all
    waiters with :meth:`trigger`.  The triggered payload is delivered as the
    value of the ``yield`` expression.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Any] = []  # Process instances
        self._engine: Any = None

    def _register(self, process: Any, engine: Any) -> None:
        self._waiters.append(process)
        self._engine = engine

    def trigger(self, payload: Any = None) -> int:
        """Wake all waiting processes; returns how many were woken."""
        if self._engine is None:
            # Nobody ever waited; nothing to do.
            count = len(self._waiters)
            self._waiters.clear()
            return count
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self._engine.schedule(0.0, lambda p=process: p.resume(payload))
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"
