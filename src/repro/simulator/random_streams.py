"""Named, reproducible random-number streams.

Every stochastic component of a simulation draws from its own named stream
so that (a) runs are reproducible from a single root seed and (b) changing
one component's draws does not perturb the others -- a standard requirement
for credible simulation experiments.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomStreams:
    """Factory of independent :class:`numpy.random.Generator` instances.

    Streams are keyed by name; the same ``(root_seed, name)`` pair always
    yields an identically-seeded generator.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def get(self, name: str) -> np.random.Generator:
        """The stream for ``name`` (created on first use, then cached)."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive_seed(name))
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """A brand-new generator for ``name`` (not cached; always restarts)."""
        return np.random.default_rng(self._derive_seed(name))

    def spawn(self, prefix: str) -> "RandomStreams":
        """A child factory whose streams are namespaced under ``prefix``."""
        child = RandomStreams(self._derive_seed(prefix))
        return child

    def __repr__(self) -> str:
        return f"RandomStreams(root_seed={self.root_seed}, streams={sorted(self._streams)})"
