"""The discrete-event simulation engine: clock plus event queue."""

from __future__ import annotations

import heapq
from typing import Callable, Generator

from repro.errors import SimulationError
from repro.simulator.events import Event
from repro.simulator.process import Process


class Engine:
    """Event queue with a simulated clock.

    Typical use::

        engine = Engine()

        def worker():
            yield Timeout(5.0)
            print("woke at", engine.now)

        engine.process(worker())
        engine.run(until=100.0)
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = 0
        self._running = False
        self.processed_events = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, delay: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = Event(time=time, priority=priority, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator-based process and start it immediately."""
        proc = Process(self, generator, name=name)
        proc.start()
        return proc

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Process the next event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self.processed_events += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run events until the queue empties, the clock passes ``until``,
        or ``max_events`` have fired.  Returns the final clock value.

        When stopping at ``until``, the clock is advanced exactly to
        ``until`` (events beyond it stay queued).
        """
        if self._running:
            raise SimulationError("engine is already running (no re-entrant run)")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                if not self.step():
                    break
                fired += 1
            else:
                if until is not None and self._now < until:
                    self._now = until
        finally:
            self._running = False
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    def __repr__(self) -> str:
        return f"Engine(now={self._now}, pending={len(self._queue)})"
