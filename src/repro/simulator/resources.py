"""Queued resources for the simulation engine.

:class:`Resource` models ``capacity`` interchangeable servers with a FIFO
wait queue (think: worker threads in a container).  :class:`Store` models a
FIFO buffer of items (think: a message queue).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError


class _Request:
    """Internal: what ``resource.request()`` yields to the engine."""

    def __init__(self, resource: "Resource") -> None:
        self.resource = resource

    def _register_waiter(self, process: Any) -> None:
        self.resource._enqueue(process)


class Resource:
    """``capacity`` servers with FIFO queueing.

    Usage inside a process::

        yield resource.request()
        try:
            yield Timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, engine: Any, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.engine = engine
        self.capacity = int(capacity)
        self.name = name or "resource"
        self.in_use = 0
        self._waiting: deque[Any] = deque()
        # Simple occupancy accounting for utilization metrics.
        self._busy_time = 0.0
        self._last_change = engine.now

    def request(self) -> _Request:
        """Yieldable request; the process resumes once a server is free."""
        return _Request(self)

    def _account(self) -> None:
        now = self.engine.now
        self._busy_time += self.in_use * (now - self._last_change)
        self._last_change = now

    def _enqueue(self, process: Any) -> None:
        if self.in_use < self.capacity:
            self._account()
            self.in_use += 1
            self.engine.schedule(0.0, lambda: process.resume(self))
        else:
            self._waiting.append(process)

    def release(self) -> None:
        """Free one server; hands it to the longest-waiting process."""
        if self.in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._account()
        if self._waiting:
            process = self._waiting.popleft()
            self.engine.schedule(0.0, lambda: process.resume(self))
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def utilization(self) -> float:
        """Mean fraction of capacity in use since engine start."""
        elapsed = self.engine.now
        if elapsed <= 0:
            return 0.0
        busy = self._busy_time + self.in_use * (self.engine.now - self._last_change)
        return busy / (elapsed * self.capacity)

    def drain_queue(self) -> int:
        """Drop all waiting requests (used by 'clear queues' clean-up
        countermeasures); returns the number of dropped waiters."""
        dropped = len(self._waiting)
        self._waiting.clear()
        return dropped

    def __repr__(self) -> str:
        return (
            f"Resource({self.name!r}, in_use={self.in_use}/{self.capacity}, "
            f"queued={len(self._waiting)})"
        )


class _GetRequest:
    def __init__(self, store: "Store") -> None:
        self.store = store

    def _register_waiter(self, process: Any) -> None:
        self.store._enqueue_getter(process)


class Store:
    """Unbounded (or bounded) FIFO buffer of items."""

    def __init__(self, engine: Any, capacity: int | None = None, name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError("store capacity must be >= 1 or None")
        self.engine = engine
        self.capacity = capacity
        self.name = name or "store"
        self._items: deque[Any] = deque()
        self._getters: deque[Any] = deque()
        self.dropped = 0

    def put(self, item: Any) -> bool:
        """Add an item; returns False (and counts a drop) when full."""
        if self._getters:
            process = self._getters.popleft()
            self.engine.schedule(0.0, lambda: process.resume(item))
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        return True

    def get(self) -> _GetRequest:
        """Yieldable request; resumes with the next item."""
        return _GetRequest(self)

    def _enqueue_getter(self, process: Any) -> None:
        if self._items:
            item = self._items.popleft()
            self.engine.schedule(0.0, lambda: process.resume(item))
        else:
            self._getters.append(process)

    def clear(self) -> int:
        """Drop all buffered items; returns how many were dropped."""
        count = len(self._items)
        self._items.clear()
        return count

    @property
    def level(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        return f"Store({self.name!r}, level={len(self._items)})"
