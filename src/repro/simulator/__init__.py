"""A compact discrete-event simulation (DES) engine.

This substrate underlies the telecom case-study system and the closed-loop
PFM experiments.  It provides:

- :class:`~repro.simulator.engine.Engine` -- event queue and clock,
- generator-based :class:`~repro.simulator.process.Process` coroutines that
  ``yield`` :class:`~repro.simulator.events.Timeout`,
  :class:`~repro.simulator.events.Signal` waits or resource requests,
- :class:`~repro.simulator.resources.Resource` /
  :class:`~repro.simulator.resources.Store` with FIFO queueing,
- :class:`~repro.simulator.random_streams.RandomStreams` -- named,
  reproducible random-number streams.
"""

from repro.simulator.engine import Engine
from repro.simulator.events import Event, Signal, Timeout
from repro.simulator.process import Process
from repro.simulator.random_streams import RandomStreams
from repro.simulator.resources import Resource, Store

__all__ = [
    "Engine",
    "Event",
    "Signal",
    "Timeout",
    "Process",
    "RandomStreams",
    "Resource",
    "Store",
]
