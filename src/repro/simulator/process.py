"""Generator-based simulation processes.

A process is a Python generator that yields what it is waiting for:

- ``yield Timeout(d)``            -- sleep for ``d`` time units,
- ``yield signal``                -- wait until ``signal.trigger()``,
- ``yield resource.request()``    -- wait until the resource is granted.

The value sent back into the generator is the payload of the wake-up (the
signal's trigger payload, or the resource grant).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError
from repro.simulator.events import Signal, Timeout


class Process:
    """Couples a generator to an :class:`~repro.simulator.engine.Engine`."""

    def __init__(self, engine: Any, generator: Generator, name: str = "") -> None:
        self.engine = engine
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self.completion = Signal(f"{self.name}.completion")

    def start(self) -> None:
        """Schedule the first advance at the current time."""
        self.engine.schedule(0.0, lambda: self.resume(None))

    def resume(self, payload: Any) -> None:
        """Advance the generator, dispatching on what it yields next."""
        if self.finished:
            return
        try:
            yielded = self.generator.send(payload)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.completion.trigger(stop.value)
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.engine.schedule(yielded.delay, lambda: self.resume(None))
        elif isinstance(yielded, Signal):
            yielded._register(self, self.engine)
        elif hasattr(yielded, "_register_waiter"):
            # Resource/Store request objects implement the waiter protocol.
            yielded._register_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded an unsupported object: {yielded!r}"
            )

    def interrupt(self) -> None:
        """Terminate the process by closing its generator."""
        if self.finished:
            return
        self.generator.close()
        self.finished = True
        self.completion.trigger(None)

    def __repr__(self) -> str:
        status = "finished" if self.finished else "active"
        return f"Process({self.name!r}, {status})"
