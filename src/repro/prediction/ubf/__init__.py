"""Universal Basis Functions (UBF) failure prediction (paper Sect. 3.2).

UBF is a function-approximation method over symptom-monitoring variables:

1. variable selection by the Probabilistic Wrapper Approach
   (:mod:`~repro.prediction.ubf.pwa`),
2. fitting a mixture-kernel network mapping monitoring data onto a failure
   indicator such as interval service availability
   (:mod:`~repro.prediction.ubf.network`),
3. online scoring of fresh monitoring data
   (:mod:`~repro.prediction.ubf.predictor`).
"""

from repro.prediction.ubf.kernels import GaussianKernel, SigmoidKernel, UBFKernel
from repro.prediction.ubf.network import UBFNetwork
from repro.prediction.ubf.predictor import UBFPredictor
from repro.prediction.ubf.pwa import (
    ProbabilisticWrapper,
    RidgeCVFitness,
    backward_elimination,
    forward_selection,
    ridge_cv_fitness,
)

__all__ = [
    "GaussianKernel",
    "SigmoidKernel",
    "UBFKernel",
    "UBFNetwork",
    "UBFPredictor",
    "ProbabilisticWrapper",
    "RidgeCVFitness",
    "backward_elimination",
    "forward_selection",
    "ridge_cv_fitness",
]
