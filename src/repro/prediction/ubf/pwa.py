"""Variable selection: the Probabilistic Wrapper Approach (PWA).

"PWA is a variable selection algorithm that combines forward selection and
backward elimination in a probabilistic framework.  It has proven to be
very effective, outperforming by far both methods as well as a selection
by (human) domain experts."

The implementation keeps a per-variable inclusion probability.  Each round
it samples candidate subsets, evaluates them with a (pluggable, cheap)
fitness function, and shifts the inclusion probabilities toward variables
that appear in above-average subsets.  Proposals are biased both toward
adding promising variables (forward moves) and dropping doubtful ones
(backward moves), which is the forward/backward combination the paper
describes.

Plain :func:`forward_selection` and :func:`backward_elimination` are
provided as the ablation baselines (bench A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import ensure_rng

#: A fitness function maps (X restricted to a subset, y) to a score
#: (higher is better).
Fitness = Callable[[np.ndarray, np.ndarray], float]


@dataclass(frozen=True)
class RidgeCVFitness:
    """Cheap default fitness: k-fold cross-validated ridge-regression R^2.

    Deterministic (contiguous folds) so selection results are
    reproducible.  A frozen dataclass rather than a closure so trained
    predictors that keep a reference to their fitness stay picklable
    (process-pool workers and the fleet artifact store both ship trained
    models across process boundaries).
    """

    folds: int = 3
    ridge: float = 1e-2

    def __post_init__(self) -> None:
        if self.folds < 2:
            raise ConfigurationError("need at least 2 folds")

    def __call__(self, x: np.ndarray, y: np.ndarray) -> float:
        folds, ridge = self.folds, self.ridge
        x = np.atleast_2d(x)
        y = np.asarray(y, dtype=float).ravel()
        n = y.size
        if x.shape[1] == 0 or n < 2 * folds:
            return -np.inf
        indices = np.arange(n)
        bounds = np.linspace(0, n, folds + 1, dtype=int)
        sse, sst = 0.0, 0.0
        for f in range(folds):
            test = indices[bounds[f] : bounds[f + 1]]
            train = np.concatenate([indices[: bounds[f]], indices[bounds[f + 1] :]])
            x_train, y_train = x[train], y[train]
            x_test, y_test = x[test], y[test]
            mean = x_train.mean(axis=0)
            std = np.where(x_train.std(axis=0) > 1e-12, x_train.std(axis=0), 1.0)
            a = np.column_stack(
                [np.ones(train.size), (x_train - mean) / std]
            )
            gram = a.T @ a + ridge * np.eye(a.shape[1])
            beta = np.linalg.solve(gram, a.T @ y_train)
            a_test = np.column_stack([np.ones(test.size), (x_test - mean) / std])
            pred = a_test @ beta
            sse += float(np.sum((pred - y_test) ** 2))
            sst += float(np.sum((y_test - y_train.mean()) ** 2))
        if sst <= 0:
            return -np.inf
        return 1.0 - sse / sst


def ridge_cv_fitness(folds: int = 3, ridge: float = 1e-2) -> Fitness:
    """The default :class:`RidgeCVFitness`, as a plain callable."""
    return RidgeCVFitness(folds=folds, ridge=ridge)


@dataclass
class SelectionResult:
    """Outcome of a variable-selection run."""

    selected: list[int]
    probabilities: np.ndarray | None
    best_fitness: float
    evaluations: int

    def names(self, variables: Sequence[str]) -> list[str]:
        return [variables[i] for i in self.selected]


class ProbabilisticWrapper:
    """The PWA selector.

    Parameters
    ----------
    fitness:
        Subset evaluation function; defaults to :func:`ridge_cv_fitness`.
    n_rounds:
        Sampling rounds.
    samples_per_round:
        Candidate subsets evaluated per round.
    learning_rate:
        How strongly inclusion probabilities move per round.
    rng:
        Random generator.
    """

    def __init__(
        self,
        fitness: Fitness | None = None,
        n_rounds: int = 12,
        samples_per_round: int = 12,
        learning_rate: float = 0.35,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_rounds < 1 or samples_per_round < 2:
            raise ConfigurationError("need n_rounds >= 1 and samples_per_round >= 2")
        if not 0 < learning_rate <= 1:
            raise ConfigurationError("learning_rate must be in (0, 1]")
        self.fitness = fitness or ridge_cv_fitness()
        self.n_rounds = n_rounds
        self.samples_per_round = samples_per_round
        self.learning_rate = learning_rate
        self.rng = ensure_rng(rng, default_seed=0)

    def select(self, x: np.ndarray, y: np.ndarray) -> SelectionResult:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        n_vars = x.shape[1]
        if n_vars == 0:
            raise ConfigurationError("no variables to select from")
        probs = np.full(n_vars, 0.5)
        best_subset = list(range(n_vars))
        best_fit = self.fitness(x, y)
        evaluations = 1
        for _ in range(self.n_rounds):
            subsets: list[np.ndarray] = []
            fits: list[float] = []
            for _ in range(self.samples_per_round):
                mask = self.rng.random(n_vars) < probs
                # Forward move: force one promising excluded variable in.
                excluded = np.nonzero(~mask)[0]
                if excluded.size and self.rng.random() < 0.5:
                    pick = excluded[np.argmax(probs[excluded])]
                    mask[pick] = True
                # Backward move: force one doubtful included variable out.
                included = np.nonzero(mask)[0]
                if included.size > 1 and self.rng.random() < 0.5:
                    drop = included[np.argmin(probs[included])]
                    mask[drop] = False
                if not mask.any():
                    mask[self.rng.integers(n_vars)] = True
                subset = np.nonzero(mask)[0]
                fit = self.fitness(x[:, subset], y)
                evaluations += 1
                subsets.append(mask)
                fits.append(fit)
                if fit > best_fit:
                    best_fit = fit
                    best_subset = subset.tolist()
            # Probability update: average membership of above-median subsets.
            fits_arr = np.asarray(fits)
            finite = np.isfinite(fits_arr)
            if finite.sum() < 2:
                continue
            median = np.median(fits_arr[finite])
            good = [
                m
                for m, f in zip(subsets, fits, strict=True)
                if np.isfinite(f) and f >= median
            ]
            if not good:
                continue
            target = np.mean(np.vstack(good), axis=0)
            probs = (1 - self.learning_rate) * probs + self.learning_rate * target
            probs = np.clip(probs, 0.05, 0.95)
        return SelectionResult(
            selected=sorted(best_subset),
            probabilities=probs,
            best_fitness=best_fit,
            evaluations=evaluations,
        )


def forward_selection(
    x: np.ndarray,
    y: np.ndarray,
    fitness: Fitness | None = None,
    max_vars: int | None = None,
) -> SelectionResult:
    """Greedy forward selection (ablation baseline)."""
    fitness = fitness or ridge_cv_fitness()
    x = np.atleast_2d(np.asarray(x, dtype=float))
    n_vars = x.shape[1]
    max_vars = n_vars if max_vars is None else min(max_vars, n_vars)
    selected: list[int] = []
    best_fit = -np.inf
    evaluations = 0
    improved = True
    while improved and len(selected) < max_vars:
        improved = False
        best_candidate = None
        for j in range(n_vars):
            if j in selected:
                continue
            candidate = sorted(selected + [j])
            fit = fitness(x[:, candidate], y)
            evaluations += 1
            if fit > best_fit:
                best_fit = fit
                best_candidate = j
                improved = True
        if best_candidate is not None:
            selected.append(best_candidate)
    return SelectionResult(
        selected=sorted(selected),
        probabilities=None,
        best_fitness=best_fit,
        evaluations=evaluations,
    )


def backward_elimination(
    x: np.ndarray,
    y: np.ndarray,
    fitness: Fitness | None = None,
) -> SelectionResult:
    """Greedy backward elimination (ablation baseline)."""
    fitness = fitness or ridge_cv_fitness()
    x = np.atleast_2d(np.asarray(x, dtype=float))
    n_vars = x.shape[1]
    selected = list(range(n_vars))
    best_fit = fitness(x, y)
    evaluations = 1
    improved = True
    while improved and len(selected) > 1:
        improved = False
        best_drop = None
        for j in list(selected):
            candidate = [v for v in selected if v != j]
            fit = fitness(x[:, candidate], y)
            evaluations += 1
            if fit > best_fit:
                best_fit = fit
                best_drop = j
                improved = True
        if best_drop is not None:
            selected.remove(best_drop)
    return SelectionResult(
        selected=sorted(selected),
        probabilities=None,
        best_fitness=best_fit,
        evaluations=evaluations,
    )
