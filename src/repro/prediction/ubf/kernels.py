"""Kernels for the UBF network.

The paper's Eq. 1 defines a UBF kernel as a mixture of two base kernels:

.. math::

    k_i(x) = m_i \\, \\gamma(x, \\lambda^\\gamma_i)
             + (1 - m_i) \\, \\delta(x, \\lambda^\\delta_i)

"For example, if a Gaussian and a sigmoid kernel are mixed, either
'peaked', 'stepping' or mixed behavior can be modeled in various regions
of the input space."  We implement exactly that pair: a radial Gaussian
and a radial sigmoid, mixed by a per-kernel weight ``m_i``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

_MIN_WIDTH = 1e-6


def _radii(x: np.ndarray, center: np.ndarray) -> np.ndarray:
    """Euclidean distances of rows of ``x`` from ``center``."""
    diff = np.atleast_2d(x) - center[None, :]
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


class GaussianKernel:
    """Radial Gaussian: ``exp(-r^2 / (2 w^2))`` -- "peaked" behaviour."""

    def __init__(self, center: np.ndarray, width: float) -> None:
        self.center = np.asarray(center, dtype=float)
        self.width = max(float(width), _MIN_WIDTH)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        r = _radii(x, self.center)
        return np.exp(-0.5 * (r / self.width) ** 2)


class SigmoidKernel:
    """Radial sigmoid: ``1 / (1 + exp((r - b) / w))`` -- "stepping" behaviour.

    Close to 1 inside radius ``b`` of the center and falls to 0 outside,
    with transition sharpness ``w``.
    """

    def __init__(self, center: np.ndarray, width: float, offset: float) -> None:
        self.center = np.asarray(center, dtype=float)
        self.width = max(float(width), _MIN_WIDTH)
        self.offset = float(offset)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        r = _radii(x, self.center)
        z = np.clip((r - self.offset) / self.width, -50.0, 50.0)
        return 1.0 / (1.0 + np.exp(z))


class UBFKernel:
    """The Eq. 1 mixture of a Gaussian and a sigmoid kernel."""

    def __init__(
        self,
        center: np.ndarray,
        gaussian_width: float,
        sigmoid_width: float,
        sigmoid_offset: float,
        mixture: float,
    ) -> None:
        if not 0.0 <= mixture <= 1.0:
            raise ConfigurationError("mixture weight must be in [0, 1]")
        self.center = np.asarray(center, dtype=float)
        self.gaussian = GaussianKernel(center, gaussian_width)
        self.sigmoid = SigmoidKernel(center, sigmoid_width, sigmoid_offset)
        self.mixture = float(mixture)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.mixture * self.gaussian(x) + (1.0 - self.mixture) * self.sigmoid(x)

    def __repr__(self) -> str:
        return (
            f"UBFKernel(m={self.mixture:.2f}, gw={self.gaussian.width:.3f}, "
            f"sw={self.sigmoid.width:.3f}, b={self.sigmoid.offset:.3f})"
        )


def kernel_matrix(
    x: np.ndarray,
    centers: np.ndarray,
    gaussian_widths: np.ndarray,
    sigmoid_widths: np.ndarray,
    sigmoid_offsets: np.ndarray,
    mixtures: np.ndarray,
) -> np.ndarray:
    """Vectorized design matrix: ``K[n, i] = k_i(x_n)``.

    The row-wise functional form matches :class:`UBFKernel`; this bulk
    version is what the trainer's inner loop uses.
    """
    x = np.atleast_2d(x)
    diff = x[:, None, :] - centers[None, :, :]
    r = np.sqrt(np.einsum("nik,nik->ni", diff, diff))
    gw = np.maximum(gaussian_widths, _MIN_WIDTH)[None, :]
    sw = np.maximum(sigmoid_widths, _MIN_WIDTH)[None, :]
    b = sigmoid_offsets[None, :]
    m = np.clip(mixtures, 0.0, 1.0)[None, :]
    gaussian = np.exp(-0.5 * (r / gw) ** 2)
    z = np.clip((r - b) / sw, -50.0, 50.0)
    sigmoid = 1.0 / (1.0 + np.exp(z))
    return m * gaussian + (1.0 - m) * sigmoid
