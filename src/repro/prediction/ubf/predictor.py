"""The UBF failure predictor (Fig. 5 pipeline).

Three steps, exactly as the paper describes:

1. select the most indicative variables with PWA,
2. fit UBFs mapping monitoring data onto the target function -- here the
   interval service availability, "which was the one chosen in the case
   study",
3. apply the fitted network to runtime monitoring data; the failure-
   proneness score is the predicted *un*availability, thresholded into
   warnings.

Availability lives on a badly-conditioned scale for least squares: the
healthy mass sits at 0.9999+ while failures reach 0.99 or below.  The
predictor therefore regresses on the "nines" transform
``-log10(1 - A + eps)`` (availability expressed as its number of nines),
which spreads the failure tail without changing the ordering; scores and
:meth:`predicted_availability` convert back.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.prediction.base import PredictorInfo, SymptomPredictor
from repro.prediction.ubf.network import UBFNetwork
from repro.prediction.ubf.pwa import ProbabilisticWrapper, SelectionResult
from repro.rng import ensure_rng

_EPS = 1e-6


def availability_to_nines(availability: np.ndarray) -> np.ndarray:
    """``A -> -log10(1 - A + eps)`` (e.g. 0.9999 -> ~4)."""
    a = np.clip(np.asarray(availability, dtype=float), 0.0, 1.0)
    return -np.log10(1.0 - a + _EPS)


def nines_to_availability(nines: np.ndarray) -> np.ndarray:
    """Inverse of :func:`availability_to_nines` (clipped to [0, 1])."""
    return np.clip(1.0 - np.power(10.0, -np.asarray(nines, dtype=float)) + _EPS, 0.0, 1.0)


class UBFPredictor(SymptomPredictor):
    """Symptom-monitoring failure predictor built on a UBF network."""

    info = PredictorInfo(
        name="UBF",
        category="symptom-monitoring/function-approximation",
        description="Universal Basis Functions over selected monitoring variables",
    )

    def __init__(
        self,
        n_kernels: int = 12,
        select_variables: bool = True,
        wrapper: ProbabilisticWrapper | None = None,
        network: UBFNetwork | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = ensure_rng(rng, default_seed=0)
        self.select_variables = select_variables
        self.wrapper = wrapper or ProbabilisticWrapper(rng=rng)
        self.network = network or UBFNetwork(n_kernels=n_kernels, rng=rng)
        self.selection_: SelectionResult | None = None
        self.selected_indices_: list[int] | None = None

    def fit_samples(self, x: np.ndarray, y: np.ndarray) -> "UBFPredictor":
        """Train on monitoring features ``x`` and target availability ``y``.

        ``y`` should be the continuous failure indicator (interval service
        availability in [0, 1]); boolean failure labels also work (they are
        treated as availability ``1 - label``).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if y.dtype == bool or set(np.unique(y)).issubset({0.0, 1.0}):
            y = 1.0 - y
        target = availability_to_nines(y)
        if self.select_variables and x.shape[1] > 1:
            self.selection_ = self.wrapper.select(x, target)
            self.selected_indices_ = self.selection_.selected
        else:
            self.selected_indices_ = list(range(x.shape[1]))
        self.network.fit(x[:, self.selected_indices_], target)
        self._fitted = True
        return self

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Failure-proneness = negated predicted availability nines."""
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if self.selected_indices_ is None:
            raise ConfigurationError("predictor fitted without variable selection state")
        predicted_nines = self.network.predict(x[:, self.selected_indices_])
        return -predicted_nines

    def predicted_availability(self, x: np.ndarray) -> np.ndarray:
        """The raw target-function estimate (for inspection/plots)."""
        return nines_to_availability(-self.score_samples(x))
