"""The UBF function-approximation network.

A linear combination of Eq. 1 mixture kernels plus a bias:

.. math::

    \\hat y(x) = \\beta_0 + \\sum_i \\beta_i k_i(x)

Training:

1. standardize inputs,
2. place kernel centers by k-means over the training inputs,
3. alternate: (a) ridge-solve the output weights given kernel parameters,
   (b) refine kernel parameters (widths, sigmoid offsets, mixtures) by
   L-BFGS-B on the regularized squared error ("by including m_i in the
   optimization, UBF can better adapt to specifics of the data").

Setting ``optimize_mixtures=False`` and ``mixture_init=1.0`` degenerates
the network to a classic Gaussian RBF network -- the ablation baseline.
"""

from __future__ import annotations

import numpy as np
import scipy.cluster.vq
import scipy.optimize

from repro.errors import ConfigurationError, NotFittedError
from repro.prediction.ubf.kernels import UBFKernel, kernel_matrix
from repro.rng import ensure_rng


class UBFNetwork:
    """Mixture-kernel regression network.

    Parameters
    ----------
    n_kernels:
        Number of basis functions.
    ridge:
        L2 regularization of the output weights.
    mixture_init:
        Initial Gaussian/sigmoid mixture weight for every kernel.
    optimize_mixtures:
        Whether mixture weights take part in the nonlinear optimization
        (``False`` + ``mixture_init=1.0`` = plain RBF).
    max_opt_iter:
        L-BFGS-B iteration budget for kernel-parameter refinement.
    rng:
        Used for k-means initialization.
    """

    def __init__(
        self,
        n_kernels: int = 12,
        ridge: float = 1e-3,
        mixture_init: float = 0.5,
        optimize_mixtures: bool = True,
        max_opt_iter: int = 40,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_kernels < 1:
            raise ConfigurationError("n_kernels must be >= 1")
        if ridge < 0:
            raise ConfigurationError("ridge must be non-negative")
        if not 0.0 <= mixture_init <= 1.0:
            raise ConfigurationError("mixture_init must be in [0, 1]")
        self.n_kernels = n_kernels
        self.ridge = ridge
        self.mixture_init = mixture_init
        self.optimize_mixtures = optimize_mixtures
        self.max_opt_iter = max_opt_iter
        self.rng = ensure_rng(rng, default_seed=0)

        self._fitted = False
        self._x_mean: np.ndarray | None = None
        self._x_std: np.ndarray | None = None
        self.centers: np.ndarray | None = None
        self.gaussian_widths: np.ndarray | None = None
        self.sigmoid_widths: np.ndarray | None = None
        self.sigmoid_offsets: np.ndarray | None = None
        self.mixtures: np.ndarray | None = None
        self.weights: np.ndarray | None = None  # [beta_0, beta_1..beta_K]
        self.training_mse_: float | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def fit(self, x: np.ndarray, y: np.ndarray) -> "UBFNetwork":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.size:
            raise ConfigurationError("x and y must have equal length")
        if x.shape[0] < self.n_kernels:
            raise ConfigurationError("need at least n_kernels training samples")

        self._x_mean = x.mean(axis=0)
        self._x_std = np.where(x.std(axis=0) > 1e-12, x.std(axis=0), 1.0)
        xs = self._standardize(x)

        self._init_kernels(xs)
        self._optimize_kernels(xs, y)
        self.weights = self._solve_weights(xs, y)
        residual = self._predict_standardized(xs) - y
        self.training_mse_ = float(np.mean(residual**2))
        self._fitted = True
        return self

    def _standardize(self, x: np.ndarray) -> np.ndarray:
        return (np.atleast_2d(x) - self._x_mean) / self._x_std

    def _init_kernels(self, xs: np.ndarray) -> None:
        seed = int(self.rng.integers(0, 2**31 - 1))
        centers, _ = scipy.cluster.vq.kmeans2(
            xs, self.n_kernels, minit="++", seed=seed
        )
        self.centers = centers
        if self.n_kernels > 1:
            diffs = centers[:, None, :] - centers[None, :, :]
            dists = np.sqrt(np.einsum("ijk,ijk->ij", diffs, diffs))
            np.fill_diagonal(dists, np.inf)
            nearest = dists.min(axis=1)
            nearest[~np.isfinite(nearest)] = 1.0
        else:
            nearest = np.ones(1)
        base = np.maximum(nearest, 0.1)
        self.gaussian_widths = base.copy()
        self.sigmoid_widths = 0.5 * base
        self.sigmoid_offsets = base.copy()
        self.mixtures = np.full(self.n_kernels, self.mixture_init)

    def _design(self, xs: np.ndarray) -> np.ndarray:
        k = kernel_matrix(
            xs,
            self.centers,
            self.gaussian_widths,
            self.sigmoid_widths,
            self.sigmoid_offsets,
            self.mixtures,
        )
        return np.column_stack([np.ones(k.shape[0]), k])

    def _solve_weights(self, xs: np.ndarray, y: np.ndarray) -> np.ndarray:
        design = self._design(xs)
        gram = design.T @ design
        gram += self.ridge * np.eye(gram.shape[0])
        return np.linalg.solve(gram, design.T @ y)

    def _pack_params(self) -> np.ndarray:
        parts = [self.gaussian_widths, self.sigmoid_widths, self.sigmoid_offsets]
        if self.optimize_mixtures:
            parts.append(self.mixtures)
        return np.concatenate(parts)

    def _unpack_params(self, theta: np.ndarray) -> None:
        k = self.n_kernels
        self.gaussian_widths = theta[0:k]
        self.sigmoid_widths = theta[k : 2 * k]
        self.sigmoid_offsets = theta[2 * k : 3 * k]
        if self.optimize_mixtures:
            self.mixtures = theta[3 * k : 4 * k]

    def _optimize_kernels(self, xs: np.ndarray, y: np.ndarray) -> None:
        if self.max_opt_iter <= 0:
            return
        k = self.n_kernels

        def objective(theta: np.ndarray) -> float:
            self._unpack_params(theta)
            weights = self._solve_weights(xs, y)
            design = self._design(xs)
            residual = design @ weights - y
            return float(np.mean(residual**2))

        bounds = (
            [(1e-3, 50.0)] * k  # gaussian widths
            + [(1e-3, 50.0)] * k  # sigmoid widths
            + [(0.0, 50.0)] * k  # sigmoid offsets
        )
        if self.optimize_mixtures:
            bounds += [(0.0, 1.0)] * k
        result = scipy.optimize.minimize(
            objective,
            self._pack_params(),
            method="L-BFGS-B",
            bounds=bounds,
            options={"maxiter": self.max_opt_iter},
        )
        self._unpack_params(result.x)

    def refine(
        self,
        x: np.ndarray,
        y: np.ndarray,
        max_opt_iter: int | None = None,
        optimize_mixtures: bool | None = None,
    ) -> "UBFNetwork":
        """Continue kernel-parameter optimization from the current fit.

        Useful for warm starts -- e.g. fit a pure-Gaussian RBF first, then
        enable mixture optimization and refine: because L-BFGS performs
        monotone descent from the current parameters, the refined training
        error can only improve.
        """
        if not self._fitted:
            raise NotFittedError("refine() requires a fitted network")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if max_opt_iter is not None:
            self.max_opt_iter = max_opt_iter
        if optimize_mixtures is not None:
            self.optimize_mixtures = optimize_mixtures
        xs = self._standardize(x)
        self._optimize_kernels(xs, y)
        self.weights = self._solve_weights(xs, y)
        residual = self._predict_standardized(xs) - y
        self.training_mse_ = float(np.mean(residual**2))
        return self

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted target values for rows of ``x``."""
        if not self._fitted:
            raise NotFittedError("UBFNetwork has not been fitted")
        return self._predict_standardized(self._standardize(x))

    def _predict_standardized(self, xs: np.ndarray) -> np.ndarray:
        return self._design(xs) @ self.weights

    def kernels(self) -> list[UBFKernel]:
        """The fitted kernels as individual objects (for inspection)."""
        if self.centers is None:
            raise NotFittedError("UBFNetwork has not been fitted")
        return [
            UBFKernel(
                self.centers[i],
                self.gaussian_widths[i],
                self.sigmoid_widths[i],
                self.sigmoid_offsets[i],
                float(np.clip(self.mixtures[i], 0.0, 1.0)),
            )
            for i in range(self.n_kernels)
        ]

    def __repr__(self) -> str:
        status = "fitted" if self._fitted else "unfitted"
        return f"UBFNetwork(n_kernels={self.n_kernels}, {status})"
