"""The online-failure-prediction taxonomy of the paper's Fig. 3.

A small tree structure mirroring the classification: the four top-level
branches are derived from the stages at which a flaw can be observed
(Fig. 2), and each populated leaf is mapped to the predictor classes this
library implements.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TaxonomyNode:
    """One node of the classification tree."""

    key: str
    title: str
    children: list["TaxonomyNode"] = field(default_factory=list)
    implementations: list[str] = field(default_factory=list)

    def find(self, key: str) -> "TaxonomyNode | None":
        if self.key == key:
            return self
        for child in self.children:
            found = child.find(key)
            if found is not None:
                return found
        return None

    def leaves(self) -> list["TaxonomyNode"]:
        if not self.children:
            return [self]
        result: list[TaxonomyNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def walk(self, depth: int = 0):
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


def build_taxonomy() -> TaxonomyNode:
    """The Fig. 3 tree, annotated with this library's implementations.

    Implementation strings are ``module:Class`` paths under
    ``repro.prediction``.
    """
    return TaxonomyNode(
        key="online-failure-prediction",
        title="Online Failure Prediction",
        children=[
            TaxonomyNode(
                key="symptom-monitoring",
                title="Failure prediction based on symptom monitoring",
                children=[
                    TaxonomyNode(
                        key="symptom-monitoring/function-approximation",
                        title="Function approximation",
                        implementations=["ubf.predictor:UBFPredictor"],
                    ),
                    TaxonomyNode(
                        key="symptom-monitoring/system-models",
                        title="System models (state estimation)",
                        implementations=["baselines.mset:MSETPredictor"],
                    ),
                    TaxonomyNode(
                        key="symptom-monitoring/time-series-analysis",
                        title="Time series / trend analysis",
                        implementations=["baselines.trend:TrendAnalysisPredictor"],
                    ),
                ],
            ),
            TaxonomyNode(
                key="undetected-error-auditing",
                title="Failure prediction based on undetected error auditing",
                # The paper: "we are not aware of any work pursuing this
                # approach, hence the branch has no further subdivisions."
                implementations=[],
            ),
            TaxonomyNode(
                key="detected-error-reporting",
                title="Failure prediction based on detected error reporting",
                children=[
                    TaxonomyNode(
                        key="detected-error-reporting/pattern-recognition",
                        title="Pattern recognition over error sequences",
                        implementations=["hsmm.predictor:HSMMPredictor"],
                    ),
                    TaxonomyNode(
                        key="detected-error-reporting/rule-based",
                        title="Data mining / event sets",
                        implementations=["baselines.eventset:EventSetPredictor"],
                    ),
                    TaxonomyNode(
                        key="detected-error-reporting/statistical-tests",
                        title="Statistical error-report analysis",
                        implementations=[
                            "baselines.dft:DispersionFrameTechnique",
                            "baselines.rate:ErrorRatePredictor",
                        ],
                    ),
                ],
            ),
            TaxonomyNode(
                key="failure-tracking",
                title="Failure prediction based on failure tracking",
                children=[
                    TaxonomyNode(
                        key="failure-tracking/probability-estimation",
                        title="Bayesian / nonparametric failure-history models",
                        implementations=[
                            "baselines.failure_tracking:FailureHistoryPredictor"
                        ],
                    ),
                ],
            ),
        ],
    )


def implemented_leaves() -> dict[str, list[str]]:
    """``{leaf key: implementation paths}`` for all populated leaves."""
    tree = build_taxonomy()
    return {
        leaf.key: leaf.implementations
        for leaf in tree.leaves()
        if leaf.implementations
    }


def render(tree: TaxonomyNode | None = None) -> str:
    """ASCII rendering of the taxonomy (used by the Fig. 3 bench)."""
    tree = tree or build_taxonomy()
    lines = []
    for depth, node in tree.walk():
        marker = "  " * depth + ("- " if depth else "")
        impl = f"  [{', '.join(node.implementations)}]" if node.implementations else ""
        lines.append(f"{marker}{node.title}{impl}")
    return "\n".join(lines)
