"""Declarative predictor construction: ``make_predictor(name, **params)``.

Fleet grids (and the CLI) name predictors as strings, so the mapping from
name to constructor lives in one registry instead of being re-spelled by
every entry point.  The class constructors remain the primary API; the
registry is a thin declarative veneer over them.

Built-in names (one per taxonomy branch the repo implements):

========  =========================================================
name      constructor
========  =========================================================
ubf       :class:`~repro.prediction.ubf.predictor.UBFPredictor`
          (fast online configuration: the exact network/wrapper
          sizes the closed-loop controller has always used)
mset      :class:`~repro.prediction.baselines.mset.MSETPredictor`
hsmm      :class:`~repro.prediction.hsmm.predictor.HSMMPredictor`
dft       :class:`~repro.prediction.baselines.dft.DispersionFrameTechnique`
eventset  :class:`~repro.prediction.baselines.eventset.EventSetPredictor`
trend     :class:`~repro.prediction.baselines.trend.TrendAnalysisPredictor`
rate      :class:`~repro.prediction.baselines.rate.ErrorRatePredictor`
failure-tracking  :class:`~repro.prediction.baselines.failure_tracking.FailureHistoryPredictor`
noisy-or  :class:`~repro.prediction.arbitration.NoisyOrArbitrator`
          (criticality-weighted Noisy-OR fusion of a member panel)
========  =========================================================

Stochastic predictors accept ``rng`` (a :class:`numpy.random.Generator`)
or ``seed``; deterministic ones ignore both, so grid code can pass a seed
uniformly.

Nested ensemble specs
---------------------

``make_predictor`` also accepts a *spec dict* instead of a name, so fleet
grids and the CLI can declare a fused panel in one JSON value::

    make_predictor({
        "name": "noisy-or",
        "members": ["ubf", {"name": "hsmm", "n_states": 5}, "trend"],
        "criticality": {"ubf": 1.0, "hsmm": 0.9, "trend": 0.5},
        "leak": 0.01,
        "calibration": "platt",
    })

:func:`normalize_predictor_spec` canonicalizes and validates such specs
(members become dicts, aliases get uniqued) and the result round-trips
through JSON byte-identically, so specs can ride inside frozen fleet
``RunSpec`` params and ledgers.
"""

from __future__ import annotations

import json
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

#: name -> factory(rng, **params).  Factories import lazily so pulling in
#: the registry does not load every predictor implementation.
_REGISTRY: dict[str, Callable] = {}


def register_predictor(name: str, factory: Callable, overwrite: bool = False) -> None:
    """Register ``factory(rng, **params)`` under ``name``.

    Downstream projects register their own predictors here to make them
    addressable from fleet grids and the CLI.
    """
    if not name:
        raise ConfigurationError("predictor name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"predictor {name!r} already registered")
    _REGISTRY[name] = factory


def available_predictors() -> list[str]:
    """Registered predictor names, sorted."""
    return sorted(_REGISTRY)


def make_predictor(name, *, rng=None, seed: int | None = None, **params):
    """Construct the predictor registered under ``name``.

    ``name`` may also be a nested spec dict (``{"name": ..., **params}``,
    see :func:`normalize_predictor_spec`); explicit keyword ``params``
    override same-named spec entries.

    ``rng`` wins over ``seed``; with neither, a fresh ``default_rng(0)``
    keeps construction deterministic.
    """
    if isinstance(name, dict):
        spec = dict(name)
        try:
            name = spec.pop("name")
        except KeyError:
            raise ConfigurationError(
                f"predictor spec has no 'name' key: {sorted(spec)}"
            ) from None
        spec.update(params)
        params = spec
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown predictor {name!r}; available: {available_predictors()}"
        ) from None
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    return factory(rng, **params)


def normalize_predictor_spec(spec) -> dict:
    """Canonicalize a predictor spec to a validated, JSON-able dict.

    Accepts a bare name string or a ``{"name": ..., **params}`` dict.
    Ensemble members are normalized recursively and member aliases are
    uniqued (a second ``"trend"`` member becomes ``"trend-2"``), so the
    criticality map always has unambiguous keys.  The result serializes
    with ``json.dumps`` byte-identically across round-trips — the
    property fleet ledgers rely on.
    """
    if isinstance(spec, str):
        spec = {"name": spec}
    if not isinstance(spec, dict):
        raise ConfigurationError(
            f"predictor spec must be a name or dict, got {type(spec).__name__}"
        )
    if "name" not in spec:
        raise ConfigurationError(f"predictor spec has no 'name' key: {sorted(spec)}")
    name = spec["name"]
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown predictor {name!r}; available: {available_predictors()}"
        )
    out = {"name": name}
    for key in sorted(k for k in spec if k != "name"):
        if not isinstance(key, str):
            raise ConfigurationError(f"spec keys must be strings, got {key!r}")
        out[key] = spec[key]

    if "members" in out:
        members = out["members"]
        if not isinstance(members, (list, tuple)) or not members:
            raise ConfigurationError("'members' must be a non-empty list of specs")
        normalized = [normalize_predictor_spec(m) for m in members]
        aliases: list[str] = []
        for member in normalized:
            alias = member.get("alias", member["name"])
            if not isinstance(alias, str) or not alias:
                raise ConfigurationError(f"member alias must be a string: {alias!r}")
            if alias in aliases:
                n = 2
                while f"{alias}-{n}" in aliases:
                    n += 1
                alias = f"{alias}-{n}"
            member["alias"] = alias
            aliases.append(alias)
        out["members"] = normalized
        criticality = out.get("criticality", {})
        if not isinstance(criticality, dict):
            raise ConfigurationError("'criticality' must be a {member: weight} dict")
        unknown = set(criticality) - set(aliases)
        if unknown:
            raise ConfigurationError(
                f"criticality map names unknown members {sorted(unknown)}; "
                f"panel members are {aliases}"
            )
        for member_name, weight in criticality.items():
            if not isinstance(weight, (int, float)) or not 0.0 <= weight <= 1.0:
                raise ConfigurationError(
                    f"criticality[{member_name!r}] must be in [0, 1], got {weight!r}"
                )
        out["criticality"] = {k: float(criticality[k]) for k in sorted(criticality)}

    try:
        json.dumps(out)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"predictor spec is not JSON-serializable: {exc}"
        ) from None
    return out


# ----------------------------------------------------------------------
# Built-in factories
# ----------------------------------------------------------------------


def _make_ubf(
    rng,
    n_kernels: int = 8,
    max_opt_iter: int = 15,
    n_rounds: int = 6,
    samples_per_round: int = 8,
    select_variables: bool = True,
    **params,
):
    # Defaults match the fast online configuration the closed-loop
    # controller has used since PR 2 (`_default_predictor`), so naming
    # "ubf" in a grid reproduces the historical runs exactly.
    from repro.prediction.ubf.network import UBFNetwork
    from repro.prediction.ubf.predictor import UBFPredictor
    from repro.prediction.ubf.pwa import ProbabilisticWrapper

    return UBFPredictor(
        network=UBFNetwork(n_kernels=n_kernels, max_opt_iter=max_opt_iter, rng=rng),
        wrapper=ProbabilisticWrapper(
            n_rounds=n_rounds, samples_per_round=samples_per_round, rng=rng
        ),
        select_variables=select_variables,
        rng=rng,
        **params,
    )


def _make_mset(rng, **params):
    from repro.prediction.baselines.mset import MSETPredictor

    return MSETPredictor(rng=rng, **params)


def _make_hsmm(rng, **params):
    from repro.prediction.hsmm.predictor import HSMMPredictor

    # HSMMPredictor seeds its own restarts; derive that seed from the
    # stream so one master seed still pins the whole construction.
    params.setdefault("seed", int(rng.integers(2**31 - 1)))
    return HSMMPredictor(**params)


def _make_dft(rng, **params):
    from repro.prediction.baselines.dft import DispersionFrameTechnique

    return DispersionFrameTechnique(**params)


def _make_eventset(rng, **params):
    from repro.prediction.baselines.eventset import EventSetPredictor

    return EventSetPredictor(**params)


def _make_trend(rng, **params):
    from repro.prediction.baselines.trend import TrendAnalysisPredictor

    return TrendAnalysisPredictor(**params)


def _make_rate(rng, **params):
    from repro.prediction.baselines.rate import ErrorRatePredictor

    return ErrorRatePredictor(**params)


def _make_failure_tracking(rng, **params):
    from repro.prediction.baselines.failure_tracking import FailureHistoryPredictor

    return FailureHistoryPredictor(**params)


def _make_noisy_or(
    rng,
    members=(),
    criticality: dict | None = None,
    leak: float = 0.01,
    calibration: str = "platt",
    **params,
):
    from repro.prediction.arbitration import NoisyOrArbitrator

    if params:
        raise ConfigurationError(
            f"unknown noisy-or spec keys: {sorted(params)}"
        )
    spec = normalize_predictor_spec(
        {
            "name": "noisy-or",
            "members": list(members),
            "criticality": dict(criticality or {}),
        }
    )
    panel = []
    for member in spec["members"]:
        member = dict(member)
        alias = member.pop("alias")
        # One child seed per member, drawn in panel order, so a single
        # master rng pins the whole nested construction deterministically.
        child_rng = np.random.default_rng(int(rng.integers(2**31 - 1)))
        panel.append((alias, make_predictor(member, rng=child_rng)))
    return NoisyOrArbitrator(
        panel,
        criticality=spec.get("criticality") or None,
        leak=leak,
        calibration=calibration,
    )


for _name, _factory in [
    ("ubf", _make_ubf),
    ("mset", _make_mset),
    ("hsmm", _make_hsmm),
    ("dft", _make_dft),
    ("eventset", _make_eventset),
    ("trend", _make_trend),
    ("rate", _make_rate),
    ("failure-tracking", _make_failure_tracking),
    ("noisy-or", _make_noisy_or),
]:
    register_predictor(_name, _factory)
