"""Declarative predictor construction: ``make_predictor(name, **params)``.

Fleet grids (and the CLI) name predictors as strings, so the mapping from
name to constructor lives in one registry instead of being re-spelled by
every entry point.  The class constructors remain the primary API; the
registry is a thin declarative veneer over them.

Built-in names (one per taxonomy branch the repo implements):

========  =========================================================
name      constructor
========  =========================================================
ubf       :class:`~repro.prediction.ubf.predictor.UBFPredictor`
          (fast online configuration: the exact network/wrapper
          sizes the closed-loop controller has always used)
mset      :class:`~repro.prediction.baselines.mset.MSETPredictor`
hsmm      :class:`~repro.prediction.hsmm.predictor.HSMMPredictor`
dft       :class:`~repro.prediction.baselines.dft.DispersionFrameTechnique`
eventset  :class:`~repro.prediction.baselines.eventset.EventSetPredictor`
trend     :class:`~repro.prediction.baselines.trend.TrendAnalysisPredictor`
rate      :class:`~repro.prediction.baselines.rate.ErrorRatePredictor`
failure-tracking  :class:`~repro.prediction.baselines.failure_tracking.FailureHistoryPredictor`
========  =========================================================

Stochastic predictors accept ``rng`` (a :class:`numpy.random.Generator`)
or ``seed``; deterministic ones ignore both, so grid code can pass a seed
uniformly.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError

#: name -> factory(rng, **params).  Factories import lazily so pulling in
#: the registry does not load every predictor implementation.
_REGISTRY: dict[str, Callable] = {}


def register_predictor(name: str, factory: Callable, overwrite: bool = False) -> None:
    """Register ``factory(rng, **params)`` under ``name``.

    Downstream projects register their own predictors here to make them
    addressable from fleet grids and the CLI.
    """
    if not name:
        raise ConfigurationError("predictor name must be non-empty")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"predictor {name!r} already registered")
    _REGISTRY[name] = factory


def available_predictors() -> list[str]:
    """Registered predictor names, sorted."""
    return sorted(_REGISTRY)


def make_predictor(name: str, *, rng=None, seed: int | None = None, **params):
    """Construct the predictor registered under ``name``.

    ``rng`` wins over ``seed``; with neither, a fresh ``default_rng(0)``
    keeps construction deterministic.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown predictor {name!r}; available: {available_predictors()}"
        ) from None
    if rng is None:
        rng = np.random.default_rng(0 if seed is None else seed)
    return factory(rng, **params)


# ----------------------------------------------------------------------
# Built-in factories
# ----------------------------------------------------------------------


def _make_ubf(
    rng,
    n_kernels: int = 8,
    max_opt_iter: int = 15,
    n_rounds: int = 6,
    samples_per_round: int = 8,
    select_variables: bool = True,
    **params,
):
    # Defaults match the fast online configuration the closed-loop
    # controller has used since PR 2 (`_default_predictor`), so naming
    # "ubf" in a grid reproduces the historical runs exactly.
    from repro.prediction.ubf.network import UBFNetwork
    from repro.prediction.ubf.predictor import UBFPredictor
    from repro.prediction.ubf.pwa import ProbabilisticWrapper

    return UBFPredictor(
        network=UBFNetwork(n_kernels=n_kernels, max_opt_iter=max_opt_iter, rng=rng),
        wrapper=ProbabilisticWrapper(
            n_rounds=n_rounds, samples_per_round=samples_per_round, rng=rng
        ),
        select_variables=select_variables,
        rng=rng,
        **params,
    )


def _make_mset(rng, **params):
    from repro.prediction.baselines.mset import MSETPredictor

    return MSETPredictor(rng=rng, **params)


def _make_hsmm(rng, **params):
    from repro.prediction.hsmm.predictor import HSMMPredictor

    # HSMMPredictor seeds its own restarts; derive that seed from the
    # stream so one master seed still pins the whole construction.
    params.setdefault("seed", int(rng.integers(2**31 - 1)))
    return HSMMPredictor(**params)


def _make_dft(rng, **params):
    from repro.prediction.baselines.dft import DispersionFrameTechnique

    return DispersionFrameTechnique(**params)


def _make_eventset(rng, **params):
    from repro.prediction.baselines.eventset import EventSetPredictor

    return EventSetPredictor(**params)


def _make_trend(rng, **params):
    from repro.prediction.baselines.trend import TrendAnalysisPredictor

    return TrendAnalysisPredictor(**params)


def _make_rate(rng, **params):
    from repro.prediction.baselines.rate import ErrorRatePredictor

    return ErrorRatePredictor(**params)


def _make_failure_tracking(rng, **params):
    from repro.prediction.baselines.failure_tracking import FailureHistoryPredictor

    return FailureHistoryPredictor(**params)


for _name, _factory in [
    ("ubf", _make_ubf),
    ("mset", _make_mset),
    ("hsmm", _make_hsmm),
    ("dft", _make_dft),
    ("eventset", _make_eventset),
    ("trend", _make_trend),
    ("rate", _make_rate),
    ("failure-tracking", _make_failure_tracking),
]:
    register_predictor(_name, _factory)
