"""Score calibration: turning failure-proneness scores into probabilities.

The Act step's objective function needs "confidence in the prediction"
(paper Sect. 2) -- a probability, not a raw score.  Platt scaling fits a
one-dimensional logistic map ``P(failure | score)`` on held-out scored
data; it is monotone, so ROC/AUC are unchanged, but thresholds and
expected-utility computations get an interpretable scale.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError


class PlattScaling:
    """Logistic calibration ``P(y=1 | score) = sigma(a * score + b)``.

    Fitted by Newton iterations on the regularized log-loss, with the
    standard Platt target smoothing (positive targets slightly below 1,
    negative slightly above 0) to avoid overconfident extrapolation.
    """

    def __init__(self, max_iter: int = 100, tol: float = 1e-10, ridge: float = 1e-6):
        self.max_iter = max_iter
        self.tol = tol
        self.ridge = ridge
        self.a_: float | None = None
        self.b_: float | None = None

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "PlattScaling":
        scores = np.asarray(scores, dtype=float).ravel()
        labels = np.asarray(labels, dtype=bool).ravel()
        if scores.shape != labels.shape:
            raise ConfigurationError("scores and labels must align")
        n_pos = int(labels.sum())
        n_neg = int(labels.size - n_pos)
        if n_pos == 0 or n_neg == 0:
            raise ConfigurationError("need both classes to calibrate")
        # Platt's smoothed targets.
        t_pos = (n_pos + 1.0) / (n_pos + 2.0)
        t_neg = 1.0 / (n_neg + 2.0)
        targets = np.where(labels, t_pos, t_neg)
        # Standardize the score for numerical stability; fold back after.
        mean = scores.mean()
        std = scores.std() or 1.0
        z = (scores - mean) / std
        a, b = 1.0, 0.0
        for _ in range(self.max_iter):
            logits = np.clip(a * z + b, -35, 35)
            p = 1.0 / (1.0 + np.exp(-logits))
            w = np.clip(p * (1.0 - p), 1e-12, None)
            grad_a = float(np.sum((p - targets) * z) + self.ridge * a)
            grad_b = float(np.sum(p - targets))
            h_aa = float(np.sum(w * z * z) + self.ridge)
            h_ab = float(np.sum(w * z))
            h_bb = float(np.sum(w))
            det = h_aa * h_bb - h_ab * h_ab
            if abs(det) < 1e-300:
                break
            da = (h_bb * grad_a - h_ab * grad_b) / det
            db = (h_aa * grad_b - h_ab * grad_a) / det
            a -= da
            b -= db
            if max(abs(da), abs(db)) < self.tol:
                break
        self.a_ = a / std
        self.b_ = b - a * mean / std
        return self

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        """Calibrated ``P(failure)`` per score."""
        if self.a_ is None or self.b_ is None:
            raise NotFittedError("PlattScaling has not been fitted")
        scores = np.asarray(scores, dtype=float)
        logits = np.clip(self.a_ * scores + self.b_, -35, 35)
        return 1.0 / (1.0 + np.exp(-logits))

    def __call__(self, score: float) -> float:
        return float(self.predict_proba(np.array([score]))[0])


class IsotonicCalibration:
    """Monotone nonparametric calibration via pool-adjacent-violators.

    Fits the monotone step function minimizing squared error between
    calibrated probabilities and labels — no shape assumption, so it can
    capture saturation or plateaus Platt's logistic cannot.  Predictions
    interpolate linearly between block centers and clamp to the fitted
    range, which keeps the map monotone under extrapolation.
    """

    def __init__(self, y_min: float = 0.0, y_max: float = 1.0):
        self.y_min = float(y_min)
        self.y_max = float(y_max)
        self.x_: np.ndarray | None = None
        self.y_: np.ndarray | None = None

    def fit(self, scores: np.ndarray, labels: np.ndarray) -> "IsotonicCalibration":
        scores = np.asarray(scores, dtype=float).ravel()
        labels = np.asarray(labels, dtype=float).ravel()
        if scores.shape != labels.shape:
            raise ConfigurationError("scores and labels must align")
        if bool((labels > 0).all()) or bool((labels > 0).sum() == 0):
            raise ConfigurationError("need both classes to calibrate")
        order = np.argsort(scores, kind="stable")
        xs = scores[order]
        ys = labels[order]
        # Pool adjacent violators: merge blocks until means are monotone.
        block_y: list[float] = []  # block mean
        block_w: list[float] = []  # block weight (count)
        block_x: list[float] = []  # block score centroid
        for x, y in zip(xs, ys, strict=True):
            block_y.append(float(y))
            block_w.append(1.0)
            block_x.append(float(x))
            while len(block_y) > 1 and block_y[-2] >= block_y[-1]:
                y1, w1 = block_y.pop(), block_w.pop()
                x1 = block_x.pop()
                y0, w0 = block_y.pop(), block_w.pop()
                x0 = block_x.pop()
                w = w0 + w1
                block_y.append((w0 * y0 + w1 * y1) / w)
                block_x.append((w0 * x0 + w1 * x1) / w)
                block_w.append(w)
        self.x_ = np.asarray(block_x)
        self.y_ = np.clip(np.asarray(block_y), self.y_min, self.y_max)
        return self

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        """Calibrated ``P(failure)`` per score."""
        if self.x_ is None or self.y_ is None:
            raise NotFittedError("IsotonicCalibration has not been fitted")
        scores = np.asarray(scores, dtype=float)
        if self.x_.size == 1:
            return np.full(scores.shape, float(self.y_[0]))
        return np.interp(scores, self.x_, self.y_)

    def __call__(self, score: float) -> float:
        return float(self.predict_proba(np.array([score]))[0])


#: Calibrator names accepted by :func:`make_calibrator` / ensemble specs.
CALIBRATORS = ("platt", "isotonic")


def make_calibrator(method: str = "platt"):
    """Instantiate a calibrator by name (``"platt"`` or ``"isotonic"``)."""
    if method == "platt":
        return PlattScaling()
    if method == "isotonic":
        return IsotonicCalibration()
    raise ConfigurationError(
        f"unknown calibration method {method!r}; choose from {CALIBRATORS}"
    )


def expected_calibration_error(
    probabilities: np.ndarray,
    labels: np.ndarray,
    n_bins: int = 10,
) -> float:
    """ECE: mean |empirical positive rate - predicted probability| per bin,
    weighted by bin occupancy.  0 = perfectly calibrated."""
    probabilities = np.asarray(probabilities, dtype=float).ravel()
    labels = np.asarray(labels, dtype=bool).ravel()
    if probabilities.shape != labels.shape:
        raise ConfigurationError("probabilities and labels must align")
    if n_bins < 1:
        raise ConfigurationError("need at least one bin")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    total = probabilities.size
    ece = 0.0
    for lo, hi in zip(edges[:-1], edges[1:], strict=True):
        mask = (probabilities >= lo) & (
            (probabilities < hi) if hi < 1.0 else (probabilities <= hi)
        )
        if not mask.any():
            continue
        gap = abs(float(labels[mask].mean()) - float(probabilities[mask].mean()))
        ece += mask.sum() / total * gap
    return float(ece)
