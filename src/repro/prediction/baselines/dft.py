"""The Dispersion Frame Technique (Lin & Siewiorek 1990).

A classic heuristic over error inter-arrival times ("frames").  A
dispersion frame (DF) is the interval between successive errors; warnings
fire on rules of the form "the error rate accelerated".  We implement the
five standard rules:

- **2-in-1**: two successive errors within ``window_2in1``,
- **4-in-1**: four errors within ``window_4in1``,
- **2-in-2**: two consecutive 2-in-1 firings,
- **DF halving**: a dispersion frame less than half its predecessor,
  twice in a row,
- **4 decreasing**: four monotonically decreasing frames.

The failure-proneness score of a sequence is the weighted count of rule
firings, normalized by sequence length -- the original technique is a
binary alarm; the weighted count is the natural score extension for ROC
analysis.  Thresholds are fitted per-rule from training data quantiles.
"""

from __future__ import annotations

import numpy as np

from repro.monitoring.records import EventSequence
from repro.prediction.base import EventPredictor, PredictorInfo


class DispersionFrameTechnique(EventPredictor):
    """DFT heuristic rules as an event-sequence predictor."""

    info = PredictorInfo(
        name="DFT",
        category="detected-error-reporting/statistical-tests",
        description="Dispersion Frame Technique (error inter-arrival heuristics)",
    )

    def __init__(
        self,
        window_2in1: float | None = None,
        window_4in1: float | None = None,
        rule_weights: tuple[float, float, float, float, float] = (
            1.0,
            1.0,
            2.0,
            1.5,
            1.5,
        ),
    ) -> None:
        super().__init__()
        self.window_2in1 = window_2in1
        self.window_4in1 = window_4in1
        self.rule_weights = rule_weights

    def fit_sequences(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> "DispersionFrameTechnique":
        """Calibrate rule windows from non-failure inter-arrival quantiles.

        The 2-in-1 window is set to *half* the 10th percentile of
        quiet-time inter-arrivals, so it fires on genuine acceleration, not
        on the fast tail of normal traffic; 4-in-1 to three times that.
        """
        gaps: list[float] = []
        for sequence in nonfailure_sequences:
            if len(sequence) >= 2:
                gaps.extend(np.diff(sequence.times).tolist())
        if gaps:
            q10 = float(np.quantile(gaps, 0.10))
        else:
            q10 = 2.0
        if self.window_2in1 is None:
            self.window_2in1 = max(0.5 * q10, 1e-6)
        if self.window_4in1 is None:
            self.window_4in1 = 3.0 * self.window_2in1
        self._fitted = True
        return self

    def rule_firings(self, sequence: EventSequence) -> np.ndarray:
        """Counts of each of the five rules over the sequence."""
        self._require_fitted()
        times = np.asarray(sequence.times, dtype=float)
        counts = np.zeros(5)
        if times.size < 2:
            return counts
        frames = np.diff(times)
        # Rule 1: 2-in-1 (strictly faster than calibrated normal traffic).
        two_in_one = frames < self.window_2in1
        counts[0] = int(two_in_one.sum())
        # Rule 2: 4-in-1 (any 4 consecutive errors spanning < window).
        if times.size >= 4:
            spans = times[3:] - times[:-3]
            counts[1] = int((spans < self.window_4in1).sum())
        # Rule 3: 2-in-2 (two consecutive 2-in-1 firings).
        if two_in_one.size >= 2:
            counts[2] = int((two_in_one[1:] & two_in_one[:-1]).sum())
        # Rule 4: DF halving twice in a row.
        if frames.size >= 3:
            halved = frames[1:] < 0.5 * frames[:-1]
            counts[3] = int((halved[1:] & halved[:-1]).sum())
        # Rule 5: four monotonically decreasing frames.
        if frames.size >= 4:
            dec = frames[1:] < frames[:-1]
            runs = dec[2:] & dec[1:-1] & dec[:-2]
            counts[4] = int(runs.sum())
        return counts

    def score_sequence(self, sequence: EventSequence) -> float:
        counts = self.rule_firings(sequence)
        weighted = float(np.dot(counts, self.rule_weights))
        return weighted / max(len(sequence), 1)
