"""Baseline online failure predictors from the taxonomy survey.

One implementation per populated taxonomy branch beyond UBF/HSMM:

- :class:`~repro.prediction.baselines.dft.DispersionFrameTechnique` --
  Lin & Siewiorek's heuristic error-interval rules,
- :class:`~repro.prediction.baselines.eventset.EventSetPredictor` --
  Vilalta-style data mining of failure-indicative event sets,
- :class:`~repro.prediction.baselines.trend.TrendAnalysisPredictor` --
  Garg-style resource-exhaustion trend estimation,
- :class:`~repro.prediction.baselines.mset.MSETPredictor` -- multivariate
  state estimation with residual scoring,
- :class:`~repro.prediction.baselines.rate.ErrorRatePredictor` --
  Nassar-style error-rate and error-type-distribution shifts,
- :class:`~repro.prediction.baselines.failure_tracking.FailureHistoryPredictor`
  -- nonparametric prediction from past failure occurrences.
"""

from repro.prediction.baselines.dft import DispersionFrameTechnique
from repro.prediction.baselines.eventset import EventSetPredictor
from repro.prediction.baselines.failure_tracking import FailureHistoryPredictor
from repro.prediction.baselines.mset import MSETPredictor
from repro.prediction.baselines.rate import ErrorRatePredictor
from repro.prediction.baselines.trend import TrendAnalysisPredictor

__all__ = [
    "DispersionFrameTechnique",
    "EventSetPredictor",
    "FailureHistoryPredictor",
    "MSETPredictor",
    "ErrorRatePredictor",
    "TrendAnalysisPredictor",
]
