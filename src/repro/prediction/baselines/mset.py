"""Multivariate State Estimation Technique (MSET, Singer/Gross style).

"Well-known approaches are the Multivariate State Estimation Technique
(MSET)."  The idea: learn a memory matrix of healthy-state exemplars;
estimate each fresh observation as a similarity-weighted combination of
exemplars; large residuals mean the system left the healthy manifold.

This implementation uses k-means exemplar selection over healthy training
rows and Gaussian-kernel similarity weights; the score is the mean
per-variable squared residual in standardized units (a SPRT-free residual
magnitude, adequate for ROC evaluation).
"""

from __future__ import annotations

import numpy as np
import scipy.cluster.vq

from repro.errors import ConfigurationError
from repro.prediction.base import PredictorInfo, SymptomPredictor
from repro.rng import ensure_rng


class MSETPredictor(SymptomPredictor):
    """Healthy-manifold residual scoring."""

    info = PredictorInfo(
        name="MSET",
        category="symptom-monitoring/system-models",
        description="Multivariate state estimation residuals vs healthy exemplars",
    )

    def __init__(
        self,
        n_exemplars: int = 32,
        bandwidth: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if n_exemplars < 2:
            raise ConfigurationError("need at least 2 exemplars")
        if bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.n_exemplars = n_exemplars
        self.bandwidth = bandwidth
        self.rng = ensure_rng(rng, default_seed=0)
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self.memory_: np.ndarray | None = None

    def fit_samples(self, x: np.ndarray, y: np.ndarray) -> "MSETPredictor":
        """Learn exemplars from the *healthy* subset of the training data.

        ``y`` is the availability target or boolean failure labels; rows
        labeled failure-prone are excluded from the memory matrix.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if set(np.unique(y)).issubset({0.0, 1.0}):
            healthy = y < 0.5
        else:
            healthy = y >= np.quantile(y, 0.25)
        pool = x[healthy]
        if pool.shape[0] < self.n_exemplars:
            pool = x
        self._mean = pool.mean(axis=0)
        self._std = np.where(pool.std(axis=0) > 1e-12, pool.std(axis=0), 1.0)
        standardized = (pool - self._mean) / self._std
        seed = int(self.rng.integers(0, 2**31 - 1))
        k = min(self.n_exemplars, standardized.shape[0])
        self.memory_, _ = scipy.cluster.vq.kmeans2(
            standardized, k, minit="++", seed=seed
        )
        self._fitted = True
        return self

    def _estimate(self, xs: np.ndarray) -> np.ndarray:
        """Similarity-weighted reconstruction of each standardized row."""
        diff = xs[:, None, :] - self.memory_[None, :, :]
        d2 = np.einsum("nik,nik->ni", diff, diff)
        weights = np.exp(-0.5 * d2 / self.bandwidth**2)
        weights /= weights.sum(axis=1, keepdims=True) + 1e-12
        return weights @ self.memory_

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Mean squared residual vs the healthy-state estimate."""
        self._require_fitted()
        xs = (np.atleast_2d(np.asarray(x, dtype=float)) - self._mean) / self._std
        residual = xs - self._estimate(xs)
        return np.mean(residual**2, axis=1)
