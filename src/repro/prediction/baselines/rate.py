"""Error-rate and error-type-distribution shifts (Nassar & Andrews 1985).

"These approaches rely on systematic changes in the distribution of error
types and on significant increase of error generation rates between
crashes."

Score of a window = (a) its error rate relative to the quiet-time rate,
plus (b) the chi-square-style divergence of its message-type distribution
from the quiet-time distribution, with fitted combination weights.
"""

from __future__ import annotations

import numpy as np

from repro.monitoring.records import EventSequence
from repro.prediction.base import EventPredictor, PredictorInfo


class ErrorRatePredictor(EventPredictor):
    """Rate-increase plus type-distribution-shift scoring."""

    info = PredictorInfo(
        name="ErrorRate",
        category="detected-error-reporting/statistical-tests",
        description="Error generation rate and error-type distribution shifts",
    )

    def __init__(self, rate_weight: float = 1.0, shift_weight: float = 1.0) -> None:
        super().__init__()
        self.rate_weight = rate_weight
        self.shift_weight = shift_weight
        self.quiet_rate_: float | None = None
        self.quiet_distribution_: dict[int, float] | None = None

    @staticmethod
    def _window_span(sequence: EventSequence) -> float:
        if len(sequence) == 0:
            return 1.0
        return max(float(sequence.times[-1] - sequence.origin), 1.0)

    def fit_sequences(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> "ErrorRatePredictor":
        """Learn the quiet-time error rate and message-type distribution."""
        total_events = 0
        total_span = 0.0
        counts: dict[int, int] = {}
        for sequence in nonfailure_sequences:
            total_events += len(sequence)
            total_span += self._window_span(sequence)
            for message_id in sequence.message_ids:
                counts[int(message_id)] = counts.get(int(message_id), 0) + 1
        self.quiet_rate_ = total_events / max(total_span, 1.0)
        total = max(sum(counts.values()), 1)
        self.quiet_distribution_ = {m: c / total for m, c in counts.items()}
        self._fitted = True
        return self

    def _distribution_shift(self, sequence: EventSequence) -> float:
        """Chi-square-style divergence from the quiet distribution.

        Message types never seen in quiet data get a small floor
        probability, so novel (symptomatic) types contribute heavily.
        """
        if len(sequence) == 0:
            return 0.0
        counts: dict[int, int] = {}
        for message_id in sequence.message_ids:
            counts[int(message_id)] = counts.get(int(message_id), 0) + 1
        total = sum(counts.values())
        floor = 1.0 / (10.0 * total + 10.0)
        shift = 0.0
        for message_id, count in counts.items():
            observed = count / total
            expected = self.quiet_distribution_.get(message_id, floor)
            shift += (observed - expected) ** 2 / expected
        return shift

    def score_sequence(self, sequence: EventSequence) -> float:
        self._require_fitted()
        rate = len(sequence) / self._window_span(sequence)
        rate_ratio = rate / max(self.quiet_rate_, 1e-9)
        shift = self._distribution_shift(sequence)
        return self.rate_weight * np.log1p(rate_ratio) + self.shift_weight * np.log1p(
            shift
        )
