"""Failure-tracking prediction (the taxonomy's fourth branch).

"The basic idea of failure prediction based on failure tracking is to draw
conclusions about upcoming failures from the occurrence of previous
failures" (Csenki 1990, Pfefferman & Cernuschi-Frias 2002).

:class:`FailureHistoryPredictor` estimates the empirical distribution of
inter-failure times and scores the probability that the next failure
arrives within a prediction horizon, given the time elapsed since the last
failure -- a nonparametric conditional-hazard estimate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.prediction.base import PredictorInfo


class FailureHistoryPredictor:
    """Nonparametric next-failure estimation from the failure log.

    Unlike the symptom/event predictors this one needs no monitoring data
    at all -- only past failure times -- which is both its charm (cheap)
    and its ceiling (it cannot see *why* a failure approaches).
    """

    info = PredictorInfo(
        name="FailureHistory",
        category="failure-tracking/probability-estimation",
        description="Empirical inter-failure-time conditional probability",
    )

    def __init__(self, horizon: float = 300.0) -> None:
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        self.horizon = horizon
        self.threshold = 0.5
        self.inter_failure_times_: np.ndarray | None = None

    def fit(self, failure_times: list[float]) -> "FailureHistoryPredictor":
        times = np.sort(np.asarray(failure_times, dtype=float))
        if times.size < 2:
            raise ConfigurationError("need at least two failures to learn from")
        self.inter_failure_times_ = np.diff(times)
        return self

    def probability_within_horizon(self, elapsed: float) -> float:
        """``P(T <= elapsed + horizon | T > elapsed)`` from the empirical
        inter-failure distribution ``T``."""
        if self.inter_failure_times_ is None:
            raise NotFittedError("FailureHistoryPredictor has not been fitted")
        gaps = self.inter_failure_times_
        surviving = gaps > elapsed
        n_surviving = int(surviving.sum())
        if n_surviving == 0:
            return 1.0  # beyond all observed gaps: overdue
        hit = gaps[surviving] <= elapsed + self.horizon
        return float(hit.sum() / n_surviving)

    def score_times(
        self, query_times: np.ndarray, known_failures: np.ndarray
    ) -> np.ndarray:
        """Score each query time given the failures known *so far*.

        ``known_failures`` must be sorted; for each query time the elapsed
        time since the most recent earlier failure conditions the estimate.
        """
        query_times = np.asarray(query_times, dtype=float)
        known_failures = np.sort(np.asarray(known_failures, dtype=float))
        scores = np.zeros(query_times.size)
        for i, t in enumerate(query_times):
            earlier = known_failures[known_failures < t]
            if earlier.size == 0:
                scores[i] = 0.0
                continue
            scores[i] = self.probability_within_horizon(float(t - earlier[-1]))
        return scores

    def predict(self, elapsed: float) -> bool:
        return self.probability_within_horizon(elapsed) >= self.threshold

    def mean_time_between_failures(self) -> float:
        if self.inter_failure_times_ is None:
            raise NotFittedError("FailureHistoryPredictor has not been fitted")
        return float(self.inter_failure_times_.mean())
