"""Resource-exhaustion trend analysis (Garg et al. 1998 style).

"trend analysis techniques like the one developed in [28]" -- estimate the
slope of a resource variable (robustly, via the Theil-Sen estimator over a
sliding window) and score failure-proneness by the projected time to
exhaustion.

This is a symptom-monitoring predictor whose feature matrix rows must be
*time-ordered* (as produced by the dataset grid); the score of row ``i``
uses rows ``i-window+1 .. i``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.prediction.base import PredictorInfo, SymptomPredictor
from repro.prediction.metrics import auc


def theil_sen_slope(values: np.ndarray) -> float:
    """Median of pairwise slopes -- robust trend estimate."""
    values = np.asarray(values, dtype=float)
    n = values.size
    if n < 2:
        return 0.0
    idx = np.arange(n)
    slopes = []
    for i in range(n - 1):
        dt = idx[i + 1 :] - idx[i]
        dv = values[i + 1 :] - values[i]
        slopes.append(dv / dt)
    return float(np.median(np.concatenate(slopes)))


class TrendAnalysisPredictor(SymptomPredictor):
    """Time-to-exhaustion scoring on a depletable resource variable."""

    info = PredictorInfo(
        name="TrendAnalysis",
        category="symptom-monitoring/time-series-analysis",
        description="Theil-Sen trend + projected time-to-exhaustion",
    )

    def __init__(
        self,
        variable_index: int | None = None,
        window: int = 10,
        floor: float = 0.0,
    ) -> None:
        super().__init__()
        if window < 3:
            raise ConfigurationError("window must be >= 3")
        self.variable_index = variable_index
        self.window = window
        self.floor = floor

    def fit_samples(self, x: np.ndarray, y: np.ndarray) -> "TrendAnalysisPredictor":
        """Pick the most informative variable when none was designated.

        Tries each column and keeps the one whose exhaustion score best
        ranks the training labels (AUC).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        labels = self._labels_from_target(y)
        if self.variable_index is None:
            best_auc, best_var = -1.0, 0
            for j in range(x.shape[1]):
                scores = self._scores_for(x[:, j])
                try:
                    candidate_auc = auc(scores, labels)
                except Exception:  # pfmlint: disable=PFM009 -- a column whose AUC is undefined (constant scores, one class) is simply not a candidate
                    continue
                if candidate_auc > best_auc:
                    best_auc, best_var = candidate_auc, j
            self.variable_index = best_var
        self._fitted = True
        return self

    @staticmethod
    def _labels_from_target(y: np.ndarray) -> np.ndarray:
        y = np.asarray(y, dtype=float).ravel()
        if set(np.unique(y)).issubset({0.0, 1.0}):
            return y.astype(bool)
        # Continuous availability target: failures are the low tail.
        return y < np.quantile(y, 0.1)

    def _scores_for(self, values: np.ndarray) -> np.ndarray:
        """1 / time-to-exhaustion per row (0 when the trend is improving)."""
        values = np.asarray(values, dtype=float)
        scores = np.zeros(values.size)
        for i in range(values.size):
            lo = max(0, i - self.window + 1)
            segment = values[lo : i + 1]
            if segment.size < 3:
                continue
            slope = theil_sen_slope(segment)
            level = values[i] - self.floor
            if slope < 0 and level > 0:
                time_to_exhaustion = level / (-slope)
                scores[i] = 1.0 / max(time_to_exhaustion, 1e-9)
            elif level <= 0:
                scores[i] = 1.0
        return scores

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        self._require_fitted()
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return self._scores_for(x[:, self.variable_index])
