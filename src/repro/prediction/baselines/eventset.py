"""Event-set mining (Vilalta et al., IBM T.J. Watson).

"The authors introduce a concept called event sets and apply data-mining
techniques to identify sets of events that are indicative of the
occurrence of failures."

Fit: apriori-style mining of message-id itemsets that are frequent in
failure windows (support) and discriminative against non-failure windows
(confidence).  Score: the best confidence among indicative sets fully
contained in the observed window, with the empirical failure base rate as
fallback for sequences matching nothing.
"""

from __future__ import annotations



from repro.errors import ConfigurationError
from repro.monitoring.records import EventSequence
from repro.prediction.base import EventPredictor, PredictorInfo


class EventSetPredictor(EventPredictor):
    """Failure-indicative event-set mining over error windows."""

    info = PredictorInfo(
        name="EventSets",
        category="detected-error-reporting/rule-based",
        description="Apriori mining of failure-indicative event-type sets",
    )

    def __init__(
        self,
        min_support: float = 0.3,
        max_set_size: int = 3,
        min_confidence: float = 0.5,
    ) -> None:
        super().__init__()
        if not 0 < min_support <= 1:
            raise ConfigurationError("min_support must be in (0, 1]")
        if max_set_size < 1:
            raise ConfigurationError("max_set_size must be >= 1")
        self.min_support = min_support
        self.max_set_size = max_set_size
        self.min_confidence = min_confidence
        self.rules_: dict[frozenset[int], float] = {}
        self.base_rate_ = 0.0

    @staticmethod
    def _itemset(sequence: EventSequence) -> frozenset[int]:
        return frozenset(int(m) for m in sequence.message_ids)

    def fit_sequences(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> "EventSetPredictor":
        if not failure_sequences:
            raise ConfigurationError("need failure sequences to mine from")
        failure_sets = [self._itemset(s) for s in failure_sequences]
        nonfailure_sets = [self._itemset(s) for s in nonfailure_sequences]
        n_fail = len(failure_sets)
        n_nonfail = max(len(nonfailure_sets), 1)
        self.base_rate_ = n_fail / (n_fail + n_nonfail)

        # Apriori over failure windows: level-wise candidate growth.
        def support(candidate: frozenset[int]) -> float:
            return sum(1 for s in failure_sets if candidate <= s) / n_fail

        singletons = sorted({item for s in failure_sets for item in s})
        current = [
            frozenset([item])
            for item in singletons
            if support(frozenset([item])) >= self.min_support
        ]
        frequent: list[frozenset[int]] = list(current)
        for _ in range(self.max_set_size - 1):
            items_in_current = sorted({i for s in current for i in s})
            candidates = set()
            for base in current:
                for item in items_in_current:
                    if item not in base:
                        candidates.add(base | {item})
            current = [c for c in candidates if support(c) >= self.min_support]
            frequent.extend(current)
            if not current:
                break

        # Confidence against non-failure windows.
        self.rules_ = {}
        for candidate in frequent:
            fail_hits = sum(1 for s in failure_sets if candidate <= s)
            nonfail_hits = sum(1 for s in nonfailure_sets if candidate <= s)
            confidence = fail_hits / max(fail_hits + nonfail_hits, 1)
            if confidence >= self.min_confidence:
                self.rules_[candidate] = confidence
        self._fitted = True
        return self

    def score_sequence(self, sequence: EventSequence) -> float:
        """Best matched-rule confidence (base rate when nothing matches)."""
        self._require_fitted()
        observed = self._itemset(sequence)
        best = self.base_rate_
        for candidate, confidence in self.rules_.items():
            if candidate <= observed and confidence > best:
                best = confidence
        return best

    def indicative_sets(self, top: int = 10) -> list[tuple[frozenset[int], float]]:
        """The strongest mined event sets (for inspection)."""
        return sorted(self.rules_.items(), key=lambda kv: -kv[1])[:top]
