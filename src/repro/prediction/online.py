"""Online application of event-based predictors.

Event predictors (HSMM, DFT, event sets, error rate) are trained on
extracted windows, but at runtime they must score the error log
*continuously*: at each evaluation instant, the window of errors ending
"now" is the input (the paper's Fig. 4 problem statement).  This module
turns any fitted :class:`~repro.prediction.base.EventPredictor` into a
time-indexed score stream over an error log.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.monitoring.logbook import ErrorLog
from repro.monitoring.records import EventSequence
from repro.prediction.base import EventPredictor, Prediction


class OnlineEventScorer:
    """Slides a data window over an error log and scores each position."""

    def __init__(
        self,
        predictor: EventPredictor,
        data_window: float,
        lead_time: float,
        max_events: int = 200,
    ) -> None:
        if data_window <= 0 or lead_time < 0:
            raise ConfigurationError("need data_window > 0 and lead_time >= 0")
        self.predictor = predictor
        self.data_window = data_window
        self.lead_time = lead_time
        self.max_events = max_events

    def window_at(self, log: ErrorLog, now: float) -> EventSequence:
        """The error sequence of the window ending at ``now``."""
        records = log.window(now - self.data_window, now)[-self.max_events :]
        return EventSequence(
            times=[r.time for r in records],
            message_ids=[r.message_id for r in records],
            origin=now - self.data_window,
        )

    def score_at(self, log: ErrorLog, now: float) -> Prediction:
        """One online prediction at time ``now``."""
        score = self.predictor.score_sequence(self.window_at(log, now))
        return Prediction(
            time=now,
            score=score,
            warning=score >= self.predictor.threshold,
            lead_time=self.lead_time,
        )

    def score_series(
        self, log: ErrorLog, times: np.ndarray
    ) -> list[Prediction]:
        """Predictions for every evaluation instant in ``times``.

        Windows are extracted up-front and scored as one batch, so
        predictors with a batched ``score_sequences`` (e.g. the HSMM,
        which shares one parameter build across the batch) score the whole
        series without per-instant setup cost.  The result is identical to
        calling :meth:`score_at` per instant.
        """
        instants = [float(t) for t in np.asarray(times, dtype=float)]
        windows = [self.window_at(log, now) for now in instants]
        scores = self.predictor.score_sequences(windows)
        return [
            Prediction(
                time=now,
                score=float(score),
                warning=float(score) >= self.predictor.threshold,
                lead_time=self.lead_time,
            )
            for now, score in zip(instants, scores, strict=True)
        ]

    def evaluate_against_failures(
        self,
        log: ErrorLog,
        times: np.ndarray,
        failure_times: np.ndarray,
        prediction_period: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scores plus ground-truth labels for each evaluation instant.

        A prediction at ``t`` is labeled positive when a failure starts in
        ``[t + lead_time, t + lead_time + prediction_period)`` -- the
        paper's lead-time semantics (Fig. 4).
        """
        times = np.asarray(times, dtype=float)
        failure_times = np.asarray(failure_times, dtype=float)
        predictions = self.score_series(log, times)
        scores = np.array([p.score for p in predictions])
        labels = np.zeros(times.size, dtype=bool)
        for i, t in enumerate(times):
            start = t + self.lead_time
            end = start + prediction_period
            labels[i] = bool(
                failure_times.size
                and np.any((failure_times >= start) & (failure_times < end))
            )
        return scores, labels
