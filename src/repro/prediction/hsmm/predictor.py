"""The two-model HSMM failure predictor (paper Sect. 3.2, Fig. 6).

"Two HSMMs are trained: One for failure sequences and the other for
non-failure sequences. ... sequence likelihood ... is computed for both
HSMM models and Bayes decision theory is applied in order to yield a
classification."

The failure-proneness score is the length-normalized log-likelihood ratio
plus the class log-prior ratio; thresholding the score at 0 is exactly the
Bayes decision, and sweeping the threshold yields the ROC the case study
reports.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from repro.errors import ConfigurationError
from repro.markov.distributions import GeometricDuration
from repro.markov.hsmm import HiddenSemiMarkovModel
from repro.monitoring.records import EventSequence
from repro.prediction.base import EventPredictor, PredictorInfo
from repro.prediction.hsmm.sequences import SequenceEncoder
from repro.telemetry.hub import NULL_HUB, TelemetryHub


class HSMMPredictor(EventPredictor):
    """Event-based failure predictor using two hidden semi-Markov models."""

    info = PredictorInfo(
        name="HSMM",
        category="detected-error-reporting/pattern-recognition",
        description="Two-model hidden semi-Markov sequence classification",
    )

    def __init__(
        self,
        n_states_failure: int = 6,
        n_states_nonfailure: int = 4,
        max_duration: int = 8,
        encoder: SequenceEncoder | None = None,
        duration_factory=None,
        max_iter: int = 12,
        seed: int = 0,
        algorithm: str = "hard",
        strategy: str = "vectorized",
        n_jobs: int = 1,
        telemetry: TelemetryHub = NULL_HUB,
    ) -> None:
        super().__init__()
        if n_states_failure < 1 or n_states_nonfailure < 1:
            raise ConfigurationError("need at least one state per model")
        if algorithm not in ("hard", "soft"):
            raise ConfigurationError(f"unknown training algorithm {algorithm!r}")
        if strategy not in ("vectorized", "reference"):
            raise ConfigurationError(f"unknown inference strategy {strategy!r}")
        if n_jobs < 1:
            raise ConfigurationError("n_jobs must be >= 1")
        self.n_states_failure = n_states_failure
        self.n_states_nonfailure = n_states_nonfailure
        self.max_duration = max_duration
        self.encoder = encoder or SequenceEncoder()
        self.duration_factory = duration_factory
        self.max_iter = max_iter
        self.seed = seed
        self.algorithm = algorithm
        self.strategy = strategy
        self.n_jobs = n_jobs
        #: Profiling hub: scoring runs inside ``hsmm.score`` /
        #: ``hsmm.score_batch`` spans so the wall-vs-sim profile keeps the
        #: vectorized hot path measurable in-situ.  Assignable after
        #: construction (the controller/scorer wires it at run time).
        self.telemetry = telemetry
        self.threshold = 0.0  # Bayes decision boundary
        self.failure_model: HiddenSemiMarkovModel | None = None
        self.nonfailure_model: HiddenSemiMarkovModel | None = None
        self.log_prior_ratio = 0.0

    def fit_sequences(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> "HSMMPredictor":
        if not failure_sequences or not nonfailure_sequences:
            raise ConfigurationError("need training sequences of both classes")
        self.encoder.fit(failure_sequences + nonfailure_sequences)
        n_symbols = self.encoder.n_symbols
        self.failure_model = HiddenSemiMarkovModel(
            self.n_states_failure,
            n_symbols,
            max_duration=self.max_duration,
            duration_factory=self.duration_factory,
            rng=np.random.default_rng(self.seed),
            strategy=self.strategy,
        )
        self.nonfailure_model = HiddenSemiMarkovModel(
            self.n_states_nonfailure,
            n_symbols,
            max_duration=self.max_duration,
            duration_factory=self.duration_factory,
            rng=np.random.default_rng(self.seed + 1),
            strategy=self.strategy,
        )
        self.failure_model.fit(
            self.encoder.encode_many(failure_sequences),
            max_iter=self.max_iter,
            algorithm=self.algorithm,
            n_jobs=self.n_jobs,
        )
        self.nonfailure_model.fit(
            self.encoder.encode_many(nonfailure_sequences),
            max_iter=self.max_iter,
            algorithm=self.algorithm,
            n_jobs=self.n_jobs,
        )
        n_f, n_n = len(failure_sequences), len(nonfailure_sequences)
        self.log_prior_ratio = math.log(n_f / (n_f + n_n)) - math.log(
            n_n / (n_f + n_n)
        )
        self._fitted = True
        return self

    def score_sequence(self, sequence: EventSequence) -> float:
        """Length-normalized log-likelihood ratio + prior log-ratio.

        Positive scores mean "more similar to failure sequences"; the
        Bayes decision warns at score >= 0.
        """
        self._require_fitted()
        with self.telemetry.span("hsmm.score", strategy=self.strategy):
            symbols = self.encoder.encode(sequence)
            ll_failure = self.failure_model.log_likelihood(symbols)
            ll_nonfailure = self.nonfailure_model.log_likelihood(symbols)
            return (
                ll_failure - ll_nonfailure
            ) / len(symbols) + self.log_prior_ratio

    def score_sequences(self, sequences: list[EventSequence]) -> np.ndarray:
        """Batched scores: encode once, score both models over the batch.

        The batch path shares one log-parameter build per model across all
        sequences (and can fan out across worker processes when the
        predictor was built with ``n_jobs > 1``), which is what the online
        scorer and the evaluation harness call in their hot loops.
        """
        self._require_fitted()
        if not sequences:
            return np.empty(0)
        with self.telemetry.span(
            "hsmm.score_batch", sequences=len(sequences), strategy=self.strategy
        ):
            encoded = self.encoder.encode_many(sequences)
            ll_failure = self.failure_model.log_likelihood_batch(
                encoded, n_jobs=self.n_jobs
            )
            ll_nonfailure = self.nonfailure_model.log_likelihood_batch(
                encoded, n_jobs=self.n_jobs
            )
            lengths = np.array([len(symbols) for symbols in encoded], dtype=float)
            return (ll_failure - ll_nonfailure) / lengths + self.log_prior_ratio

    def sequence_likelihoods(self, sequence: EventSequence) -> tuple[float, float]:
        """Raw ``(log P(seq | failure), log P(seq | non-failure))``."""
        self._require_fitted()
        symbols = self.encoder.encode(sequence)
        return (
            self.failure_model.log_likelihood(symbols),
            self.nonfailure_model.log_likelihood(symbols),
        )


def hmm_ablation_predictor(
    n_states_failure: int = 6,
    n_states_nonfailure: int = 4,
    seed: int = 0,
    max_iter: int = 12,
) -> HSMMPredictor:
    """HSMM predictor with geometric durations -- i.e. a plain HMM.

    Geometric state durations are exactly what an HMM's self-loops imply,
    so this is the duration-model ablation (bench A3): same pipeline,
    no semi-Markov timing.
    """
    return HSMMPredictor(
        n_states_failure=n_states_failure,
        n_states_nonfailure=n_states_nonfailure,
        max_duration=8,
        # functools.partial (not a lambda) keeps the models picklable for
        # process-parallel scoring and restarts.
        duration_factory=functools.partial(GeometricDuration, p=0.5),
        max_iter=max_iter,
        seed=seed,
    )
