"""Symbolization of error sequences.

The HSMM operates on discrete time slots; an error sequence is an
event-driven series of ``(timestamp, message_id)`` pairs.  The encoder
maps message ids onto a compact alphabet and renders the temporal
structure explicitly: every quantum of silence between events becomes a
GAP symbol, so state durations in the HSMM correspond to real time spans
(the semi-Markov part of the model has timing to work with).
"""

from __future__ import annotations


from repro.errors import ConfigurationError, NotFittedError
from repro.monitoring.records import EventSequence


class SequenceEncoder:
    """Maps :class:`EventSequence` objects to integer symbol sequences.

    Parameters
    ----------
    gap_unit:
        Seconds of silence represented by one GAP symbol.
    max_gap_symbols:
        Cap on consecutive GAP symbols per delay (long silences saturate).
    min_count:
        Message ids seen fewer times than this in training map to UNK.
    """

    def __init__(
        self,
        gap_unit: float = 60.0,
        max_gap_symbols: int = 5,
        min_count: int = 2,
    ) -> None:
        if gap_unit <= 0:
            raise ConfigurationError("gap_unit must be positive")
        if max_gap_symbols < 0:
            raise ConfigurationError("max_gap_symbols must be >= 0")
        self.gap_unit = gap_unit
        self.max_gap_symbols = max_gap_symbols
        self.min_count = min_count
        self._symbol_of: dict[int, int] | None = None
        self.gap_symbol: int | None = None
        self.unk_symbol: int | None = None

    @property
    def n_symbols(self) -> int:
        if self._symbol_of is None:
            raise NotFittedError("encoder has not been fitted")
        return len(self._symbol_of) + 2  # + GAP + UNK

    def fit(self, sequences: list[EventSequence]) -> "SequenceEncoder":
        """Build the message-id vocabulary from training sequences."""
        counts: dict[int, int] = {}
        for sequence in sequences:
            for message_id in sequence.message_ids:
                counts[int(message_id)] = counts.get(int(message_id), 0) + 1
        vocabulary = sorted(m for m, c in counts.items() if c >= self.min_count)
        if not vocabulary:
            raise ConfigurationError("no message id reached min_count in training data")
        self._symbol_of = {m: i for i, m in enumerate(vocabulary)}
        self.gap_symbol = len(vocabulary)
        self.unk_symbol = len(vocabulary) + 1
        return self

    def encode(self, sequence: EventSequence) -> list[int]:
        """Symbol sequence: GAP-padded message symbols.

        Empty error sequences encode to a single GAP symbol (pure silence).
        """
        if self._symbol_of is None:
            raise NotFittedError("encoder has not been fitted")
        symbols: list[int] = []
        for delay, message_id in zip(
            sequence.delays, sequence.message_ids, strict=True
        ):
            n_gaps = min(int(delay // self.gap_unit), self.max_gap_symbols)
            symbols.extend([self.gap_symbol] * n_gaps)
            symbols.append(self._symbol_of.get(int(message_id), self.unk_symbol))
        if not symbols:
            symbols = [self.gap_symbol]
        return symbols

    def encode_many(self, sequences: list[EventSequence]) -> list[list[int]]:
        return [self.encode(s) for s in sequences]

    def vocabulary(self) -> dict[int, int]:
        """``{message_id: symbol}`` (copy)."""
        if self._symbol_of is None:
            raise NotFittedError("encoder has not been fitted")
        return dict(self._symbol_of)
