"""HSMM-based event pattern recognition (paper Sect. 3.2).

Error sequences (timestamps + message ids within a data window) are turned
into discrete symbol sequences by :mod:`~repro.prediction.hsmm.sequences`
and classified by the two-model hidden-semi-Markov scheme of
:mod:`~repro.prediction.hsmm.predictor`: one HSMM trained on failure
sequences, one on non-failure sequences, Bayes decision on the sequence
log-likelihoods.
"""

from repro.prediction.hsmm.predictor import HSMMPredictor
from repro.prediction.hsmm.sequences import SequenceEncoder

__all__ = ["HSMMPredictor", "SequenceEncoder"]
