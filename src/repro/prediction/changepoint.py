"""Online change-point detection for retraining triggers.

Sect. 6: "Online change point detection algorithms such as [Basseville &
Nikiforov] can be used to determine whether the parameters have to be
re-adjusted" when system behaviour drifts (updates, reconfigurations).

Two classic detectors are provided -- two-sided CUSUM and Page-Hinkley --
plus :class:`RetrainingTrigger`, which watches a stream of predictor
scores (or any drift indicator) and fires a callback when the stream's
level shifts.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ConfigurationError


class CUSUM:
    """Two-sided cumulative-sum detector.

    Detects upward or downward shifts of at least ``drift`` in the mean of
    a unit-variance-ish stream; alarm when either cumulative statistic
    exceeds ``threshold``.
    """

    def __init__(self, threshold: float = 8.0, drift: float = 0.5) -> None:
        if threshold <= 0 or drift < 0:
            raise ConfigurationError("need threshold > 0 and drift >= 0")
        self.threshold = threshold
        self.drift = drift
        self.reset()

    def reset(self) -> None:
        self.positive_sum = 0.0
        self.negative_sum = 0.0
        self.samples_seen = 0
        self._mean = 0.0

    def update(self, value: float) -> bool:
        """Feed one observation; returns True when a change is detected.

        The reference level is the running mean of the stream so far,
        so the detector needs no a-priori normal level.
        """
        self.samples_seen += 1
        # Running reference (before incorporating the new value fully).
        previous_mean = self._mean
        self._mean += (value - self._mean) / self.samples_seen
        deviation = value - previous_mean if self.samples_seen > 1 else 0.0
        self.positive_sum = max(0.0, self.positive_sum + deviation - self.drift)
        self.negative_sum = max(0.0, self.negative_sum - deviation - self.drift)
        if self.positive_sum > self.threshold or self.negative_sum > self.threshold:
            alarm_reset_mean = self._mean
            self.reset()
            self._mean = alarm_reset_mean
            return True
        return False


class PageHinkley:
    """Page-Hinkley test for upward mean shifts."""

    def __init__(self, threshold: float = 10.0, delta: float = 0.05) -> None:
        if threshold <= 0 or delta < 0:
            raise ConfigurationError("need threshold > 0 and delta >= 0")
        self.threshold = threshold
        self.delta = delta
        self.reset()

    def reset(self) -> None:
        self.cumulative = 0.0
        self.minimum = 0.0
        self.samples_seen = 0
        self._mean = 0.0

    def update(self, value: float) -> bool:
        self.samples_seen += 1
        self._mean += (value - self._mean) / self.samples_seen
        self.cumulative += value - self._mean - self.delta
        self.minimum = min(self.minimum, self.cumulative)
        if self.cumulative - self.minimum > self.threshold:
            self.reset()
            return True
        return False


class RetrainingTrigger:
    """Watches a drift indicator and fires a retraining callback.

    Typical indicator streams: a predictor's score on fresh data, its
    rolling false-positive rate, or a monitored variable's residual.
    """

    def __init__(
        self,
        on_drift: Callable[[], None],
        detector: CUSUM | PageHinkley | None = None,
        cooldown: int = 50,
    ) -> None:
        if cooldown < 0:
            raise ConfigurationError("cooldown must be >= 0")
        self.on_drift = on_drift
        self.detector = detector or CUSUM()
        self.cooldown = cooldown
        self._since_last = cooldown  # allow an immediate first trigger
        self.triggers = 0

    def observe(self, value: float) -> bool:
        """Feed one indicator value; returns True when retraining fired."""
        self._since_last += 1
        if self.detector.update(value) and self._since_last >= self.cooldown:
            self._since_last = 0
            self.triggers += 1
            self.on_drift()
            return True
        return False

    def observe_many(self, values: np.ndarray) -> int:
        """Feed a batch; returns the number of retraining events."""
        return sum(int(self.observe(float(v))) for v in np.asarray(values).ravel())
