"""Diagnosis: locating and typing the problem behind a failure warning.

Paper Sect. 2: "Evaluation might also include diagnosis in order to
identify the components that cause the system to be failure-prone.  Note
that in contrast to traditional diagnosis, in PFM no failure has occurred,
yet" -- and Sect. 7 lists online root-cause analysis as an open issue.

Two complementary pieces:

- :class:`ComponentRanker` -- ranks components by how anomalous their
  per-component telemetry is relative to learned healthy baselines
  (z-score based, no labels needed),
- :class:`FaultTypeClassifier` -- a naive-Bayes classifier over error-log
  message histograms that maps a pre-failure window to the most likely
  fault kind, trainable from faultload ground truth.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.monitoring.logbook import ErrorLog

_EPS = 1e-9


@dataclass(frozen=True)
class Suspicion:
    """One component's anomaly assessment."""

    component: str
    score: float
    worst_variable: str


class ComponentRanker:
    """Ranks components by telemetry anomaly vs healthy baselines.

    ``fit`` learns per-variable mean/spread from healthy-period samples;
    ``rank`` scores fresh per-component readings by their largest
    standardized deviation.
    """

    def __init__(self) -> None:
        self._baselines: dict[str, tuple[float, float]] | None = None

    def fit(self, healthy_samples: dict[str, np.ndarray]) -> "ComponentRanker":
        """``healthy_samples``: variable name -> samples from quiet periods."""
        if not healthy_samples:
            raise ConfigurationError("need at least one variable")
        baselines = {}
        for variable, values in healthy_samples.items():
            values = np.asarray(values, dtype=float)
            if values.size < 2:
                raise ConfigurationError(f"variable {variable!r} needs >= 2 samples")
            baselines[variable] = (float(values.mean()), float(values.std() + _EPS))
        self._baselines = baselines
        return self

    def anomaly(self, variable: str, value: float) -> float:
        """|z|-score of one reading (0 for unknown variables)."""
        if self._baselines is None:
            raise NotFittedError("ComponentRanker has not been fitted")
        if variable not in self._baselines:
            return 0.0
        mean, std = self._baselines[variable]
        return abs(value - mean) / std

    def rank(
        self, readings: dict[str, dict[str, float]]
    ) -> list[Suspicion]:
        """``readings``: component -> {variable: current value}.

        Returns components most-suspect first.
        """
        if self._baselines is None:
            raise NotFittedError("ComponentRanker has not been fitted")
        suspicions = []
        for component, values in readings.items():
            worst_variable, worst = "", 0.0
            for variable, value in values.items():
                z = self.anomaly(variable, value)
                if z > worst:
                    worst, worst_variable = z, variable
            suspicions.append(
                Suspicion(component=component, score=worst, worst_variable=worst_variable)
            )
        suspicions.sort(key=lambda s: -s.score)
        return suspicions


class FaultTypeClassifier:
    """Naive-Bayes fault typing from error-message histograms.

    Trains on (message-id histogram, fault kind) pairs -- obtainable from
    the faultload ground truth of simulation runs -- and classifies fresh
    windows.  This answers the practitioner question the paper closes
    with: "Many practitioners would also like to know the root cause of a
    looming failure."
    """

    def __init__(self, smoothing: float = 0.5) -> None:
        if smoothing <= 0:
            raise ConfigurationError("smoothing must be positive")
        self.smoothing = smoothing
        self._log_priors: dict[str, float] | None = None
        self._log_likelihoods: dict[str, dict[int, float]] | None = None
        self._vocabulary: set[int] = set()

    def fit(
        self, windows: list[tuple[Counter, str]]
    ) -> "FaultTypeClassifier":
        """``windows``: list of (message-id Counter, fault kind)."""
        if not windows:
            raise ConfigurationError("need training windows")
        kinds = sorted({kind for _, kind in windows})
        self._vocabulary = {m for counts, _ in windows for m in counts}
        kind_counts = Counter(kind for _, kind in windows)
        total = sum(kind_counts.values())
        self._log_priors = {
            kind: math.log(kind_counts[kind] / total) for kind in kinds
        }
        self._log_likelihoods = {}
        vocab_size = max(len(self._vocabulary), 1)
        for kind in kinds:
            message_totals: Counter = Counter()
            for counts, window_kind in windows:
                if window_kind == kind:
                    message_totals.update(counts)
            denominator = sum(message_totals.values()) + self.smoothing * vocab_size
            self._log_likelihoods[kind] = {
                message: math.log(
                    (message_totals.get(message, 0) + self.smoothing) / denominator
                )
                for message in self._vocabulary
            }
        return self

    def log_posteriors(self, counts: Counter) -> dict[str, float]:
        """Unnormalized log-posterior per fault kind."""
        if self._log_priors is None or self._log_likelihoods is None:
            raise NotFittedError("FaultTypeClassifier has not been fitted")
        posteriors = {}
        floor = math.log(self.smoothing / (self.smoothing * max(len(self._vocabulary), 1) + 1))
        for kind, prior in self._log_priors.items():
            likelihoods = self._log_likelihoods[kind]
            score = prior
            for message, count in counts.items():
                score += count * likelihoods.get(message, floor)
            posteriors[kind] = score
        return posteriors

    def classify(self, counts: Counter) -> str:
        """Most likely fault kind for the window."""
        posteriors = self.log_posteriors(counts)
        return max(posteriors, key=posteriors.get)

    def classify_window(
        self, log: ErrorLog, start: float, end: float
    ) -> str:
        """Classify directly from an error log window."""
        return self.classify(log.counts_by_message(start, end))

    @property
    def kinds(self) -> list[str]:
        if self._log_priors is None:
            raise NotFittedError("FaultTypeClassifier has not been fitted")
        return sorted(self._log_priors)
