"""Drift-aware predictor operation (paper Sect. 6).

"If system behavior changes frequently (due to frequent updates and
upgrades), the failure prediction approaches have to be adopted to the
changed behavior, too ... it might be necessary to repeat parameter
determination.  Online change point detection algorithms can be used to
determine whether the parameters have to be re-adjusted."

:class:`AdaptiveRetrainingPredictor` wraps any symptom predictor with
exactly that loop: it keeps a sliding buffer of recent labeled
observations, watches its own score stream with a change-point detector,
and refits on the buffer whenever drift fires.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.prediction.base import SymptomPredictor
from repro.prediction.changepoint import CUSUM


@dataclass(frozen=True)
class RetrainingEvent:
    """Record of one drift-triggered refit."""

    alarm_at_sample: int
    refit_at_sample: int
    buffer_size: int


class AdaptiveRetrainingPredictor:
    """Wraps a symptom predictor with change-point-triggered retraining.

    Parameters
    ----------
    predictor:
        The wrapped symptom predictor (fitted or not).
    buffer_size:
        Number of recent labeled observations kept for refits.
    detector:
        Change-point detector over the score stream (two-sided CUSUM by
        default, so both score inflation and deflation trigger).
    min_buffer_for_refit:
        How many *post-alarm* observations to collect before refitting.
        The alarm marks the change point; only data from the new regime
        should teach the refit, so detection arms a pending refit that
        fires once this many fresh samples are buffered.
    cooldown:
        Minimum observations between refits.
    """

    def __init__(
        self,
        predictor: SymptomPredictor,
        buffer_size: int = 2_000,
        detector: CUSUM | None = None,
        min_buffer_for_refit: int = 200,
        cooldown: int = 200,
    ) -> None:
        if buffer_size < min_buffer_for_refit:
            raise ConfigurationError("buffer_size must be >= min_buffer_for_refit")
        if cooldown < 0:
            raise ConfigurationError("cooldown must be >= 0")
        self.predictor = predictor
        self.buffer_size = buffer_size
        self.detector = detector or CUSUM(threshold=12.0, drift=0.3)
        self.min_buffer_for_refit = min_buffer_for_refit
        self.cooldown = cooldown
        self._features: deque[np.ndarray] = deque(maxlen=buffer_size)
        self._targets: deque[float] = deque(maxlen=buffer_size)
        self._samples_seen = 0
        self._since_refit = cooldown
        self._alarm_at: int | None = None
        self.retraining_events: list[RetrainingEvent] = []

    def observe(self, features: np.ndarray, target: float) -> float:
        """Score one observation, buffer it, and maybe retrain.

        ``target`` is the (possibly delayed) ground truth for this
        observation -- the interval availability or failure label that
        becomes known one lead time later.  Returns the score.
        """
        features = np.asarray(features, dtype=float).ravel()
        score = float(self.predictor.score_samples(features[None, :])[0])
        self._features.append(features)
        self._targets.append(float(target))
        self._samples_seen += 1
        self._since_refit += 1
        if self.detector.update(score) and self._alarm_at is None:
            if self._since_refit >= self.cooldown:
                self._alarm_at = self._samples_seen
        if self._alarm_at is not None:
            fresh = self._samples_seen - self._alarm_at
            if fresh >= self.min_buffer_for_refit and self._fresh_usable(fresh):
                self._refit(fresh)
        return score

    def _fresh_usable(self, fresh: int) -> bool:
        targets = np.asarray(self._targets)[-fresh:]
        # Need some variation in the target to fit anything meaningful.
        return bool(np.ptp(targets) > 0)

    def _refit(self, fresh: int | None = None) -> None:
        """Refit on the freshest ``fresh`` samples (whole buffer if None)."""
        take = len(self._features) if fresh is None else min(fresh, len(self._features))
        x = np.vstack(list(self._features)[-take:])
        y = np.asarray(self._targets)[-take:]
        self.predictor.fit_samples(x, y)
        self.retraining_events.append(
            RetrainingEvent(
                alarm_at_sample=self._alarm_at or self._samples_seen,
                refit_at_sample=self._samples_seen,
                buffer_size=y.size,
            )
        )
        self._since_refit = 0
        self._alarm_at = None
        self.detector.reset()

    def force_refit(self) -> None:
        """Manual retraining (e.g. after a known configuration change)."""
        if len(self._features) < 2:
            raise NotFittedError("buffer too small to refit")
        self._refit()

    # Pass-throughs ------------------------------------------------------

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        return self.predictor.score_samples(x)

    @property
    def threshold(self) -> float:
        return self.predictor.threshold

    @property
    def refit_count(self) -> int:
        return len(self.retraining_events)
