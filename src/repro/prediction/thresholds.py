"""Threshold selection for score-based failure predictors.

"Many failure predictors (including UBF and HSMM) allow to control this
trade-off by use of a threshold."  The paper evaluates at the threshold
maximizing the F-measure; the precision-equals-recall point is the other
common single-number choice.
"""

from __future__ import annotations

import numpy as np

from repro.prediction.metrics import ContingencyTable, precision_recall_curve


def max_f_threshold(scores: np.ndarray, labels: np.ndarray) -> tuple[float, float]:
    """Threshold maximizing F-measure; returns ``(threshold, f_value)``."""
    precision, recall, thresholds = precision_recall_curve(scores, labels)
    with np.errstate(divide="ignore", invalid="ignore"):
        f = np.where(
            (precision + recall) > 0,
            2.0 * precision * recall / (precision + recall),
            0.0,
        )
    best = int(np.argmax(f))
    return float(thresholds[best]), float(f[best])


def precision_recall_equality_threshold(
    scores: np.ndarray, labels: np.ndarray
) -> tuple[float, float]:
    """Threshold where precision is closest to recall.

    Returns ``(threshold, value_at_equality)`` where the value is the mean
    of precision and recall at that point.
    """
    precision, recall, thresholds = precision_recall_curve(scores, labels)
    gap = np.abs(precision - recall)
    best = int(np.argmin(gap))
    return float(thresholds[best]), float(0.5 * (precision[best] + recall[best]))


def table_at_max_f(scores: np.ndarray, labels: np.ndarray) -> ContingencyTable:
    """Contingency table at the max-F threshold (the paper's Sect. 3.3
    reporting convention)."""
    threshold, _ = max_f_threshold(scores, labels)
    return ContingencyTable.from_scores(scores, labels, threshold)
