"""Train/test evaluation harness for failure predictors.

Standardizes the case-study methodology: chronological train/test split
(no leakage from the future into training), max-F threshold selection on
the training period, and the Sect. 3.3 metric report (precision, recall,
false positive rate, F-measure, AUC).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.monitoring.records import EventSequence
from repro.prediction.base import EventPredictor, SymptomPredictor
from repro.prediction.metrics import ContingencyTable, auc, roc_curve
from repro.prediction.thresholds import max_f_threshold


@dataclass(frozen=True)
class PredictorReport:
    """Evaluation summary for one predictor on one test set."""

    name: str
    precision: float
    recall: float
    false_positive_rate: float
    f_measure: float
    auc: float
    threshold: float
    table: ContingencyTable

    def row(self) -> str:
        """One formatted table row (used by the benchmark printers)."""
        return (
            f"{self.name:<14s} precision={self.precision:.3f} "
            f"recall={self.recall:.3f} fpr={self.false_positive_rate:.3f} "
            f"F={self.f_measure:.3f} AUC={self.auc:.3f}"
        )


def report_from_scores(
    name: str,
    train_scores: np.ndarray,
    train_labels: np.ndarray,
    test_scores: np.ndarray,
    test_labels: np.ndarray,
) -> PredictorReport:
    """Calibrate the threshold on training scores, report on test scores."""
    threshold, _ = max_f_threshold(train_scores, train_labels)
    table = ContingencyTable.from_scores(
        np.asarray(test_scores), np.asarray(test_labels, dtype=bool), threshold
    )
    return PredictorReport(
        name=name,
        precision=table.precision,
        recall=table.recall,
        false_positive_rate=table.false_positive_rate,
        f_measure=table.f_measure,
        auc=auc(test_scores, test_labels),
        threshold=threshold,
        table=table,
    )


def _require_chronological(times: np.ndarray) -> np.ndarray:
    """Validate that ``times`` is a non-empty, non-decreasing 1-D series.

    The split helpers use ``times[0]``/``times[-1]`` as the covered span;
    on unsorted input that silently yields leaky train/test masks, so
    out-of-order timestamps are a configuration error.
    """
    times = np.asarray(times, dtype=float)
    if times.ndim != 1 or times.size == 0:
        raise ConfigurationError("times must be a non-empty 1-D array")
    if np.any(np.diff(times) < 0):
        raise ConfigurationError(
            "times must be sorted in non-decreasing order (chronological "
            "splits on unsorted data leak the future into training)"
        )
    return times


def chronological_split(
    times: np.ndarray, fraction: float = 0.6
) -> tuple[np.ndarray, np.ndarray]:
    """Boolean masks ``(train, test)`` splitting time-ordered samples."""
    if not 0 < fraction < 1:
        raise ConfigurationError("fraction must be in (0, 1)")
    times = _require_chronological(times)
    cutoff = times[0] + fraction * (times[-1] - times[0])
    train = times <= cutoff
    return train, ~train


def split_sequences(
    sequences: list[EventSequence], cutoff: float
) -> tuple[list[EventSequence], list[EventSequence]]:
    """Split sequences into (before-cutoff, after-cutoff) by window origin."""
    train = [s for s in sequences if s.origin < cutoff]
    test = [s for s in sequences if s.origin >= cutoff]
    return train, test


def evaluate_symptom_predictor(
    predictor: SymptomPredictor,
    x_train: np.ndarray,
    y_train: np.ndarray,
    labels_train: np.ndarray,
    x_test: np.ndarray,
    labels_test: np.ndarray,
    name: str | None = None,
) -> PredictorReport:
    """Fit, calibrate on training labels, evaluate on the test period."""
    predictor.fit_samples(x_train, y_train)
    train_scores = predictor.score_samples(x_train)
    test_scores = predictor.score_samples(x_test)
    report = report_from_scores(
        name or predictor.info.name,
        train_scores,
        np.asarray(labels_train, dtype=bool),
        test_scores,
        np.asarray(labels_test, dtype=bool),
    )
    predictor.set_threshold(report.threshold)
    return report


def evaluate_event_predictor(
    predictor: EventPredictor,
    train_failure: list[EventSequence],
    train_nonfailure: list[EventSequence],
    test_failure: list[EventSequence],
    test_nonfailure: list[EventSequence],
    name: str | None = None,
) -> PredictorReport:
    """Fit on training sequences, calibrate, evaluate on test sequences."""
    predictor.fit_sequences(train_failure, train_nonfailure)
    train_scores, train_labels = predictor._score_labeled(
        train_failure, train_nonfailure
    )
    test_scores, test_labels = predictor._score_labeled(test_failure, test_nonfailure)
    report = report_from_scores(
        name or predictor.info.name,
        train_scores,
        train_labels,
        test_scores,
        test_labels,
    )
    predictor.set_threshold(report.threshold)
    return report


@dataclass(frozen=True)
class RollingOriginResult:
    """Per-fold reports of a rolling-origin evaluation."""

    reports: list[PredictorReport]

    @property
    def mean_auc(self) -> float:
        return float(np.mean([r.auc for r in self.reports]))

    @property
    def worst_auc(self) -> float:
        return float(min(r.auc for r in self.reports))

    def summary(self) -> str:
        lines = [report.row() for report in self.reports]
        lines.append(f"mean AUC = {self.mean_auc:.3f}, worst fold = {self.worst_auc:.3f}")
        return "\n".join(lines)


def rolling_origin_evaluation(
    predictor_factory,
    times: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    labels: np.ndarray,
    n_folds: int = 3,
    min_train_fraction: float = 0.4,
) -> RollingOriginResult:
    """Rolling-origin (walk-forward) evaluation of a symptom predictor.

    Fold ``i`` trains on everything before cut ``i`` and tests on the span
    up to cut ``i+1`` -- the honest protocol for time-ordered failure data,
    and a robustness check against lucky single splits.  Skips folds whose
    test span lacks both classes.

    ``predictor_factory`` must return a *fresh* unfitted predictor per fold.
    """
    if n_folds < 2:
        raise ConfigurationError("need at least 2 folds")
    if not 0 < min_train_fraction < 1:
        raise ConfigurationError("min_train_fraction must be in (0, 1)")
    times = _require_chronological(times)
    labels = np.asarray(labels, dtype=bool)
    span = times[-1] - times[0]
    cuts = [
        times[0] + span * (min_train_fraction + (1 - min_train_fraction) * k / n_folds)
        for k in range(n_folds + 1)
    ]
    reports: list[PredictorReport] = []
    for k in range(n_folds):
        train_mask = times <= cuts[k]
        test_mask = (times > cuts[k]) & (times <= cuts[k + 1])
        if not labels[test_mask].any() or labels[test_mask].all():
            continue
        if not labels[train_mask].any():
            continue
        predictor = predictor_factory()
        reports.append(
            evaluate_symptom_predictor(
                predictor,
                x[train_mask],
                y[train_mask],
                labels[train_mask],
                x[test_mask],
                labels[test_mask],
                name=f"fold-{k}",
            )
        )
    if not reports:
        raise ConfigurationError("no evaluable fold (labels too sparse)")
    return RollingOriginResult(reports=reports)


def roc_points(
    scores: np.ndarray, labels: np.ndarray, n_points: int = 11
) -> list[tuple[float, float]]:
    """A coarse ROC polyline (for text output of ROC 'plots')."""
    fpr, tpr, _ = roc_curve(np.asarray(scores), np.asarray(labels, dtype=bool))
    targets = np.linspace(0, 1, n_points)
    points = []
    for target in targets:
        idx = int(np.searchsorted(fpr, target, side="left").clip(0, fpr.size - 1))
        points.append((float(fpr[idx]), float(tpr[idx])))
    return points
