"""Predictor interfaces: the unified protocol and the two data families.

The taxonomy's two big implemented families differ in their input data:

- :class:`SymptomPredictor` consumes periodic numeric feature vectors
  (symptom monitoring; "in most cases real-valued"),
- :class:`EventPredictor` consumes event-driven error sequences
  (detected error reporting; "discrete, categorical data").

Historically the two families had incompatible ``fit``/``score``
signatures, so nothing downstream (ensembles, registry grids, the
controller) could treat a mixed panel of base learners uniformly.  The
unified :class:`Predictor` protocol collapses the duality:

- ``fit(data)`` trains on a :class:`TrainingData` bundle carrying
  whichever inputs the predictor declares it :attr:`~Predictor.consumes`
  (feature matrices, labeled sequence classes, or both),
- ``score_batch(batch)`` scores a :class:`PredictionBatch` (or a bare
  feature matrix / sequence list) into one score per example.

Both existing ABCs now *are* unified predictors: they implement
``fit``/``score_batch`` by delegating to the family-specific hooks
(:meth:`SymptomPredictor.fit_samples`,
:meth:`EventPredictor.fit_sequences`).  The legacy signatures
(``fit(x, y)`` on symptom predictors, ``fit(failure, nonfailure)`` on
event predictors) keep working through deprecation-warned shims.
Duck-typed third-party predictors that only speak one family dialect are
wrapped by :func:`as_predictor`.

Every predictor produces a continuous failure-proneness *score* per
input; a warning is raised when the score crosses the predictor's
threshold, which is the knob trading precision against recall
(Sect. 3.3).
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.monitoring.records import EventSequence
from repro.prediction.metrics import ContingencyTable, auc
from repro.prediction.thresholds import max_f_threshold

#: Input modalities a predictor can declare in :attr:`Predictor.consumes`.
SAMPLES = "samples"
SEQUENCES = "sequences"


def _warn_legacy(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class Prediction:
    """One prediction: a score, the warning decision, and its horizon."""

    time: float
    score: float
    warning: bool
    lead_time: float = 0.0


@dataclass(frozen=True)
class PredictorInfo:
    """Metadata tying a predictor to the Fig. 3 taxonomy."""

    name: str
    category: str  # taxonomy leaf, e.g. "symptom-monitoring/function-approximation"
    description: str = ""


@dataclass
class PredictionBatch:
    """Aligned multi-modal inputs: one example per row.

    ``x`` holds the feature-vector view (shape ``(n, d)``), ``sequences``
    the event-window view (length ``n``); row ``i`` of both describes the
    *same* example (e.g. the same evaluation instant).  Either view may be
    absent — a predictor that needs a missing view raises a
    :class:`ConfigurationError` with a pointed message instead of
    guessing.
    """

    x: np.ndarray | None = None
    sequences: list[EventSequence] | None = None

    def __post_init__(self) -> None:
        if self.x is not None:
            self.x = np.atleast_2d(np.asarray(self.x, dtype=float))
        if self.x is None and self.sequences is None:
            raise ConfigurationError("a PredictionBatch needs x or sequences")
        if (
            self.x is not None
            and self.sequences is not None
            and self.x.shape[0] != len(self.sequences)
        ):
            raise ConfigurationError(
                f"misaligned batch: {self.x.shape[0]} feature rows vs "
                f"{len(self.sequences)} sequences"
            )

    def __len__(self) -> int:
        if self.x is not None:
            return int(self.x.shape[0])
        return len(self.sequences)

    def require_x(self, who: str = "predictor") -> np.ndarray:
        if self.x is None:
            raise ConfigurationError(
                f"{who} consumes feature samples but the batch carries none"
            )
        return self.x

    def require_sequences(self, who: str = "predictor") -> list[EventSequence]:
        if self.sequences is None:
            raise ConfigurationError(
                f"{who} consumes event sequences but the batch carries none"
            )
        return self.sequences

    @classmethod
    def coerce(cls, batch) -> "PredictionBatch":
        """Accept a batch, a bare feature matrix, or a sequence list."""
        if isinstance(batch, PredictionBatch):
            return batch
        if isinstance(batch, np.ndarray):
            return cls(x=batch)
        if isinstance(batch, (list, tuple)):
            if batch and isinstance(batch[0], EventSequence):
                return cls(sequences=list(batch))
            if not batch:
                raise ConfigurationError("cannot coerce an empty list to a batch")
            return cls(x=np.asarray(batch, dtype=float))
        raise ConfigurationError(
            f"cannot coerce {type(batch).__name__} to a PredictionBatch"
        )


@dataclass
class TrainingData:
    """Everything a mixed predictor panel can train on, in one bundle.

    Aligned fields (``x``, ``y``, ``labels``, ``sequences``) describe the
    same examples row by row; ``failure_sequences``/``nonfailure_sequences``
    are the class-separated sequence sets event predictors train on
    (Fig. 6).  Builders fill only the fields the consuming predictor
    declares via :attr:`Predictor.consumes`.
    """

    #: Feature matrix ``(n, d)`` (symptom monitoring view).
    x: np.ndarray | None = None
    #: Regression target per row (e.g. interval availability).
    y: np.ndarray | None = None
    #: Boolean failure labels per row (calibration / thresholding).
    labels: np.ndarray | None = None
    #: Event window per row, aligned with ``x`` (panel calibration view).
    sequences: list[EventSequence] | None = None
    #: Class-separated training sequences (event-predictor fit view).
    failure_sequences: list[EventSequence] | None = None
    nonfailure_sequences: list[EventSequence] | None = None

    def __post_init__(self) -> None:
        if self.x is not None:
            self.x = np.atleast_2d(np.asarray(self.x, dtype=float))
        if self.y is not None:
            self.y = np.asarray(self.y, dtype=float).ravel()
        if self.labels is not None:
            self.labels = np.asarray(self.labels, dtype=bool).ravel()
        n = None
        for name in ("x", "y", "labels", "sequences"):
            value = getattr(self, name)
            if value is None:
                continue
            size = value.shape[0] if isinstance(value, np.ndarray) else len(value)
            if n is None:
                n = size
            elif size != n:
                raise ConfigurationError(
                    f"misaligned training data: field {name!r} has {size} "
                    f"examples, expected {n}"
                )

    @classmethod
    def from_samples(
        cls, x: np.ndarray, y: np.ndarray, labels: np.ndarray | None = None
    ) -> "TrainingData":
        """The symptom-monitoring bundle: features + target (+ labels)."""
        return cls(x=x, y=y, labels=labels)

    @classmethod
    def from_sequences(
        cls,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> "TrainingData":
        """The detected-error bundle: class-separated sequence sets."""
        return cls(
            failure_sequences=list(failure_sequences),
            nonfailure_sequences=list(nonfailure_sequences),
        )

    def sequence_classes(self) -> tuple[list[EventSequence], list[EventSequence]]:
        """``(failure, nonfailure)`` sequences for event-predictor training.

        Explicit class-separated sets win; otherwise the aligned
        ``sequences`` are split by ``labels``.
        """
        if self.failure_sequences is not None and self.nonfailure_sequences is not None:
            return self.failure_sequences, self.nonfailure_sequences
        if self.sequences is not None and self.labels is not None:
            failure = [s for s, bad in zip(self.sequences, self.labels) if bad]
            nonfailure = [s for s, bad in zip(self.sequences, self.labels) if not bad]
            return failure, nonfailure
        raise ConfigurationError(
            "training data carries no event sequences (need "
            "failure/nonfailure sets, or aligned sequences plus labels)"
        )

    def target(self) -> np.ndarray:
        """The regression target, falling back to boolean labels."""
        if self.y is not None:
            return self.y
        if self.labels is not None:
            return self.labels.astype(float)
        raise ConfigurationError("training data carries neither y nor labels")

    def batch(self) -> PredictionBatch:
        """The aligned views as a scoring batch (calibration passes)."""
        return PredictionBatch(x=self.x, sequences=self.sequences)


class _ThresholdMixin:
    """Shared score-thresholding behaviour."""

    threshold: float = 0.5

    def set_threshold(self, threshold: float) -> None:
        self.threshold = float(threshold)

    def calibrate_threshold(
        self, scores: np.ndarray, labels: np.ndarray
    ) -> float:
        """Set the threshold to the max-F point on validation data."""
        threshold, _ = max_f_threshold(scores, labels)
        self.set_threshold(threshold)
        return threshold


class Predictor(_ThresholdMixin, abc.ABC):
    """The unified predictor protocol every family implements.

    ``fit`` takes a :class:`TrainingData` bundle, ``score_batch`` takes a
    :class:`PredictionBatch` (or anything :meth:`PredictionBatch.coerce`
    accepts) and returns one failure-proneness score per example.  The
    :attr:`consumes` set declares which input modalities the predictor
    needs, so data builders materialize only what is used.
    """

    info: PredictorInfo

    #: Input modalities this predictor reads (subset of {SAMPLES, SEQUENCES}).
    consumes: frozenset = frozenset()

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def fit(self, data: TrainingData) -> "Predictor":
        """Train on a :class:`TrainingData` bundle."""

    @abc.abstractmethod
    def score_batch(self, batch) -> np.ndarray:
        """Failure-proneness score per example (higher = failure-prone)."""

    def predict_batch(self, batch) -> np.ndarray:
        """Boolean warnings at the current threshold."""
        return self.score_batch(batch) >= self.threshold

    def evaluate_batch(self, batch, labels: np.ndarray) -> ContingencyTable:
        """Contingency table at the current threshold."""
        return ContingencyTable.from_scores(
            self.score_batch(batch), np.asarray(labels, dtype=bool), self.threshold
        )

    def auc_batch(self, batch, labels: np.ndarray) -> float:
        return auc(self.score_batch(batch), np.asarray(labels, dtype=bool))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")


class SymptomPredictor(Predictor):
    """Predictor over periodic monitoring feature vectors.

    Subclasses implement :meth:`fit_samples` and :meth:`score_samples`;
    the unified ``fit``/``score_batch`` surface delegates to them.  The
    legacy ``fit(x, y)`` call form still works (deprecation-warned).
    """

    consumes = frozenset({SAMPLES})

    def fit(self, data, y: np.ndarray | None = None) -> "SymptomPredictor":
        """Train on a :class:`TrainingData` bundle (or legacy ``(x, y)``)."""
        if isinstance(data, TrainingData):
            return self.fit_samples(
                data.x if data.x is not None else np.empty((0, 0)), data.target()
            )
        _warn_legacy(
            "SymptomPredictor.fit(x, y)",
            "fit(TrainingData.from_samples(x, y)) or fit_samples(x, y)",
        )
        return self.fit_samples(data, y)

    def fit_samples(self, x: np.ndarray, y: np.ndarray) -> "SymptomPredictor":
        """Train on feature matrix ``x`` and target ``y``.

        ``y`` may be continuous (e.g. interval availability) or boolean
        failure labels, depending on the method.  Subclasses override
        this hook; legacy subclasses that still override ``fit(x, y)``
        directly are delegated to (deprecation-warned).
        """
        if type(self).fit is not SymptomPredictor.fit:
            _warn_legacy(
                f"overriding {type(self).__name__}.fit(x, y)",
                "overriding fit_samples(x, y)",
            )
            return type(self).fit(self, x, y)
        raise NotImplementedError(
            f"{type(self).__name__} must implement fit_samples(x, y)"
        )

    @abc.abstractmethod
    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Failure-proneness score per row (higher = more failure-prone)."""

    def score_batch(self, batch) -> np.ndarray:
        return self.score_samples(
            PredictionBatch.coerce(batch).require_x(type(self).__name__)
        )

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Boolean warnings at the current threshold."""
        return self.score_samples(x) >= self.threshold

    def evaluate(self, x: np.ndarray, labels: np.ndarray) -> ContingencyTable:
        """Contingency table at the current threshold."""
        return ContingencyTable.from_scores(
            self.score_samples(x), np.asarray(labels, dtype=bool), self.threshold
        )

    def auc(self, x: np.ndarray, labels: np.ndarray) -> float:
        return auc(self.score_samples(x), np.asarray(labels, dtype=bool))


class EventPredictor(Predictor):
    """Predictor over event-driven error sequences.

    Subclasses implement :meth:`fit_sequences` and :meth:`score_sequence`
    (optionally overriding :meth:`score_sequences` with a batched path, as
    the HSMM does); the unified ``fit``/``score_batch`` surface delegates
    to them.  The legacy ``fit(failure, nonfailure)`` call form still
    works (deprecation-warned).
    """

    consumes = frozenset({SEQUENCES})

    def fit(
        self,
        data,
        nonfailure_sequences: list[EventSequence] | None = None,
    ) -> "EventPredictor":
        """Train on a :class:`TrainingData` bundle (or legacy lists)."""
        if isinstance(data, TrainingData):
            failure, nonfailure = data.sequence_classes()
            return self.fit_sequences(failure, nonfailure)
        _warn_legacy(
            "EventPredictor.fit(failure_sequences, nonfailure_sequences)",
            "fit(TrainingData.from_sequences(...)) or fit_sequences(...)",
        )
        return self.fit_sequences(data, nonfailure_sequences)

    def fit_sequences(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> "EventPredictor":
        """Train on labeled error sequences (Fig. 6).

        Subclasses override this hook; legacy subclasses that still
        override ``fit(failure, nonfailure)`` directly are delegated to
        (deprecation-warned).
        """
        if type(self).fit is not EventPredictor.fit:
            _warn_legacy(
                f"overriding {type(self).__name__}.fit(failure, nonfailure)",
                "overriding fit_sequences(failure, nonfailure)",
            )
            return type(self).fit(self, failure_sequences, nonfailure_sequences)
        raise NotImplementedError(
            f"{type(self).__name__} must implement fit_sequences(...)"
        )

    @abc.abstractmethod
    def score_sequence(self, sequence: EventSequence) -> float:
        """Failure-proneness score of one sequence (higher = failure-prone)."""

    def score_sequences(self, sequences: list[EventSequence]) -> np.ndarray:
        """Scores for a batch of sequences.

        The default loops :meth:`score_sequence` per item; predictors with
        a genuinely batched inference path (the HSMM's
        ``log_likelihood_batch``) override this, and *every* panel/ensemble
        scoring path calls this method — never the per-sequence one — so
        the batched path is used whenever it exists.
        """
        return np.asarray([self.score_sequence(s) for s in sequences])

    def score_batch(self, batch) -> np.ndarray:
        return self.score_sequences(
            PredictionBatch.coerce(batch).require_sequences(type(self).__name__)
        )

    def predict(self, sequence: EventSequence) -> bool:
        return self.score_sequence(sequence) >= self.threshold

    def evaluate(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> ContingencyTable:
        scores, labels = self._score_labeled(failure_sequences, nonfailure_sequences)
        return ContingencyTable.from_scores(scores, labels, self.threshold)

    def auc(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> float:
        scores, labels = self._score_labeled(failure_sequences, nonfailure_sequences)
        return auc(scores, labels)

    def _score_labeled(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> tuple[np.ndarray, np.ndarray]:
        scores = np.concatenate(
            [
                self.score_sequences(failure_sequences),
                self.score_sequences(nonfailure_sequences),
            ]
        )
        labels = np.concatenate(
            [
                np.ones(len(failure_sequences), dtype=bool),
                np.zeros(len(nonfailure_sequences), dtype=bool),
            ]
        )
        return scores, labels


# ----------------------------------------------------------------------
# Adapters: duck-typed family predictors -> unified protocol
# ----------------------------------------------------------------------


@dataclass
class SymptomPredictorAdapter(Predictor):
    """Unified view over any object speaking the symptom dialect.

    The inner object only needs ``score_samples(x)`` (plus, to be
    trainable, a two-argument fit — ``fit_samples(x, y)`` or legacy
    ``fit(x, y)``) and a ``threshold``.
    """

    inner: object = None
    consumes = frozenset({SAMPLES})

    def __post_init__(self) -> None:
        super().__init__()
        self.info = getattr(
            self.inner, "info", PredictorInfo(type(self.inner).__name__, "adapter")
        )

    def fit(self, data: TrainingData) -> "SymptomPredictorAdapter":
        trainer = getattr(self.inner, "fit_samples", None) or self.inner.fit
        trainer(data.x, data.target())
        self._fitted = True
        return self

    def score_batch(self, batch) -> np.ndarray:
        return np.asarray(
            self.inner.score_samples(
                PredictionBatch.coerce(batch).require_x(type(self.inner).__name__)
            )
        )

    @property
    def threshold(self) -> float:  # delegate: one knob, not two
        return self.inner.threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        self.inner.threshold = float(value)


@dataclass
class EventPredictorAdapter(Predictor):
    """Unified view over any object speaking the event dialect.

    Scoring goes through the inner ``score_sequences`` batch entry point
    when it exists (so batched implementations like the HSMM's
    ``log_likelihood_batch`` path are used), falling back to a
    ``score_sequence`` loop.
    """

    inner: object = None
    consumes = frozenset({SEQUENCES})

    def __post_init__(self) -> None:
        super().__init__()
        self.info = getattr(
            self.inner, "info", PredictorInfo(type(self.inner).__name__, "adapter")
        )

    def fit(self, data: TrainingData) -> "EventPredictorAdapter":
        failure, nonfailure = data.sequence_classes()
        trainer = getattr(self.inner, "fit_sequences", None) or self.inner.fit
        trainer(failure, nonfailure)
        self._fitted = True
        return self

    def score_batch(self, batch) -> np.ndarray:
        sequences = PredictionBatch.coerce(batch).require_sequences(
            type(self.inner).__name__
        )
        batched = getattr(self.inner, "score_sequences", None)
        if batched is not None:
            return np.asarray(batched(sequences))
        return np.asarray([self.inner.score_sequence(s) for s in sequences])

    @property
    def threshold(self) -> float:
        return self.inner.threshold

    @threshold.setter
    def threshold(self, value: float) -> None:
        self.inner.threshold = float(value)


def as_predictor(obj) -> Predictor:
    """Coerce anything predictor-shaped into the unified protocol.

    Objects already implementing :class:`Predictor` pass through
    unchanged; duck-typed symptom/event predictors are wrapped in the
    matching thin adapter.  Legacy family subclasses that still override
    ``fit`` with the old signature are wrapped too: their ``fit`` would
    otherwise shadow the unified ``fit(TrainingData)`` dispatch, while
    the adapter routes training through the deprecation-warned
    ``fit_samples`` / ``fit_sequences`` delegation hooks.
    """
    if isinstance(obj, SymptomPredictor) and type(obj).fit is not SymptomPredictor.fit:
        return SymptomPredictorAdapter(inner=obj)
    if isinstance(obj, EventPredictor) and type(obj).fit is not EventPredictor.fit:
        return EventPredictorAdapter(inner=obj)
    if isinstance(obj, Predictor):
        return obj
    if hasattr(obj, "score_batch") and hasattr(obj, "fit"):
        return obj  # structural Predictor from outside the class hierarchy
    if hasattr(obj, "score_samples"):
        return SymptomPredictorAdapter(inner=obj)
    if hasattr(obj, "score_sequence") or hasattr(obj, "score_sequences"):
        return EventPredictorAdapter(inner=obj)
    raise ConfigurationError(
        f"{type(obj).__name__} is not predictor-shaped (no score_batch, "
        "score_samples, or score_sequence method)"
    )

