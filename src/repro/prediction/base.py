"""Predictor interfaces.

The taxonomy's two big implemented families differ in their input data:

- :class:`SymptomPredictor` consumes periodic numeric feature vectors
  (symptom monitoring; "in most cases real-valued"),
- :class:`EventPredictor` consumes event-driven error sequences
  (detected error reporting; "discrete, categorical data").

Both produce a continuous failure-proneness *score* per input; a warning
is raised when the score crosses the predictor's threshold, which is the
knob trading precision against recall (Sect. 3.3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError
from repro.monitoring.records import EventSequence
from repro.prediction.metrics import ContingencyTable, auc
from repro.prediction.thresholds import max_f_threshold


@dataclass(frozen=True)
class Prediction:
    """One prediction: a score, the warning decision, and its horizon."""

    time: float
    score: float
    warning: bool
    lead_time: float = 0.0


@dataclass(frozen=True)
class PredictorInfo:
    """Metadata tying a predictor to the Fig. 3 taxonomy."""

    name: str
    category: str  # taxonomy leaf, e.g. "symptom-monitoring/function-approximation"
    description: str = ""


class _ThresholdMixin:
    """Shared score-thresholding behaviour."""

    threshold: float = 0.5

    def set_threshold(self, threshold: float) -> None:
        self.threshold = float(threshold)

    def calibrate_threshold(
        self, scores: np.ndarray, labels: np.ndarray
    ) -> float:
        """Set the threshold to the max-F point on validation data."""
        threshold, _ = max_f_threshold(scores, labels)
        self.set_threshold(threshold)
        return threshold


class SymptomPredictor(_ThresholdMixin, abc.ABC):
    """Predictor over periodic monitoring feature vectors."""

    info: PredictorInfo

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def fit(self, x: np.ndarray, y: np.ndarray) -> "SymptomPredictor":
        """Train on feature matrix ``x`` and target ``y``.

        ``y`` may be continuous (e.g. interval availability) or boolean
        failure labels, depending on the method.
        """

    @abc.abstractmethod
    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Failure-proneness score per row (higher = more failure-prone)."""

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Boolean warnings at the current threshold."""
        return self.score_samples(x) >= self.threshold

    def evaluate(self, x: np.ndarray, labels: np.ndarray) -> ContingencyTable:
        """Contingency table at the current threshold."""
        return ContingencyTable.from_scores(
            self.score_samples(x), np.asarray(labels, dtype=bool), self.threshold
        )

    def auc(self, x: np.ndarray, labels: np.ndarray) -> float:
        return auc(self.score_samples(x), np.asarray(labels, dtype=bool))

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")


class EventPredictor(_ThresholdMixin, abc.ABC):
    """Predictor over event-driven error sequences."""

    info: PredictorInfo

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def fit(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> "EventPredictor":
        """Train on labeled error sequences (Fig. 6)."""

    @abc.abstractmethod
    def score_sequence(self, sequence: EventSequence) -> float:
        """Failure-proneness score of one sequence (higher = failure-prone)."""

    def score_sequences(self, sequences: list[EventSequence]) -> np.ndarray:
        return np.asarray([self.score_sequence(s) for s in sequences])

    def predict(self, sequence: EventSequence) -> bool:
        return self.score_sequence(sequence) >= self.threshold

    def evaluate(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> ContingencyTable:
        scores, labels = self._score_labeled(failure_sequences, nonfailure_sequences)
        return ContingencyTable.from_scores(scores, labels, self.threshold)

    def auc(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> float:
        scores, labels = self._score_labeled(failure_sequences, nonfailure_sequences)
        return auc(scores, labels)

    def _score_labeled(
        self,
        failure_sequences: list[EventSequence],
        nonfailure_sequences: list[EventSequence],
    ) -> tuple[np.ndarray, np.ndarray]:
        scores = np.concatenate(
            [
                self.score_sequences(failure_sequences),
                self.score_sequences(nonfailure_sequences),
            ]
        )
        labels = np.concatenate(
            [
                np.ones(len(failure_sequences), dtype=bool),
                np.zeros(len(nonfailure_sequences), dtype=bool),
            ]
        )
        return scores, labels

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")
