"""Online failure prediction (the paper's core contribution, Sect. 3).

- :mod:`~repro.prediction.base` -- predictor interfaces and prediction
  records,
- :mod:`~repro.prediction.taxonomy` -- the Fig. 3 classification tree,
- :mod:`~repro.prediction.metrics` -- precision / recall / FPR / F-measure /
  ROC / AUC (Sect. 3.3 "Metrics"),
- :mod:`~repro.prediction.thresholds` -- threshold selection (max-F,
  precision = recall),
- :mod:`~repro.prediction.ubf` -- Universal Basis Functions with PWA
  variable selection (symptom monitoring),
- :mod:`~repro.prediction.hsmm` -- hidden semi-Markov model sequence
  classifier (detected error reporting),
- :mod:`~repro.prediction.baselines` -- DFT, event sets, trend analysis,
  MSET, error-rate and failure-tracking predictors,
- :mod:`~repro.prediction.meta` -- stacked-generalization meta-learner,
- :mod:`~repro.prediction.changepoint` -- retraining triggers,
- :mod:`~repro.prediction.evaluation` -- train/test evaluation harness,
- :mod:`~repro.prediction.registry` -- declarative predictor construction
  (:func:`make_predictor`), the factory behind fleet :class:`RunSpec`\\ s.
"""

from repro.prediction.adaptive import AdaptiveRetrainingPredictor
from repro.prediction.arbitration import (
    ArbitrationMember,
    Attribution,
    NoisyOrArbitrator,
)
from repro.prediction.base import (
    EventPredictor,
    EventPredictorAdapter,
    Prediction,
    PredictionBatch,
    Predictor,
    PredictorInfo,
    SymptomPredictor,
    SymptomPredictorAdapter,
    TrainingData,
    as_predictor,
)
from repro.prediction.diagnosis import ComponentRanker, FaultTypeClassifier
from repro.prediction.online import OnlineEventScorer
from repro.prediction.metrics import (
    ContingencyTable,
    auc,
    roc_curve,
)
from repro.prediction.calibration import (
    IsotonicCalibration,
    PlattScaling,
    make_calibrator,
)
from repro.prediction.registry import (
    available_predictors,
    make_predictor,
    normalize_predictor_spec,
    register_predictor,
)
from repro.prediction.thresholds import (
    max_f_threshold,
    precision_recall_equality_threshold,
)

__all__ = [
    "AdaptiveRetrainingPredictor",
    "ArbitrationMember",
    "Attribution",
    "IsotonicCalibration",
    "NoisyOrArbitrator",
    "PlattScaling",
    "make_calibrator",
    "normalize_predictor_spec",
    "ComponentRanker",
    "FaultTypeClassifier",
    "OnlineEventScorer",
    "EventPredictor",
    "EventPredictorAdapter",
    "Prediction",
    "PredictionBatch",
    "Predictor",
    "PredictorInfo",
    "SymptomPredictor",
    "SymptomPredictorAdapter",
    "TrainingData",
    "as_predictor",
    "ContingencyTable",
    "auc",
    "roc_curve",
    "max_f_threshold",
    "precision_recall_equality_threshold",
    "available_predictors",
    "make_predictor",
    "register_predictor",
]
