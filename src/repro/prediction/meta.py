"""Meta-learning: stacked generalization (Wolpert 1992).

The blueprint (Sect. 6) proposes combining per-layer failure predictors by
meta-learning; "one of the best-known meta-learning algorithms is called
'stacked generalization', which has successfully been applied to predict
failures for the IBM Blue Gene/L Systems".

Level 0: any collection of fitted predictors, reduced to their scores.
Level 1: a logistic-regression combiner trained on (out-of-sample) level-0
scores -- implemented here with plain Newton/IRLS on numpy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.prediction.base import PredictorInfo


class LogisticCombiner:
    """L2-regularized logistic regression (IRLS)."""

    def __init__(self, ridge: float = 1e-3, max_iter: int = 50, tol: float = 1e-8) -> None:
        if ridge < 0:
            raise ConfigurationError("ridge must be non-negative")
        self.ridge = ridge
        self.max_iter = max_iter
        self.tol = tol
        self.weights_: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, x: np.ndarray, labels: np.ndarray) -> "LogisticCombiner":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(labels, dtype=float).ravel()
        if x.shape[0] != y.size:
            raise ConfigurationError("x and labels must align")
        self._mean = x.mean(axis=0)
        self._std = np.where(x.std(axis=0) > 1e-12, x.std(axis=0), 1.0)
        design = np.column_stack([np.ones(x.shape[0]), (x - self._mean) / self._std])
        w = np.zeros(design.shape[1])
        for _ in range(self.max_iter):
            z = design @ w
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
            gradient = design.T @ (p - y) + self.ridge * w
            weights = np.clip(p * (1.0 - p), 1e-9, None)
            hessian = (design * weights[:, None]).T @ design + self.ridge * np.eye(
                design.shape[1]
            )
            step = np.linalg.solve(hessian, gradient)
            w -= step
            if np.max(np.abs(step)) < self.tol:
                break
        self.weights_ = w
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise NotFittedError("combiner has not been fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        design = np.column_stack([np.ones(x.shape[0]), (x - self._mean) / self._std])
        z = design @ self.weights_
        return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


class StackedGeneralization:
    """Stacked combination of base-predictor scores.

    The caller supplies a level-0 *score matrix*: one column per base
    predictor, one row per example.  Producing out-of-sample level-0
    scores is the caller's responsibility (e.g. time-split the training
    period); :meth:`fit` then trains the level-1 combiner, and
    :meth:`score` fuses fresh score vectors.
    """

    info = PredictorInfo(
        name="Stacking",
        category="meta-learning",
        description="Logistic stacked generalization over base predictor scores",
    )

    def __init__(self, predictor_names: list[str], ridge: float = 1e-3) -> None:
        if not predictor_names:
            raise ConfigurationError("need at least one base predictor")
        self.predictor_names = list(predictor_names)
        self.combiner = LogisticCombiner(ridge=ridge)
        self.threshold = 0.5
        self._fitted = False

    def fit(self, score_matrix: np.ndarray, labels: np.ndarray) -> "StackedGeneralization":
        score_matrix = np.atleast_2d(np.asarray(score_matrix, dtype=float))
        if score_matrix.shape[1] != len(self.predictor_names):
            raise ConfigurationError(
                f"expected {len(self.predictor_names)} score columns, "
                f"got {score_matrix.shape[1]}"
            )
        self.combiner.fit(score_matrix, labels)
        self._fitted = True
        return self

    def score(self, score_matrix: np.ndarray) -> np.ndarray:
        """Fused failure probability per row."""
        if not self._fitted:
            raise NotFittedError("StackedGeneralization has not been fitted")
        return self.combiner.predict_proba(np.atleast_2d(score_matrix))

    def predict(self, score_matrix: np.ndarray) -> np.ndarray:
        return self.score(score_matrix) >= self.threshold

    def weights(self) -> dict[str, float]:
        """Learned per-predictor weights (standardized scale)."""
        if not self._fitted:
            raise NotFittedError("StackedGeneralization has not been fitted")
        return dict(zip(self.predictor_names, self.combiner.weights_[1:], strict=True))
