"""Criticality-aware Noisy-OR arbitration over a predictor panel.

The paper's Sect. 6 blueprint combines per-layer failure predictors via
meta-learning.  This module implements the concrete recipe from the
Predictive Bayesian Arbitration line of work: treat each base learner as
a noisy cause of system failure, convert its raw score into a calibrated
activation probability, and fuse the panel with the Noisy-OR model

    ``P(failure) = 1 - (1 - leak) * prod_i (1 - c_i * p_i)``

where ``p_i`` is member *i*'s calibrated probability, ``c_i`` its
*criticality* weight in ``[0, 1]`` (how much a warning from the service
this member watches should move the system-level risk), and ``leak`` the
background failure probability no member can see.

Because the fusion is a probability (not an arbitrary score), the Act
layer can rank countermeasures by criticality-weighted expected risk
directly, and per-member *attribution* makes every warning explainable:
in log space the Noisy-OR factorizes additively,

    ``-log(1 - P) = -log(1 - leak) + sum_i -log(1 - c_i * p_i)``

so each member owns a share of the fused risk that sums to one.

The arbitrator is itself a unified
:class:`~repro.prediction.base.Predictor`, so it trains through the same
``fit(TrainingData)`` path as its members, scores aligned multi-modal
batches, and drops into fleet grids, campaigns, and the closed-loop
controller anywhere a single predictor did.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.prediction.base import (
    SEQUENCES,
    PredictionBatch,
    Predictor,
    PredictorInfo,
    TrainingData,
    as_predictor,
)
from repro.prediction.calibration import make_calibrator
from repro.telemetry.hub import NULL_HUB, TelemetryHub

#: Criticality assigned to members the spec does not name explicitly.
DEFAULT_CRITICALITY = 1.0


@dataclass
class ArbitrationMember:
    """One base learner in the panel, with its fusion parameters."""

    name: str
    predictor: Predictor
    criticality: float = DEFAULT_CRITICALITY
    calibrator: object = None  # fitted by the arbitrator

    def __post_init__(self) -> None:
        self.predictor = as_predictor(self.predictor)
        if not 0.0 <= self.criticality <= 1.0:
            raise ConfigurationError(
                f"criticality for member {self.name!r} must be in [0, 1], "
                f"got {self.criticality}"
            )


@dataclass
class Attribution:
    """Per-member share of one fused prediction's log-space risk."""

    fused: float
    leak_share: float
    member_probabilities: dict[str, float]
    member_shares: dict[str, float]

    def to_json_dict(self) -> dict:
        return {
            "fused": self.fused,
            "leak_share": self.leak_share,
            "member_probabilities": dict(sorted(self.member_probabilities.items())),
            "member_shares": dict(sorted(self.member_shares.items())),
        }


class NoisyOrArbitrator(Predictor):
    """Noisy-OR fusion of a mixed panel of base predictors.

    ``members`` may hold :class:`ArbitrationMember`\\ s, bare predictors,
    or ``(name, predictor)`` / ``(name, predictor, criticality)`` tuples.
    ``fit`` trains every member on the shared
    :class:`~repro.prediction.base.TrainingData` bundle, then fits one
    calibrator per member (Platt or isotonic) mapping that member's raw
    scores on the aligned calibration panel to activation probabilities.

    Scores returned by :meth:`score_batch` ARE calibrated system-level
    failure probabilities (``scores_are_probabilities``), so downstream
    consumers may treat them as ``P(failure)`` without further mapping.
    """

    #: Downstream consumers (controller confidence, Act layer) may treat
    #: scores from this predictor as probabilities directly.
    scores_are_probabilities = True

    def __init__(
        self,
        members,
        criticality: dict[str, float] | None = None,
        leak: float = 0.01,
        calibration: str = "platt",
        telemetry: TelemetryHub = NULL_HUB,
    ) -> None:
        super().__init__()
        if not members:
            raise ConfigurationError("a Noisy-OR panel needs at least one member")
        if not 0.0 <= leak < 1.0:
            raise ConfigurationError(f"leak must be in [0, 1), got {leak}")
        criticality = dict(criticality or {})
        self.members: list[ArbitrationMember] = []
        for i, entry in enumerate(members):
            self.members.append(self._coerce_member(entry, i, criticality))
        names = [m.name for m in self.members]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate member names in panel: {names}")
        unknown = set(criticality) - set(names)
        if unknown:
            raise ConfigurationError(
                f"criticality map names unknown members: {sorted(unknown)}"
            )
        self.leak = float(leak)
        self.calibration = calibration
        make_calibrator(calibration)  # validate the method name eagerly
        self.telemetry = telemetry
        #: Optional live event-window source, bound by the controller:
        #: a callable ``(n) -> list[EventSequence]`` supplying the event
        #: view when scoring arrives as bare feature rows.
        self.live_window = None
        #: Attribution of the most recent scored example (telemetry aid).
        self.last_attribution: Attribution | None = None
        self.info = PredictorInfo(
            name="noisy-or",
            category="meta/arbitration",
            description=(
                f"Noisy-OR fusion of [{', '.join(names)}] "
                f"({calibration}-calibrated, leak={self.leak})"
            ),
        )

    @staticmethod
    def _coerce_member(entry, index: int, criticality: dict) -> ArbitrationMember:
        if isinstance(entry, ArbitrationMember):
            if entry.name in criticality:
                entry.criticality = float(criticality[entry.name])
            return entry
        if isinstance(entry, tuple):
            if len(entry) == 2:
                name, predictor = entry
                weight = criticality.get(name, DEFAULT_CRITICALITY)
            elif len(entry) == 3:
                name, predictor, weight = entry
            else:
                raise ConfigurationError(
                    "member tuples must be (name, predictor[, criticality])"
                )
            return ArbitrationMember(name, predictor, float(weight))
        predictor = as_predictor(entry)
        name = getattr(getattr(predictor, "info", None), "name", None) or (
            f"member-{index}"
        )
        return ArbitrationMember(
            name, predictor, float(criticality.get(name, DEFAULT_CRITICALITY))
        )

    # ------------------------------------------------------------------
    # Unified Predictor protocol
    # ------------------------------------------------------------------

    @property
    def consumes(self) -> frozenset:  # union of the panel's needs
        out: set = set()
        for member in self.members:
            out |= set(member.predictor.consumes)
        return frozenset(out)

    def fit(self, data: TrainingData) -> "NoisyOrArbitrator":
        """Train every member, then calibrate each on the aligned panel.

        Calibration requires ``data.labels`` plus whichever aligned views
        (``x``, ``sequences``) the panel consumes, so each member's raw
        score on row *t* can be paired with the ground-truth label of the
        same instant.
        """
        if data.labels is None:
            raise ConfigurationError(
                "Noisy-OR calibration needs boolean labels in the training data"
            )
        with self.telemetry.span("arbitration.fit", members=len(self.members)):
            batch = data.batch()
            for member in self.members:
                member.predictor.fit(data)
                raw = np.asarray(member.predictor.score_batch(batch), dtype=float)
                member.calibrator = make_calibrator(self.calibration).fit(
                    raw, data.labels
                )
        self._fitted = True
        return self

    def member_probabilities(self, batch) -> np.ndarray:
        """Calibrated activation probabilities, shape ``(n, n_members)``."""
        self._require_fitted()
        batch = PredictionBatch.coerce(batch)
        columns = []
        for member in self.members:
            raw = np.asarray(member.predictor.score_batch(batch), dtype=float)
            columns.append(np.clip(member.calibrator.predict_proba(raw), 0.0, 1.0))
        return np.column_stack(columns)

    def _fuse(self, probabilities: np.ndarray) -> np.ndarray:
        weights = np.array([m.criticality for m in self.members])
        survival = (1.0 - self.leak) * np.prod(
            1.0 - weights[np.newaxis, :] * probabilities, axis=1
        )
        return 1.0 - survival

    def score_batch(self, batch) -> np.ndarray:
        """Fused system-level failure probability per example."""
        batch = PredictionBatch.coerce(batch)
        with self.telemetry.span(
            "arbitration.fuse", members=len(self.members), examples=len(batch)
        ):
            probabilities = self.member_probabilities(batch)
            fused = self._fuse(probabilities)
            self.last_attribution = self._attribution_row(
                probabilities[-1], float(fused[-1])
            )
            if self.telemetry.enabled:
                self.telemetry.gauge("arbitration_fused_probability").set(
                    float(fused[-1])
                )
        return fused

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """Symptom-dialect entry point (controller / fallback seam).

        Feature rows feed the symptom members directly; if the panel also
        has event members, the live window source bound by the controller
        supplies the matching event view.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        sequences = None
        if SEQUENCES in self.consumes:
            if self.live_window is None:
                raise ConfigurationError(
                    "panel has event members but no live window source is "
                    "bound; set arbitrator.live_window"
                )
            sequences = self.live_window(x.shape[0])
        return self.score_batch(PredictionBatch(x=x, sequences=sequences))

    # ------------------------------------------------------------------
    # Attribution (explainable warnings)
    # ------------------------------------------------------------------

    def _attribution_row(
        self, probabilities: np.ndarray, fused: float
    ) -> Attribution:
        contributions = {
            m.name: -np.log1p(-min(m.criticality * float(p), 1.0 - 1e-12))
            for m, p in zip(self.members, probabilities, strict=True)
        }
        leak_part = -np.log1p(-self.leak)
        total = leak_part + sum(contributions.values())
        if total <= 0.0:
            shares = {name: 0.0 for name in contributions}
            leak_share = 0.0
        else:
            shares = {n: float(c / total) for n, c in contributions.items()}
            leak_share = float(leak_part / total)
        return Attribution(
            fused=fused,
            leak_share=leak_share,
            member_probabilities={
                m.name: float(p)
                for m, p in zip(self.members, probabilities, strict=True)
            },
            member_shares=shares,
        )

    def attribute(self, batch) -> list[Attribution]:
        """Per-example attribution: who owns how much of the fused risk."""
        batch = PredictionBatch.coerce(batch)
        probabilities = self.member_probabilities(batch)
        fused = self._fuse(probabilities)
        return [
            self._attribution_row(row, float(f))
            for row, f in zip(probabilities, fused, strict=True)
        ]

    # ------------------------------------------------------------------
    # Pickling (fleet / artifact-store seam)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        """Drop runtime-only bindings so trained panels pickle cleanly."""
        state = dict(self.__dict__)
        state["live_window"] = None
        state["telemetry"] = NULL_HUB
        state["last_attribution"] = None
        return state

