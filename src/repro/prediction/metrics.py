"""Predictor quality metrics (paper Sect. 3.3, "Metrics").

"The quality of failure predictors is usually assessed by three metrics
that have an intuitive interpretation: precision, recall, and false
positive rate" -- plus the F-measure, ROC curve and AUC used to compare
predictors by a single number.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import ensure_rng


@dataclass(frozen=True)
class ContingencyTable:
    """Counts of the four prediction outcomes."""

    tp: int
    fp: int
    tn: int
    fn: int

    def __post_init__(self) -> None:
        if min(self.tp, self.fp, self.tn, self.fn) < 0:
            raise ConfigurationError("contingency counts must be non-negative")

    @classmethod
    def from_scores(
        cls,
        scores: np.ndarray,
        labels: np.ndarray,
        threshold: float,
    ) -> "ContingencyTable":
        """Binarize ``scores >= threshold`` against boolean ``labels``."""
        scores = np.asarray(scores, dtype=float)
        labels = np.asarray(labels, dtype=bool)
        if scores.shape != labels.shape:
            raise ConfigurationError("scores and labels must align")
        warned = scores >= threshold
        return cls(
            tp=int(np.sum(warned & labels)),
            fp=int(np.sum(warned & ~labels)),
            tn=int(np.sum(~warned & ~labels)),
            fn=int(np.sum(~warned & labels)),
        )

    # Metric definitions exactly as in the paper ------------------------------

    @property
    def precision(self) -> float:
        """Correct warnings / all warnings."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """Correctly predicted failures / all failures (true positive rate)."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def true_positive_rate(self) -> float:
        return self.recall

    @property
    def false_positive_rate(self) -> float:
        """False alarms / all non-failures."""
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def specificity(self) -> float:
        return 1.0 - self.false_positive_rate

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.tn + self.fn
        return (self.tp + self.tn) / total if total else 0.0

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0 else 0.0

    def __str__(self) -> str:
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"fpr={self.false_positive_rate:.3f} F={self.f_measure:.3f}"
        )


def roc_curve(
    scores: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Receiver-Operating-Characteristic.

    Returns ``(fpr, tpr, thresholds)`` with points ordered by increasing
    fpr, including the trivial (0, 0) and (1, 1) endpoints.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=bool)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ConfigurationError("scores and labels must be aligned 1-D arrays")
    n_pos = int(labels.sum())
    n_neg = int(labels.size - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ConfigurationError("need both positive and negative examples")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]
    tp_cum = np.cumsum(sorted_labels)
    fp_cum = np.cumsum(~sorted_labels)
    # Keep only the last point of each tied-score block.
    distinct = np.nonzero(np.diff(sorted_scores, append=-np.inf))[0]
    tpr = np.concatenate([[0.0], tp_cum[distinct] / n_pos])
    fpr = np.concatenate([[0.0], fp_cum[distinct] / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[distinct]])
    return fpr, tpr, thresholds


def auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal)."""
    fpr, tpr, _ = roc_curve(scores, labels)
    return float(np.trapezoid(tpr, fpr))


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap percentile interval for one metric."""

    point: float
    low: float
    high: float
    confidence: float

    def __str__(self) -> str:
        return f"{self.point:.3f} [{self.low:.3f}, {self.high:.3f}]"


def bootstrap_metric(
    scores: np.ndarray,
    labels: np.ndarray,
    metric,
    n_resamples: int = 500,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> ConfidenceInterval:
    """Bootstrap percentile CI of any ``(scores, labels) -> float`` metric.

    Case-study accuracies are estimated from finite (often small) test
    sets; reporting them with intervals separates real effects from split
    luck.  Resamples that lack both classes are skipped.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=bool)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ConfigurationError("scores and labels must be aligned 1-D arrays")
    if not 0 < confidence < 1:
        raise ConfigurationError("confidence must be in (0, 1)")
    if n_resamples < 10:
        raise ConfigurationError("need at least 10 resamples")
    rng = ensure_rng(rng, default_seed=0)
    point = float(metric(scores, labels))
    n = scores.size
    values = []
    for _ in range(n_resamples):
        idx = rng.integers(0, n, size=n)
        sample_labels = labels[idx]
        if not sample_labels.any() or sample_labels.all():
            continue
        try:
            values.append(float(metric(scores[idx], sample_labels)))
        except ConfigurationError:
            continue
    if len(values) < 10:
        raise ConfigurationError("too few valid bootstrap resamples")
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(values, [tail, 1.0 - tail])
    return ConfidenceInterval(
        point=point, low=float(low), high=float(high), confidence=confidence
    )


def auc_confidence_interval(
    scores: np.ndarray,
    labels: np.ndarray,
    n_resamples: int = 500,
    confidence: float = 0.95,
    rng: np.random.Generator | None = None,
) -> ConfidenceInterval:
    """Bootstrap CI for the AUC (the case study's headline number)."""
    return bootstrap_metric(
        scores, labels, auc, n_resamples=n_resamples, confidence=confidence,
        rng=rng,
    )


def precision_recall_curve(
    scores: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(precision, recall, thresholds)`` ordered by decreasing threshold."""
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=bool)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ConfigurationError("scores and labels must be aligned 1-D arrays")
    n_pos = int(labels.sum())
    if n_pos == 0:
        raise ConfigurationError("need at least one positive example")
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]
    tp_cum = np.cumsum(sorted_labels)
    ranks = np.arange(1, scores.size + 1)
    distinct = np.nonzero(np.diff(sorted_scores, append=-np.inf))[0]
    precision = tp_cum[distinct] / ranks[distinct]
    recall = tp_cum[distinct] / n_pos
    return precision, recall, sorted_scores[distinct]
