"""The assembled Service Control Point simulator.

Architecture (mirroring the case study's description): protocol frontends
(RADIUS / SS7 / IP), a pool of replicated service-logic containers behind a
load balancer, and a database tier.  The performance model is evaluated in
fixed ticks: per tick the workload model yields Poisson arrival counts,
each tier contributes a stretched service time, the end-to-end response
time distribution is log-normal around that mean, and deadline violations
are drawn binomially.  Violation counts feed the Eq. 2 SLA checker, whose
window breaches are the system's (performance) failures.

Countermeasure hooks -- restart, clean-up, admission control, load
migration -- are the interface the :mod:`repro.actions` package drives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.detectors import TimingCheck
from repro.monitoring.collectors import Gauge
from repro.monitoring.logbook import ErrorLog, FailureLog
from repro.simulator.engine import Engine
from repro.simulator.events import Timeout
from repro.simulator.random_streams import RandomStreams
from repro.telecom.aging import NaturalAgingProcess
from repro.telecom.components import Component, Tier
from repro.telecom.sla import SLAChecker
from repro.telecom.workload import (
    Protocol,
    WorkloadConfig,
    WorkloadModel,
)


@dataclass(frozen=True)
class SCPConfig:
    """Configuration of the simulated SCP."""

    n_containers: int = 4
    tick: float = 5.0
    # Nominal per-request service times per tier (seconds).
    frontend_service: float = 0.005
    container_service: float = 0.020
    db_service: float = 0.010
    # Capacities (parallel workers per component).
    frontend_capacity: int = 8
    container_capacity: int = 10
    db_capacity: int = 16
    # Memory provisioning (MB).
    frontend_memory: float = 2_048.0
    container_memory: float = 4_096.0
    db_memory: float = 8_192.0
    # Response-time dispersion (log-normal sigma).
    rt_sigma: float = 0.35
    # Fraction of requests touching the database.
    db_visit_prob: float = 0.7
    # SLA (Eq. 2).
    sla_window: float = 300.0
    required_availability: float = 0.9999
    deadline: float = 0.250
    # Natural aging.
    enable_aging: bool = True
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)

    def __post_init__(self) -> None:
        if self.n_containers < 1:
            raise ConfigurationError("need at least one container")
        if self.tick <= 0:
            raise ConfigurationError("tick must be positive")
        if not 0 <= self.db_visit_prob <= 1:
            raise ConfigurationError("db_visit_prob must be in [0, 1]")


class SCPSystem:
    """The simulated Service Control Point."""

    def __init__(
        self,
        engine: Engine,
        streams: RandomStreams,
        config: SCPConfig | None = None,
    ) -> None:
        self.engine = engine
        self.streams = streams
        self.config = config or SCPConfig()
        self.error_log = ErrorLog()
        self.failure_log = FailureLog()
        self.workload = WorkloadModel(self.config.workload, streams.get("workload"))
        self.sla = SLAChecker(
            window=self.config.sla_window,
            required_availability=self.config.required_availability,
            deadline=self.config.deadline,
            on_failure=self.failure_log.report,
        )
        self._rt_rng = streams.get("response-times")
        self._timing_check = TimingCheck("scp", deadline=self.config.deadline)

        # Build the component inventory.
        self.frontends: dict[Protocol, Component] = {
            protocol: self._make_component(
                f"frontend-{protocol.value}",
                Tier.FRONTEND,
                self.config.frontend_capacity,
                self.config.frontend_service,
                self.config.frontend_memory,
            )
            for protocol in Protocol
        }
        self.containers: list[Component] = [
            self._make_component(
                f"container-{i}",
                Tier.SERVICE_LOGIC,
                self.config.container_capacity,
                self.config.container_service,
                self.config.container_memory,
            )
            for i in range(self.config.n_containers)
        ]
        self.database = self._make_component(
            "database",
            Tier.DATABASE,
            self.config.db_capacity,
            self.config.db_service,
            self.config.db_memory,
        )
        # Load-balancer weights over containers (normalized on use).
        self.weights: dict[str, float] = {c.name: 1.0 for c in self.containers}
        # Admission control: fraction of arrivals accepted.
        self.admission_fraction = 1.0

        # Last-tick aggregate telemetry.
        self.last_request_rate = 0.0
        self.last_mean_rt = 0.0
        self.last_violation_prob = 0.0
        self.rejected_requests = 0
        self.ticks_run = 0

        self._aging: list[NaturalAgingProcess] = []
        self._started = False

    def _make_component(
        self,
        name: str,
        tier: Tier,
        capacity: int,
        service_time: float,
        memory_mb: float,
    ) -> Component:
        component = Component(
            name=name,
            tier=tier,
            capacity=capacity,
            service_time=service_time,
            memory_mb=memory_mb,
            error_sink=self.error_log.report,
        )
        component.bind_clock(lambda: self.engine.now)
        return component

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Launch the tick loop (and aging processes); idempotent."""
        if self._started:
            return
        self._started = True
        if self.config.enable_aging:
            for component in self.all_components():
                aging = NaturalAgingProcess(
                    component, self.streams.get(f"aging:{component.name}")
                )
                aging.start(self.engine)
                self._aging.append(aging)
        self.engine.process(self._tick_loop(), name="scp-ticks")

    def _tick_loop(self):
        while True:
            self._do_tick()
            yield Timeout(self.config.tick)

    def all_components(self) -> list[Component]:
        return [*self.frontends.values(), *self.containers, self.database]

    def component(self, name: str) -> Component:
        for candidate in self.all_components():
            if candidate.name == name:
                return candidate
        raise ConfigurationError(f"unknown component {name!r}")

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------

    def _do_tick(self) -> None:
        now = self.engine.now
        dt = self.config.tick
        for component in self.all_components():
            component.finish_restart_if_due(now)

        counts = self.workload.arrivals(now, dt)
        total = sum(counts.values())
        admitted = total
        if self.admission_fraction < 1.0 and total > 0:
            admitted = int(self._rt_rng.binomial(total, self.admission_fraction))
            self.rejected_requests += total - admitted
        self.last_request_rate = admitted / dt

        if admitted == 0:
            self.sla.record_batch(now, 0, 0)
            self.ticks_run += 1
            return

        # Frontend tier: protocol split drives each frontend's stretch.
        scale = admitted / total
        protocol_counts = {
            p: int(round(n * scale))
            for p, n in self.workload.protocol_split(counts).items()
        }
        frontend_time = 0.0
        for protocol, n in protocol_counts.items():
            frontend = self.frontends[protocol]
            stretch = frontend.stretch_factor(n, dt)
            share = n / max(sum(protocol_counts.values()), 1)
            frontend_time += share * frontend.service_time * stretch

        # Database tier (shared).
        db_demand = admitted * self.config.db_visit_prob
        db_stretch = self.database.stretch_factor(db_demand, dt)
        db_time = self.config.db_visit_prob * self.database.service_time * db_stretch

        # Container tier: split admitted demand by load-balancer weights
        # over components that are actually up.
        demand = self.workload.demand(counts) * scale
        up = [c for c in self.containers if c.restarting_until is None]
        violations = 0
        mean_rt_acc = 0.0
        if not up:
            # Whole service-logic tier down: every request fails its deadline.
            violations = admitted
            mean_rt_acc = self.config.deadline * 4
            self.last_violation_prob = 1.0
        else:
            weights = np.array([max(self.weights[c.name], 0.0) for c in up])
            if weights.sum() <= 0:
                weights = np.ones(len(up))
            weights = weights / weights.sum()
            request_split = self._rt_rng.multinomial(admitted, weights)
            prob_acc = 0.0
            for component, n_requests, weight in zip(
                up, request_split, weights, strict=True
            ):
                stretch = component.stretch_factor(demand * weight, dt)
                mean_rt = (
                    frontend_time + component.service_time * stretch + db_time
                )
                p_violate = self._violation_probability(mean_rt)
                if n_requests > 0:
                    violations += int(self._rt_rng.binomial(n_requests, p_violate))
                mean_rt_acc += weight * mean_rt
                prob_acc += weight * p_violate
            self.last_violation_prob = prob_acc
        self.last_mean_rt = mean_rt_acc

        # A timing check on observed latency reports detected errors.
        if self.last_violation_prob > 5e-5 and self._rt_rng.random() < min(
            800 * self.last_violation_prob, 0.5
        ):
            worst = max(self.containers, key=lambda c: c.last_stretch)
            record = self._timing_check.check(
                now, self.last_mean_rt * math.exp(self._rt_rng.normal(0.3, 0.2))
            )
            if record is not None:
                worst.emit_error(record.message_id, None, severity=2)

        self.sla.record_batch(now, admitted, violations)
        self.ticks_run += 1

    def _violation_probability(self, mean_rt: float) -> float:
        """P(RT > deadline) for a log-normal RT around ``mean_rt``."""
        if mean_rt <= 0:
            return 0.0
        z = (math.log(self.config.deadline) - math.log(mean_rt)) / self.config.rt_sigma
        # Survival function of the standard normal.
        return 0.5 * math.erfc(z / math.sqrt(2.0))

    # ------------------------------------------------------------------
    # Monitoring surface
    # ------------------------------------------------------------------

    def system_gauges(self) -> list[Gauge]:
        """Aggregate, SAR-flavoured system variables."""
        return [
            Gauge("request_rate", lambda: self.last_request_rate),
            Gauge("response_time_ms", lambda: self.last_mean_rt * 1000.0),
            Gauge("violation_prob", lambda: self.last_violation_prob),
            Gauge(
                "cpu_utilization",
                lambda: float(np.mean([c.utilization for c in self.containers])),
            ),
            Gauge(
                "memory_free_mb",
                lambda: float(np.sum([c.memory_free_mb for c in self.containers])),
            ),
            Gauge(
                "swap_activity",
                lambda: float(np.max([c.swap_activity for c in self.containers])),
            ),
            Gauge(
                "max_stretch",
                lambda: float(np.max([c.last_stretch for c in self.containers])),
            ),
            Gauge("db_utilization", lambda: self.database.utilization),
            Gauge(
                "error_rate",
                lambda: self.error_log.rate(
                    max(self.engine.now - 300.0, 0.0), self.engine.now + 1e-9
                ),
            ),
        ]

    def all_gauges(self) -> list[Gauge]:
        """System gauges plus per-component gauges (prefixed)."""
        gauges = list(self.system_gauges())
        for component in self.all_components():
            for gauge in component.gauges():
                gauges.append(
                    Gauge(f"{component.name}.{gauge.variable}", gauge.read)
                )
        return gauges

    # ------------------------------------------------------------------
    # Countermeasure hooks (driven by repro.actions)
    # ------------------------------------------------------------------

    def restart_component(self, name: str, duration: float) -> None:
        """Take a component down for ``duration`` seconds, then rejuvenate."""
        self.component(name).begin_restart(self.engine.now, duration)

    def cleanup_component(self, name: str, effectiveness: float = 0.7) -> None:
        """On-line state clean-up (no downtime)."""
        self.component(name).cleanup(effectiveness)

    def set_admission_fraction(self, fraction: float) -> None:
        """Admission control: accept only ``fraction`` of new requests."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must be in [0, 1]")
        self.admission_fraction = fraction

    def set_weight(self, name: str, weight: float) -> None:
        """Adjust the load-balancer weight of one container."""
        if name not in self.weights:
            raise ConfigurationError(f"unknown container {name!r}")
        if weight < 0:
            raise ConfigurationError("weight must be >= 0")
        self.weights[name] = weight

    def migrate_load(self, source: str, target: str, fraction: float = 1.0) -> None:
        """Shift ``fraction`` of a container's weight to another container."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must be in [0, 1]")
        moved = self.weights[source] * fraction
        self.set_weight(source, self.weights[source] - moved)
        self.set_weight(target, self.weights[target] + moved)

    def __repr__(self) -> str:
        return (
            f"SCPSystem(containers={len(self.containers)}, "
            f"failures={len(self.failure_log)}, errors={len(self.error_log)})"
        )
