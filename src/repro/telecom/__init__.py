"""Synthetic telecom Service Control Point (SCP) -- the case-study system.

The paper's case study (Sect. 3.3) applied UBF and HSMM to data of a
commercial telecommunication platform: a multi-tier, component-based SCP
handling MOC / SMS / GPRS service requests over RADIUS / SS7 / IP, with
performance failures defined by Eq. 2 (interval service availability over
five-minute windows: at most 0.01% of requests slower than 250 ms).

That platform and its data are proprietary, so this package builds the
closest synthetic equivalent (see DESIGN.md): a discrete-event simulated
SCP with

- :mod:`~repro.telecom.workload` -- MOC/SMS/GPRS request streams with
  diurnal modulation,
- :mod:`~repro.telecom.components` -- frontends, service-logic containers
  and a database tier, each a fault-injection target and monitoring source,
- :mod:`~repro.telecom.system` -- the assembled SCP with an aggregate
  queueing model and countermeasure hooks,
- :mod:`~repro.telecom.sla` -- the Eq. 2 failure definition,
- :mod:`~repro.telecom.aging` -- background software-aging processes,
- :mod:`~repro.telecom.dataset` -- labeled dataset generation for
  predictor training and evaluation.
"""

from repro.telecom.aging import NaturalAgingProcess
from repro.telecom.components import Component, Tier
from repro.telecom.dataset import DatasetConfig, TelecomDataset, generate_dataset
from repro.telecom.sla import SLAChecker, WindowStats
from repro.telecom.system import SCPConfig, SCPSystem
from repro.telecom.traces import LoadedTraces, export_traces, load_traces
from repro.telecom.workload import (
    Protocol,
    ServiceType,
    WorkloadConfig,
    WorkloadModel,
)

__all__ = [
    "NaturalAgingProcess",
    "Component",
    "Tier",
    "DatasetConfig",
    "TelecomDataset",
    "generate_dataset",
    "SLAChecker",
    "WindowStats",
    "SCPConfig",
    "SCPSystem",
    "LoadedTraces",
    "export_traces",
    "load_traces",
    "Protocol",
    "ServiceType",
    "WorkloadConfig",
    "WorkloadModel",
]
