"""Components of the multi-tier SCP.

Each :class:`Component` models one container/tier element: it has service
capacity, memory, and degradation state (leaked memory, hung workers,
latent corruption, background load).  Components implement both the
fault-injection target protocol (:class:`repro.faults.injectors.InjectionTarget`)
and the monitoring-source protocol
(:class:`repro.monitoring.sources.MonitoringSource`), so injectors and the
monitoring layer plug in without knowing telecom internals.

The performance model is an M/M/c-style approximation evaluated per
simulation tick: the *stretch* (response time inflation) grows with
utilization, memory pressure (swapping), lost capacity and corruption.
"""

from __future__ import annotations

import enum
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.model import ErrorRecord
from repro.monitoring.collectors import Gauge


class Tier(enum.Enum):
    """Architectural tier of a component."""

    FRONTEND = "frontend"
    SERVICE_LOGIC = "service-logic"
    DATABASE = "database"


#: Fraction of free memory below which swapping starts to hurt.
SWAP_THRESHOLD = 0.25
#: Stretch multiplier slope once swapping starts.
SWAP_PENALTY = 8.0
#: Utilization above which the queueing approximation saturates.
MAX_UTILIZATION = 0.97


class Component:
    """One container of the SCP.

    Parameters
    ----------
    name:
        Unique component name (e.g. ``"container-2"``).
    tier:
        Architectural tier.
    capacity:
        Number of parallel workers (request-equivalents per service time).
    service_time:
        Nominal per-request service time at this tier, in seconds.
    memory_mb:
        Provisioned memory.
    error_sink:
        Callback receiving :class:`ErrorRecord` instances (the system's
        error log).
    """

    def __init__(
        self,
        name: str,
        tier: Tier,
        capacity: int,
        service_time: float,
        memory_mb: float,
        error_sink: Callable[[ErrorRecord], None] | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        if service_time <= 0 or memory_mb <= 0:
            raise ConfigurationError("service_time and memory_mb must be positive")
        self.name = name
        self.tier = tier
        self.capacity = capacity
        self.service_time = service_time
        self.memory_mb = memory_mb
        self._error_sink = error_sink or (lambda record: None)

        # Degradation state.
        self.baseline_memory_mb = 0.30 * memory_mb
        self.leaked_mb = 0.0
        self.degraded_fraction = 0.0
        self.corruption = 0.0
        self.background_load = 0.0

        # Per-tick outputs (updated by ``process_tick``).
        self.utilization = 0.0
        self.last_stretch = 1.0

        # Restart bookkeeping.
        self.restarting_until: float | None = None
        self._clock: Callable[[], float] = lambda: 0.0

        # Counters.
        self.errors_emitted = 0
        self.restarts = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Give the component access to simulated time (for error stamps)."""
        self._clock = clock

    def set_error_sink(self, sink: Callable[[ErrorRecord], None]) -> None:
        self._error_sink = sink

    # ------------------------------------------------------------------
    # InjectionTarget protocol
    # ------------------------------------------------------------------

    def leak_memory(self, megabytes: float) -> None:
        self.leaked_mb = min(
            self.leaked_mb + megabytes, self.memory_mb - self.baseline_memory_mb
        )

    def degrade_capacity(self, fraction: float) -> None:
        self.degraded_fraction = float(np.clip(self.degraded_fraction + fraction, 0.0, 0.95))

    def restore_capacity(self) -> None:
        self.degraded_fraction = 0.0

    def corrupt_state(self, amount: float) -> None:
        # Additive per the InjectionTarget protocol ("increase latent
        # corruption"): a restart resets the level and damage must then
        # re-accumulate rather than reappear wholesale.
        self.corruption = float(np.clip(self.corruption + amount, 0.0, 2.0))

    def add_background_load(self, delta: float) -> None:
        self.background_load = max(0.0, self.background_load + delta)

    def emit_error(self, message_id: int, fault_id: int | None, severity: int) -> None:
        self.errors_emitted += 1
        self._error_sink(
            ErrorRecord(
                time=self._clock(),
                message_id=message_id,
                component=self.name,
                fault_id=fault_id,
                severity=severity,
                detected=True,
            )
        )

    # ------------------------------------------------------------------
    # MonitoringSource protocol
    # ------------------------------------------------------------------

    def gauges(self) -> list[Gauge]:
        return [
            Gauge("cpu_utilization", lambda: self.utilization),
            Gauge("memory_used_mb", lambda: self.memory_used_mb),
            Gauge("memory_free_mb", lambda: self.memory_free_mb),
            Gauge("swap_activity", lambda: self.swap_activity),
            Gauge("stretch", lambda: self.last_stretch),
            Gauge("effective_capacity", lambda: self.effective_capacity),
        ]

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------

    @property
    def memory_used_mb(self) -> float:
        return self.baseline_memory_mb + self.leaked_mb

    @property
    def memory_free_mb(self) -> float:
        return self.memory_mb - self.memory_used_mb

    @property
    def free_fraction(self) -> float:
        return self.memory_free_mb / self.memory_mb

    @property
    def swap_activity(self) -> float:
        """0 while memory is ample, ramps up as free memory vanishes."""
        if self.free_fraction >= SWAP_THRESHOLD:
            return 0.0
        return (SWAP_THRESHOLD - self.free_fraction) / SWAP_THRESHOLD

    @property
    def effective_capacity(self) -> float:
        if self.restarting_until is not None:
            return 1e-6  # effectively no capacity while restarting
        return max(self.capacity * (1.0 - self.degraded_fraction), 1e-6)

    # ------------------------------------------------------------------
    # Performance model
    # ------------------------------------------------------------------

    def stretch_factor(self, offered_demand: float, dt: float) -> float:
        """Response-time inflation for this tick.

        ``offered_demand`` is the request-equivalent work arriving during
        the tick.  The stretch combines queueing delay (M/M/c-flavoured
        ``1 / (1 - rho)``), swapping, and corruption-induced retries.
        """
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        arrival_rate = offered_demand / dt + self.background_load
        rho = arrival_rate * self.service_time / self.effective_capacity
        self.utilization = float(min(rho, 1.5))
        rho = min(rho, MAX_UTILIZATION)
        queueing = 1.0 / (1.0 - rho)
        swapping = 1.0 + SWAP_PENALTY * self.swap_activity
        retries = 1.0 + 0.8 * self.corruption
        self.last_stretch = float(queueing * swapping * retries)
        return self.last_stretch

    # ------------------------------------------------------------------
    # Countermeasure hooks
    # ------------------------------------------------------------------

    def begin_restart(self, now: float, duration: float) -> None:
        """Take the component down for ``duration`` (preventive restart)."""
        self.restarting_until = now + duration
        self.restarts += 1

    def finish_restart_if_due(self, now: float) -> bool:
        """Complete a pending restart; resets all degradation state."""
        if self.restarting_until is not None and now >= self.restarting_until:
            self.restarting_until = None
            self.rejuvenate()
            return True
        return False

    def rejuvenate(self) -> None:
        """Reset aging state (what a restart achieves)."""
        self.leaked_mb = 0.0
        self.degraded_fraction = 0.0
        self.corruption = 0.0

    def cleanup(self, effectiveness: float = 0.7) -> None:
        """State clean-up without downtime (garbage collection etc.).

        Recovers ``effectiveness`` of leaked memory and corruption but does
        not fix hung workers.
        """
        if not 0.0 <= effectiveness <= 1.0:
            raise ConfigurationError("effectiveness must be in [0, 1]")
        self.leaked_mb *= 1.0 - effectiveness
        self.corruption *= 1.0 - effectiveness

    def __repr__(self) -> str:
        return (
            f"Component({self.name!r}, tier={self.tier.value}, "
            f"util={self.utilization:.2f}, free={self.memory_free_mb:.0f}MB)"
        )
