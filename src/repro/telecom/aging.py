"""Background software-aging processes.

Parnas' "software aging" (memory leaks, unreleased locks, accumulated
round-off) affects even fault-free periods.  The natural aging process
gives the monitoring data its realistic sawtooth texture: slow leakage
punctuated by partial garbage collection.  It is deliberately mild -- on
its own it never causes SLA failures; injected faults do.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.simulator.engine import Engine
from repro.simulator.events import Timeout
from repro.telecom.components import Component


class NaturalAgingProcess:
    """Mild leak + periodic partial GC on one component."""

    def __init__(
        self,
        component: Component,
        rng: np.random.Generator,
        leak_rate_mb: float = 0.15,
        leak_period: float = 60.0,
        gc_period: float = 3_600.0,
        gc_effectiveness: float = 0.6,
    ) -> None:
        if leak_rate_mb < 0 or leak_period <= 0 or gc_period <= 0:
            raise ConfigurationError("aging parameters must be positive")
        if not 0 <= gc_effectiveness <= 1:
            raise ConfigurationError("gc_effectiveness must be in [0, 1]")
        self.component = component
        self.rng = rng
        self.leak_rate_mb = leak_rate_mb
        self.leak_period = leak_period
        self.gc_period = gc_period
        self.gc_effectiveness = gc_effectiveness
        self.running = False

    def start(self, engine: Engine) -> None:
        self.running = True
        engine.process(self._leak(), name=f"aging-leak:{self.component.name}")
        engine.process(self._collect(), name=f"aging-gc:{self.component.name}")

    def stop(self) -> None:
        self.running = False

    def _leak(self):
        while self.running:
            yield Timeout(self.rng.exponential(self.leak_period))
            if self.running:
                self.component.leak_memory(self.rng.exponential(self.leak_rate_mb))

    def _collect(self):
        while self.running:
            yield Timeout(self.rng.exponential(self.gc_period))
            if self.running:
                # Partial GC: recovers recently leaked memory only.
                self.component.leaked_mb *= 1.0 - self.gc_effectiveness * self.rng.random()
