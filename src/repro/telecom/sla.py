"""The failure definition of the case study -- Eq. 2.

"Specifications for the telecommunication system under investigation
require that within successive, non-overlapping five minutes intervals,
the fraction of calls having response time longer than 250ms must not
exceed 0.01%" -- i.e. four-nines *interval service availability*:

.. math::

    A_i = \\frac{\\#\\{requests \\le 250ms\\}}{\\#requests} \\ge 99.99\\%

A window violating this is a (performance) failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.faults.classification import CristianFailureMode
from repro.faults.model import FailureRecord


@dataclass(frozen=True)
class WindowStats:
    """Request accounting for one SLA window."""

    start: float
    end: float
    total_requests: int
    violations: int

    @property
    def interval_availability(self) -> float:
        """``A_i`` of Eq. 2 (1.0 for empty windows: no evidence of failure)."""
        if self.total_requests == 0:
            return 1.0
        return 1.0 - self.violations / self.total_requests

    def is_failure(self, required_availability: float) -> bool:
        return self.interval_availability < required_availability


class SLAChecker:
    """Accumulates request outcomes into fixed windows and flags failures.

    Parameters
    ----------
    window:
        Window length in seconds (the paper: 300 s).
    required_availability:
        Four nines by default (Eq. 2).
    deadline:
        Per-request response-time deadline in seconds (the paper: 0.250 s).
    on_failure:
        Optional callback receiving a :class:`FailureRecord` whenever a
        window violates the SLA.
    """

    def __init__(
        self,
        window: float = 300.0,
        required_availability: float = 0.9999,
        deadline: float = 0.250,
        on_failure: Callable[[FailureRecord], None] | None = None,
    ) -> None:
        if window <= 0:
            raise ConfigurationError("window must be positive")
        if not 0 < required_availability <= 1:
            raise ConfigurationError("required_availability must be in (0, 1]")
        if deadline <= 0:
            raise ConfigurationError("deadline must be positive")
        self.window = window
        self.required_availability = required_availability
        self.deadline = deadline
        self.on_failure = on_failure or (lambda record: None)

        self._window_start = 0.0
        self._total = 0
        self._violations = 0
        self.windows: list[WindowStats] = []
        self.failures: list[FailureRecord] = []

    def record_batch(self, time: float, total: int, violations: int) -> None:
        """Account ``total`` requests of which ``violations`` missed the
        deadline, all falling at ``time``.

        Rolls windows forward as needed; times must be non-decreasing.
        """
        if violations > total:
            raise ConfigurationError("violations cannot exceed total")
        self._roll_to(time)
        self._total += total
        self._violations += violations

    def record_request(self, time: float, response_time: float) -> None:
        """Account a single request with its measured response time."""
        self.record_batch(time, 1, int(response_time > self.deadline))

    def flush(self, time: float) -> None:
        """Close any window ending at or before ``time``."""
        self._roll_to(time)

    def _roll_to(self, time: float) -> None:
        while time >= self._window_start + self.window:
            self._close_window()

    def _close_window(self) -> None:
        end = self._window_start + self.window
        stats = WindowStats(
            start=self._window_start,
            end=end,
            total_requests=self._total,
            violations=self._violations,
        )
        self.windows.append(stats)
        if stats.is_failure(self.required_availability):
            record = FailureRecord(
                time=end,
                mode=CristianFailureMode.TIMING,
                component="scp",
                duration=0.0,
                description=(
                    f"interval availability {stats.interval_availability:.6f} "
                    f"< {self.required_availability}"
                ),
            )
            self.failures.append(record)
            self.on_failure(record)
        self._window_start = end
        self._total = 0
        self._violations = 0

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------

    def availability_series(self) -> list[tuple[float, float]]:
        """``(window_end, A_i)`` for every closed window."""
        return [(w.end, w.interval_availability) for w in self.windows]

    def failure_count(self) -> int:
        return len(self.failures)

    def overall_availability(self) -> float:
        """Fraction of non-failed windows (service availability proxy)."""
        if not self.windows:
            return 1.0
        failed = sum(
            1 for w in self.windows if w.is_failure(self.required_availability)
        )
        return 1.0 - failed / len(self.windows)
