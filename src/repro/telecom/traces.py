"""Trace export / import: shareable failure data.

Paper Sect. 7: "more field data for reference and benchmarking purposes is
needed but it is very difficult to make it available to the research
community ... the academic/industrial efforts such as AMBER and USENIX to
collect failure rates and traces are highly commendable."

This module writes a generated dataset to plain CSV traces (monitoring
samples, error log, failure log, faultload ground truth) and reads them
back -- so experiments can be archived, shared and re-analyzed without
rerunning the simulator.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path


from repro.errors import ConfigurationError
from repro.faults.classification import CristianFailureMode
from repro.faults.faultload import FaultActivation, FaultLoad
from repro.faults.model import ErrorRecord, FailureRecord
from repro.monitoring.logbook import ErrorLog, FailureLog
from repro.monitoring.timeseries import TimeSeriesStore

MONITORING_FILE = "monitoring.csv"
ERRORS_FILE = "errors.csv"
FAILURES_FILE = "failures.csv"
FAULTLOAD_FILE = "faultload.csv"
META_FILE = "meta.json"


def export_traces(dataset, directory: str | Path) -> Path:
    """Write a :class:`~repro.telecom.dataset.TelecomDataset` as CSV traces.

    Returns the directory written.  Files: ``monitoring.csv`` (time,
    variable, value), ``errors.csv``, ``failures.csv``, ``faultload.csv``
    (ground truth) and ``meta.json`` (horizon, seed, SLA parameters).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with open(directory / MONITORING_FILE, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "variable", "value"])
        for variable in dataset.store.variables:
            series = dataset.store.series(variable)
            for t, v in zip(series.times, series.values, strict=True):
                writer.writerow([f"{t:.3f}", variable, f"{v:.6g}"])

    with open(directory / ERRORS_FILE, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "message_id", "component", "severity"])
        for record in dataset.error_log:
            writer.writerow(
                [f"{record.time:.3f}", record.message_id, record.component,
                 record.severity]
            )

    with open(directory / FAILURES_FILE, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "mode", "duration", "description"])
        for record in dataset.failure_log:
            writer.writerow(
                [f"{record.time:.3f}", record.mode.name, f"{record.duration:.3f}",
                 record.description]
            )

    with open(directory / FAULTLOAD_FILE, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["start", "duration", "kind", "target"])
        for activation in dataset.faultload:
            writer.writerow(
                [f"{activation.start:.3f}", f"{activation.duration:.3f}",
                 activation.kind, activation.target]
            )

    meta = {
        "horizon": dataset.config.horizon,
        "seed": dataset.config.seed,
        "sample_interval": dataset.config.sample_interval,
        "lead_time": dataset.config.lead_time,
        "data_window": dataset.config.data_window,
        "sla_window": dataset.config.scp.sla_window,
        "required_availability": dataset.config.scp.required_availability,
        "deadline": dataset.config.scp.deadline,
        "n_failures": len(dataset.failure_log),
        "n_errors": len(dataset.error_log),
    }
    (directory / META_FILE).write_text(json.dumps(meta, indent=2))
    return directory


class LoadedTraces:
    """Traces read back from an exported directory.

    Provides the same access surface predictors need: a time-series store,
    error / failure logs, the faultload ground truth and the metadata.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        error_log: ErrorLog,
        failure_log: FailureLog,
        faultload: FaultLoad,
        meta: dict,
    ) -> None:
        self.store = store
        self.error_log = error_log
        self.failure_log = failure_log
        self.faultload = faultload
        self.meta = meta

    @property
    def failure_times(self) -> list[float]:
        return self.failure_log.failure_times()

    @property
    def variables(self) -> list[str]:
        return self.store.variables


def load_traces(directory: str | Path) -> LoadedTraces:
    """Read traces written by :func:`export_traces`."""
    directory = Path(directory)
    for required in (MONITORING_FILE, ERRORS_FILE, FAILURES_FILE, META_FILE):
        if not (directory / required).exists():
            raise ConfigurationError(f"missing trace file: {required}")

    store = TimeSeriesStore()
    # Monitoring rows are grouped per variable in export order; collect and
    # insert per variable so in-order appends hold.
    per_variable: dict[str, list[tuple[float, float]]] = {}
    with open(directory / MONITORING_FILE, newline="") as handle:
        for row in csv.DictReader(handle):
            per_variable.setdefault(row["variable"], []).append(
                (float(row["time"]), float(row["value"]))
            )
    for variable, samples in per_variable.items():
        samples.sort(key=lambda pair: pair[0])
        for t, v in samples:
            store.record(t, variable, v)

    error_log = ErrorLog()
    with open(directory / ERRORS_FILE, newline="") as handle:
        for row in csv.DictReader(handle):
            error_log.report(
                ErrorRecord(
                    time=float(row["time"]),
                    message_id=int(row["message_id"]),
                    component=row["component"],
                    severity=int(row["severity"]),
                )
            )

    failure_log = FailureLog()
    with open(directory / FAILURES_FILE, newline="") as handle:
        for row in csv.DictReader(handle):
            failure_log.report(
                FailureRecord(
                    time=float(row["time"]),
                    mode=CristianFailureMode[row["mode"]],
                    duration=float(row["duration"]),
                    description=row["description"],
                )
            )

    activations = []
    faultload_path = directory / FAULTLOAD_FILE
    if faultload_path.exists():
        with open(faultload_path, newline="") as handle:
            for row in csv.DictReader(handle):
                activations.append(
                    FaultActivation(
                        start=float(row["start"]),
                        duration=float(row["duration"]),
                        kind=row["kind"],
                        target=row["target"],
                    )
                )
    meta = json.loads((directory / META_FILE).read_text())
    return LoadedTraces(
        store=store,
        error_log=error_log,
        failure_log=failure_log,
        faultload=FaultLoad(activations=activations),
        meta=meta,
    )
