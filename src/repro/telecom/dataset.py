"""Labeled dataset generation for predictor training and evaluation.

Runs the SCP simulator over a long horizon with a faultload (plus
background error noise), collects monitoring data and the error/failure
logs, and derives the two kinds of labeled data the paper's predictors
consume:

- **UBF samples** -- periodic feature vectors of monitoring variables with
  the *interval service availability* of the window ``lead_time`` ahead as
  the regression target (the target function chosen in the case study) and
  its SLA breach as the binary label;
- **error sequences** (Fig. 6) -- failure sequences taken ``lead_time``
  before each failure over a ``data_window``, and non-failure sequences
  from quiet periods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.faultload import FaultLoad
from repro.faults.injectors import (
    FaultInjector,
    IntermittentErrorInjector,
    MemoryLeakInjector,
    OverloadInjector,
    ProcessHangInjector,
    StateCorruptionInjector,
)
from repro.monitoring.collectors import PeriodicCollector
from repro.monitoring.records import EventSequence
from repro.monitoring.timeseries import TimeSeriesStore
from repro.simulator.engine import Engine
from repro.simulator.random_streams import RandomStreams
from repro.telecom.system import SCPConfig, SCPSystem

DAY = 86_400.0

#: Default fault specs: mean time between activations and episode duration.
DEFAULT_FAULT_SPECS = {
    "memory-leak": {"mtbf": 10.0 * 3600, "duration": 2_400.0},
    "process-hang": {"mtbf": 12.0 * 3600, "duration": 1_800.0},
    "state-corruption": {"mtbf": 14.0 * 3600, "duration": 2_400.0},
    "overload": {"mtbf": 12.0 * 3600, "duration": 1_500.0},
}


@dataclass(frozen=True)
class DatasetConfig:
    """Configuration of a dataset-generation run."""

    horizon: float = 14 * DAY
    seed: int = 1
    sample_interval: float = 30.0
    warmup: float = 3_600.0
    lead_time: float = 300.0  # Delta t_l
    data_window: float = 1_800.0  # Delta t_d
    prediction_window: float = 300.0  # Delta t_p (one SLA window)
    post_failure_repair_downtime: float = 120.0
    fault_specs: dict = field(default_factory=lambda: dict(DEFAULT_FAULT_SPECS))
    min_gap: float = 4_000.0
    scp: SCPConfig = field(default_factory=lambda: SCPConfig(container_capacity=2))

    def __post_init__(self) -> None:
        if self.horizon <= self.warmup:
            raise ConfigurationError("horizon must exceed warmup")
        if self.sample_interval <= 0:
            raise ConfigurationError("sample_interval must be positive")


def _make_injector(
    kind: str, target, rng: np.random.Generator
) -> FaultInjector:
    """Injector factory with episode-scale parameters (see DESIGN.md)."""
    if kind == "memory-leak":
        return MemoryLeakInjector(
            target, rng, rate_mb=45.0, period=20.0, warn_after_mb=300.0
        )
    if kind == "process-hang":
        return ProcessHangInjector(
            target, rng, initial_loss=0.2, step_loss=0.06, max_loss=0.8,
            step_period=80.0,
        )
    if kind == "state-corruption":
        return StateCorruptionInjector(
            target, rng, growth=0.035, period=25.0, burst_threshold=0.25
        )
    if kind == "overload":
        return OverloadInjector(
            target, rng, extra_load=55.0, ramp_steps=12, step_period=60.0
        )
    raise ConfigurationError(f"unknown fault kind {kind!r}")


@dataclass
class TelecomDataset:
    """The output of one simulation run, with labeling helpers."""

    config: DatasetConfig
    store: TimeSeriesStore
    system: SCPSystem
    faultload: FaultLoad

    # ------------------------------------------------------------------
    # Raw accessors
    # ------------------------------------------------------------------

    @property
    def error_log(self):
        return self.system.error_log

    @property
    def failure_log(self):
        return self.system.failure_log

    @property
    def failure_times(self) -> list[float]:
        return self.system.failure_log.failure_times()

    @property
    def variables(self) -> list[str]:
        return self.store.variables

    # ------------------------------------------------------------------
    # UBF-style samples (symptom monitoring)
    # ------------------------------------------------------------------

    def sample_grid(self) -> np.ndarray:
        """Sampling times: warmup to the last fully-labelable point."""
        cfg = self.config
        end = cfg.horizon - cfg.lead_time - cfg.prediction_window
        return np.arange(cfg.warmup, end, cfg.sample_interval)

    def ubf_samples(
        self,
        variables: list[str] | None = None,
        grid: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Feature matrix and targets on the sampling grid.

        Returns ``(times, X, y_availability, y_failure)`` where the target
        is the worst interval availability in
        ``[t + lead_time, t + lead_time + prediction_window)`` and the
        binary label marks an SLA breach in that span.
        """
        cfg = self.config
        grid = self.sample_grid() if grid is None else np.asarray(grid, dtype=float)
        variables = variables or self.variables
        x = self.store.matrix(variables, grid)
        windows = self.system.sla.windows
        window_ends = np.array([w.end for w in windows])
        window_avail = np.array([w.interval_availability for w in windows])
        y_avail = np.ones(grid.size)
        y_fail = np.zeros(grid.size, dtype=bool)
        for i, t in enumerate(grid):
            span_start = t + cfg.lead_time
            span_end = span_start + cfg.prediction_window
            # Windows whose end falls inside the prediction span.
            mask = (window_ends > span_start) & (window_ends <= span_end + cfg.scp.sla_window)
            if mask.any():
                y_avail[i] = float(window_avail[mask].min())
        y_fail = y_avail < cfg.scp.required_availability
        return grid, x, y_avail, y_fail

    def panel_sequences(
        self,
        grid: np.ndarray | None = None,
        max_events: int = 200,
    ) -> list[EventSequence]:
        """One error window per sampling instant, aligned with the grid.

        Each sequence covers ``[t - data_window, t)`` — the same window
        shape :class:`~repro.prediction.online.OnlineEventScorer` feeds a
        live event predictor — so scores over these sequences line up row
        by row with :meth:`ubf_samples` features and labels.  This is the
        calibration view a mixed predictor panel trains its per-member
        calibrators on.
        """
        cfg = self.config
        grid = self.sample_grid() if grid is None else np.asarray(grid, dtype=float)
        log = self.error_log
        sequences: list[EventSequence] = []
        for t in grid:
            records = log.window(t - cfg.data_window, t)[-max_events:]
            sequences.append(
                EventSequence(
                    times=[r.time for r in records],
                    message_ids=[r.message_id for r in records],
                    origin=float(t) - cfg.data_window,
                )
            )
        return sequences

    def training_data(
        self,
        variables: list[str] | None = None,
        consumes: frozenset | set | None = None,
        grid: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ):
        """A :class:`~repro.prediction.base.TrainingData` bundle.

        ``consumes`` (a predictor's declared input modalities) controls
        which views are materialized: the feature/label view is always
        built (labels drive threshold calibration), the sequence views
        only when ``"sequences"`` is requested — extracting class-labeled
        training sequences and the grid-aligned calibration panel is not
        free.
        """
        from repro.prediction.base import SEQUENCES, TrainingData

        times, x, y_avail, y_fail = self.ubf_samples(variables=variables, grid=grid)
        data = TrainingData(x=x, y=y_avail, labels=y_fail)
        if consumes is not None and SEQUENCES in consumes:
            failure, nonfailure = self.error_sequences(rng=rng)
            data.sequences = self.panel_sequences(grid=times)
            data.failure_sequences = failure
            data.nonfailure_sequences = nonfailure
        return data

    # ------------------------------------------------------------------
    # Error sequences (detected error reporting, Fig. 6)
    # ------------------------------------------------------------------

    def error_sequences(
        self,
        rng: np.random.Generator | None = None,
        nonfailure_per_failure: float = 3.0,
        min_events: int = 2,
        max_events: int = 200,
    ) -> tuple[list[EventSequence], list[EventSequence]]:
        """Extract failure and non-failure error sequences.

        Failure sequences cover ``[t_f - lead - window, t_f - lead)`` for
        each failure ``t_f`` (deduplicated so bursts of SLA breaches do not
        produce near-identical sequences).  Non-failure sequences are drawn
        from periods with no failure within the window plus lead time plus
        a safety margin.
        """
        cfg = self.config
        rng = rng or np.random.default_rng(cfg.seed + 917)
        failure_seqs: list[EventSequence] = []
        last_taken = -np.inf
        for t_f in self.failure_times:
            if t_f - last_taken < cfg.data_window:
                continue  # burst of breaches -> one sequence
            start = t_f - cfg.lead_time - cfg.data_window
            end = t_f - cfg.lead_time
            if start < cfg.warmup:
                continue
            records = self.error_log.window(start, end)[:max_events]
            if len(records) < min_events:
                continue
            failure_seqs.append(
                EventSequence(
                    times=[r.time for r in records],
                    message_ids=[r.message_id for r in records],
                    label=True,
                    origin=start,
                )
            )
            last_taken = t_f

        margin = cfg.scp.sla_window
        n_nonfailure = int(round(nonfailure_per_failure * max(len(failure_seqs), 1)))
        nonfailure_seqs: list[EventSequence] = []
        failure_times = np.asarray(self.failure_times)
        attempts = 0
        while len(nonfailure_seqs) < n_nonfailure and attempts < 50 * n_nonfailure:
            attempts += 1
            start = rng.uniform(cfg.warmup, cfg.horizon - cfg.data_window - cfg.lead_time - margin)
            end = start + cfg.data_window
            # Quiet requirement: no failure from window start until after lead.
            danger_start, danger_end = start, end + cfg.lead_time + margin
            if failure_times.size and np.any(
                (failure_times >= danger_start) & (failure_times <= danger_end)
            ):
                continue
            records = self.error_log.window(start, end)[:max_events]
            if len(records) < min_events:
                continue
            nonfailure_seqs.append(
                EventSequence(
                    times=[r.time for r in records],
                    message_ids=[r.message_id for r in records],
                    label=False,
                    origin=start,
                )
            )
        return failure_seqs, nonfailure_seqs


@dataclass
class SimulationRun:
    """A prepared (but not yet executed) dataset simulation.

    Exposes the engine and system so callers -- notably the closed-loop
    PFM experiments -- can attach controllers before calling :meth:`run`.
    """

    config: DatasetConfig
    engine: Engine
    streams: RandomStreams
    system: SCPSystem
    store: TimeSeriesStore
    collector: PeriodicCollector
    faultload: FaultLoad
    noise_injectors: list[IntermittentErrorInjector]

    def run(self) -> TelecomDataset:
        """Execute the simulation to the horizon and collect the dataset."""
        self.system.start()
        self.collector.start()
        for injector in self.noise_injectors:
            injector.start(self.engine)
        self.engine.run(until=self.config.horizon)
        self.system.sla.flush(self.config.horizon)
        self.collector.stop()
        for injector in self.noise_injectors:
            injector.stop()
        return TelecomDataset(
            config=self.config,
            store=self.store,
            system=self.system,
            faultload=self.faultload,
        )


def prepare_simulation(config: DatasetConfig | None = None) -> SimulationRun:
    """Build the engine, system, faultload and monitoring for one run."""
    config = config or DatasetConfig()
    engine = Engine()
    streams = RandomStreams(config.seed)
    system = SCPSystem(engine, streams, config.scp)
    store = TimeSeriesStore()
    collector = PeriodicCollector(
        engine, store, system.all_gauges(), interval=config.sample_interval
    )

    # Background error noise on every component (never fails by itself).
    noise_injectors = [
        IntermittentErrorInjector(
            component, streams.get(f"noise:{component.name}"), period=250.0
        )
        for component in system.all_components()
    ]

    # Faultload over the service-logic tier.
    faultload = FaultLoad.generate(
        horizon=config.horizon,
        specs=config.fault_specs,
        targets=[c.name for c in system.containers],
        rng=streams.get("faultload"),
        min_gap=config.min_gap,
    )

    def schedule_episode(activation) -> None:
        target = system.component(activation.target)
        injector = _make_injector(
            activation.kind,
            target,
            streams.fresh(f"inj:{activation.kind}:{activation.start:.0f}"),
        )

        def begin() -> None:
            injector.start(engine)

        def finish() -> None:
            injector.stop()
            # Ops repair after the episode: brief restart clears state.
            system.restart_component(
                activation.target, config.post_failure_repair_downtime
            )

        engine.schedule_at(activation.start, begin)
        engine.schedule_at(activation.end, finish)

    for activation in faultload:
        schedule_episode(activation)

    return SimulationRun(
        config=config,
        engine=engine,
        streams=streams,
        system=system,
        store=store,
        collector=collector,
        faultload=faultload,
        noise_injectors=noise_injectors,
    )


def generate_dataset(config: DatasetConfig | None = None) -> TelecomDataset:
    """Run the SCP simulation and return the collected dataset."""
    return prepare_simulation(config).run()
