"""Workload model: MOC / SMS / GPRS request streams.

The SCP "has to respond to a large variety of different service requests
regarding accounts, billing, etc. submitted to the system over various
protocols such as RADIUS, SS7, or IP".  The workload model produces
per-tick Poisson request counts for each service type with diurnal
modulation and weekly weekday/weekend structure.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError

DAY = 86_400.0
WEEK = 7 * DAY


class ServiceType(enum.Enum):
    """Service classes handled by the Service Control Functions."""

    MOC = "mobile-originated-call"
    SMS = "short-message-service"
    GPRS = "general-packet-radio-service"


class Protocol(enum.Enum):
    """Ingress protocols of the SCP."""

    RADIUS = "radius"
    SS7 = "ss7"
    IP = "ip"


#: Which protocol carries which service type (simplified mapping).
SERVICE_PROTOCOL = {
    ServiceType.MOC: Protocol.SS7,
    ServiceType.SMS: Protocol.SS7,
    ServiceType.GPRS: Protocol.RADIUS,
}

#: Relative processing demand per service type (MOC is heaviest).
SERVICE_DEMAND = {
    ServiceType.MOC: 1.0,
    ServiceType.SMS: 0.6,
    ServiceType.GPRS: 0.8,
}


@dataclass(frozen=True)
class WorkloadConfig:
    """Arrival-process parameters.

    Attributes
    ----------
    base_rate:
        Mean total arrivals per second, averaged over the day.
    mix:
        Fraction of traffic per service type (must sum to 1).
    diurnal_amplitude:
        Relative day/night swing in [0, 1): rate(t) oscillates between
        ``base * (1 - a)`` and ``base * (1 + a)``.
    weekend_factor:
        Multiplier applied on days 5 and 6 of each week.
    peak_hour:
        Hour of day (0-24) at which the diurnal curve peaks.
    """

    base_rate: float = 120.0
    mix: dict[ServiceType, float] = field(
        default_factory=lambda: {
            ServiceType.MOC: 0.5,
            ServiceType.SMS: 0.3,
            ServiceType.GPRS: 0.2,
        }
    )
    diurnal_amplitude: float = 0.35
    weekend_factor: float = 0.7
    peak_hour: float = 14.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0:
            raise ConfigurationError("base_rate must be positive")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ConfigurationError("diurnal_amplitude must be in [0, 1)")
        if self.weekend_factor <= 0:
            raise ConfigurationError("weekend_factor must be positive")
        total = sum(self.mix.values())
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(f"service mix must sum to 1, got {total}")


class WorkloadModel:
    """Generates per-tick arrival counts from a :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng

    def rate_at(self, time: float) -> float:
        """Instantaneous total arrival rate (requests/second) at ``time``."""
        hour = (time % DAY) / 3600.0
        phase = 2.0 * math.pi * (hour - self.config.peak_hour) / 24.0
        diurnal = 1.0 + self.config.diurnal_amplitude * math.cos(phase)
        day_of_week = int(time % WEEK // DAY)
        weekly = self.config.weekend_factor if day_of_week >= 5 else 1.0
        return self.config.base_rate * diurnal * weekly

    def arrivals(self, time: float, dt: float) -> dict[ServiceType, int]:
        """Poisson arrival counts per service type over ``[time, time+dt)``."""
        expected_total = self.rate_at(time + dt / 2.0) * dt
        counts: dict[ServiceType, int] = {}
        for service, fraction in self.config.mix.items():
            counts[service] = int(self.rng.poisson(expected_total * fraction))
        return counts

    def demand(self, counts: dict[ServiceType, int]) -> float:
        """Total processing demand of an arrival batch (request-equivalents)."""
        return sum(SERVICE_DEMAND[svc] * n for svc, n in counts.items())

    def protocol_split(
        self, counts: dict[ServiceType, int]
    ) -> dict[Protocol, int]:
        """Arrival counts per ingress protocol."""
        split: dict[Protocol, int] = {p: 0 for p in Protocol}
        for service, n in counts.items():
            split[SERVICE_PROTOCOL[service]] += n
        # A slice of all traffic arrives over plain IP management interfaces.
        ip_share = int(0.1 * sum(counts.values()))
        split[Protocol.IP] += ip_share
        return split
