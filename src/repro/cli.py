"""Command-line interface: ``python -m repro.cli <command>``.

Commands map to the paper's artifacts:

- ``model``        Table 2 -> availability (Eq. 8), ratio (Eq. 14)
- ``curves``       Fig. 10 reliability / hazard series
- ``case-study``   Sect. 3.3: simulate the SCP, train UBF + HSMM, report
- ``closed-loop``  replay one faultload with and without PFM
- ``fleet``        sharded multi-seed grid -> per-scenario distributions
- ``report``       fleet trace + ledger + aggregate -> markdown/HTML report
- ``campaign``     fault-inject the PFM stack itself, report degradation
- ``trace``        instrumented closed-loop run -> JSONL trace + metrics
- ``taxonomy``     print the Fig. 3 classification tree
- ``policies``     cost comparison: PFM vs optimal rejuvenation vs nothing
- ``lint``         run pfmlint, the determinism & dependability linter
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _cmd_model(args: argparse.Namespace) -> None:
    from repro.reliability import (
        PFMModel,
        PFMParameters,
        PredictionQuality,
        asymptotic_unavailability_ratio,
        unavailability_ratio,
        without_pfm_availability,
    )

    params = PFMParameters(
        quality=PredictionQuality(args.precision, args.recall, args.fpr),
        p_tp=args.ptp,
        p_fp=args.pfp,
        k=args.k,
    )
    model = PFMModel(params)
    print(f"availability with PFM:    {model.availability():.6f}")
    print(f"availability without PFM: {without_pfm_availability(params):.6f}")
    print(f"unavailability ratio:     {unavailability_ratio(params):.3f}")
    print(f"asymptotic ratio (Eq.14): {asymptotic_unavailability_ratio(params):.3f}")


def _cmd_curves(args: argparse.Namespace) -> None:
    from repro.reliability import PFMParameters, hazard_curves, reliability_curves

    params = PFMParameters.paper_example()
    ts = np.linspace(0.0, args.horizon, args.points)
    reliability = reliability_curves(params, ts)
    hazard = hazard_curves(params, ts)
    print(f"{'t':>10s} {'R_pfm':>8s} {'R':>8s} {'h_pfm':>11s} {'h':>11s}")
    for i, t in enumerate(ts):
        print(
            f"{t:10.0f} {reliability['with_pfm'][i]:8.4f} "
            f"{reliability['without_pfm'][i]:8.4f} "
            f"{hazard['with_pfm'][i]:11.3e} {hazard['without_pfm'][i]:11.3e}"
        )


def _cmd_case_study(args: argparse.Namespace) -> None:
    from repro.prediction.evaluation import (
        chronological_split,
        report_from_scores,
        split_sequences,
    )
    from repro.prediction.hsmm import HSMMPredictor
    from repro.prediction.ubf import (
        ProbabilisticWrapper,
        UBFNetwork,
        UBFPredictor,
    )
    from repro.telecom import DatasetConfig, generate_dataset

    variables = [
        "cpu_utilization", "memory_free_mb", "swap_activity", "max_stretch",
        "response_time_ms", "error_rate", "violation_prob", "db_utilization",
        "request_rate",
    ]
    print(f"simulating {args.days:g} days of SCP operation...")
    dataset = generate_dataset(
        DatasetConfig(horizon=args.days * 86_400.0, seed=args.seed)
    )
    print(f"failures: {len(dataset.failure_log)}  errors: {len(dataset.error_log)}")
    grid, x, y_avail, y_fail = dataset.ubf_samples(variables=variables)
    train, test = chronological_split(grid, fraction=0.6)
    ubf = UBFPredictor(
        network=UBFNetwork(n_kernels=10, max_opt_iter=25, rng=np.random.default_rng(0)),
        wrapper=ProbabilisticWrapper(
            n_rounds=8, samples_per_round=10, rng=np.random.default_rng(1)
        ),
    )
    ubf.fit_samples(x[train], y_avail[train])
    ubf_report = report_from_scores(
        "UBF",
        ubf.score_samples(x[train]), y_fail[train],
        ubf.score_samples(x[test]), y_fail[test],
    )
    cutoff = float(grid[train][-1])
    failure_seqs, nonfailure_seqs = dataset.error_sequences()
    train_f, test_f = split_sequences(failure_seqs, cutoff)
    train_n, test_n = split_sequences(nonfailure_seqs, cutoff)
    hsmm = HSMMPredictor(max_iter=10, seed=3)
    hsmm.fit_sequences(train_f, train_n)
    train_scores, train_labels = hsmm._score_labeled(train_f, train_n)
    test_scores, test_labels = hsmm._score_labeled(test_f, test_n)
    hsmm_report = report_from_scores(
        "HSMM", train_scores, train_labels, test_scores, test_labels
    )
    print("paper HSMM: precision=0.700 recall=0.620 fpr=0.016 AUC=0.873")
    print("paper UBF : AUC=0.846")
    print(hsmm_report.row())
    print(ubf_report.row())


def _cmd_closed_loop(args: argparse.Namespace) -> None:
    from repro.core import run_closed_loop
    from repro.fleet import RunSpec

    spec = RunSpec(
        scenario="closed-loop",
        seed=args.train_seed,
        train_seed=args.train_seed,
        eval_seed=args.eval_seed,
        horizon=args.days * 86_400.0,
    )
    result = run_closed_loop(spec=spec)
    print(result.summary())


def _parse_predictor_spec(raw: str) -> dict:
    """A ``--predictor-spec`` value: inline JSON or ``@path`` to a file."""
    import json

    from repro.prediction.registry import normalize_predictor_spec

    if raw.startswith("@"):
        with open(raw[1:], encoding="utf-8") as handle:
            raw = handle.read()
    try:
        spec = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"--predictor-spec is not valid JSON: {exc}") from None
    try:
        return normalize_predictor_spec(spec)
    except Exception as exc:
        raise SystemExit(f"invalid --predictor-spec: {exc}") from None


def _cmd_fleet(args: argparse.Namespace) -> None:
    from repro.fleet import grid, run_fleet

    if args.seeds:
        seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    else:
        seeds = list(range(args.base_seed, args.base_seed + args.num_seeds))
    common = {}
    if args.train_seed is not None:
        common["train_seed"] = args.train_seed
    predictors: list = list(args.predictor or [])
    for raw in args.predictor_spec or []:
        predictors.append(_parse_predictor_spec(raw))
    specs = grid(
        args.scenario or ["closed-loop"],
        seeds=seeds,
        predictors=predictors or ["ubf"],
        horizon=args.days * 86_400.0,
        telemetry=args.telemetry,
        **common,
    )

    def progress(done: int, total: int, result) -> None:
        print(
            f"[{done}/{total}] {result.spec.key()} "
            f"avail={result.availability:.4f} ({result.wall_seconds:.1f}s)",
            file=sys.stderr,
        )

    chaos = None
    if args.chaos:
        from repro.faults.chaos import parse_chaos

        chaos = parse_chaos(args.chaos, seed=args.chaos_seed)
    retry = None
    if args.max_attempts is not None:
        from repro.resilience import RetryPolicy

        retry = RetryPolicy(max_attempts=args.max_attempts)
    report = run_fleet(
        specs,
        backend=args.backend,
        workers=args.workers,
        ledger_path=args.ledger,
        progress=progress,
        artifact_store=args.artifact_store,
        chunk_size=args.chunk_size,
        retry=retry,
        retry_failed=args.retry_failed,
        chaos=chaos,
        trace_dir=args.trace_dir,
        trace_deterministic=args.trace_deterministic,
    )
    if args.out:
        # --out stays the canonical (byte-identity) aggregate document.
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report.aggregate_json())
        print(f"aggregate: {args.out}", file=sys.stderr)
    if args.trace_dir:
        trace = report.timing.get("trace") or {}
        print(
            f"trace: {trace.get('path')} ({trace.get('events')} events, "
            f"{trace.get('shards')} shard lanes) "
            f"chrome: {trace.get('chrome_path')}",
            file=sys.stderr,
        )
    if args.json:
        print(report.aggregate_json(include_recovery=True))
    else:
        print(report.summary())


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.fleet.report import collect_report, render_html, render_markdown

    if not (args.trace_dir or args.ledger or args.aggregate):
        raise SystemExit(
            "report needs at least one input: --trace-dir, --ledger "
            "or --aggregate"
        )
    data = collect_report(
        trace_dir=args.trace_dir,
        ledger_path=args.ledger,
        aggregate=args.aggregate,
        title=args.title,
    )
    rendered = render_html(data) if args.html else render_markdown(data)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"report: {args.out}", file=sys.stderr)
    else:
        print(rendered)


def _cmd_campaign(args: argparse.Namespace) -> None:
    from repro.resilience import CampaignConfig, default_scenarios, run_campaign

    scenarios = default_scenarios()
    if args.scenario:
        by_name = {scenario.name: scenario for scenario in scenarios}
        unknown = [name for name in args.scenario if name not in by_name]
        if unknown:
            raise SystemExit(
                f"unknown scenario(s) {unknown}; choose from {sorted(by_name)}"
            )
        scenarios = [by_name[name] for name in args.scenario]
    predictor = (
        _parse_predictor_spec(args.predictor_spec)
        if args.predictor_spec
        else args.predictor
    )
    report = run_campaign(
        CampaignConfig(
            train_seed=args.train_seed,
            eval_seed=args.eval_seed,
            injection_seed=args.injection_seed,
            seed=args.seed,
            horizon=args.days * 86_400.0,
            predictor=predictor,
            scenarios=scenarios,
            attack_mtbf=args.attack_mtbf,
            attack_duration=args.attack_duration,
            telemetry=args.telemetry,
            telemetry_dir=args.telemetry_dir,
        ),
        backend=args.backend,
        workers=args.workers,
        ledger_path=args.ledger,
        artifact_store=args.artifact_store,
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.summary())


def _cmd_trace(args: argparse.Namespace) -> None:
    from repro.core import run_closed_loop
    from repro.telemetry import (
        TelemetryHub,
        export_jsonl,
        prometheus_text,
        run_summary,
    )

    hub = TelemetryHub()
    result = run_closed_loop(
        train_seed=args.train_seed,
        eval_seed=args.eval_seed,
        horizon=args.days * 86_400.0,
        telemetry=hub,
    )
    os.makedirs(args.out, exist_ok=True)
    trace_path = os.path.join(args.out, "trace.jsonl")
    n_events = export_jsonl(hub, trace_path)
    prom_path = os.path.join(args.out, "metrics.prom")
    with open(prom_path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(hub))
    print(
        run_summary(
            hub,
            title=(
                f"closed loop: train_seed={args.train_seed} "
                f"eval_seed={args.eval_seed} days={args.days:g}"
            ),
        )
    )
    print(f"unavailability ratio: {result.unavailability_ratio:.3f}")
    print(f"trace: {trace_path} ({n_events} events)")
    print(f"metrics snapshot: {prom_path}")


def _cmd_taxonomy(args: argparse.Namespace) -> None:
    from repro.prediction.taxonomy import render

    print(render())


def _cmd_policies(args: argparse.Namespace) -> None:
    from repro.reliability import PFMParameters
    from repro.reliability.cost import CostModel, policy_comparison

    costs = CostModel(
        unplanned_cost_rate=args.unplanned_cost, planned_cost_rate=args.planned_cost
    )
    rows = policy_comparison(PFMParameters.paper_example(), costs)
    print(f"{'policy':<24s} {'avail':>8s} {'planned':>9s} {'unplanned':>10s} {'cost/s':>9s}")
    for row in rows:
        print(
            f"{row.policy:<24s} {row.availability:8.5f} "
            f"{row.planned_downtime_fraction:9.6f} "
            f"{row.unplanned_downtime_fraction:10.6f} {row.cost_rate:9.5f}"
        )


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint.cli import main as lint_main

    lint_args = args.lint_args
    if lint_args and lint_args[0] == "--":
        lint_args = lint_args[1:]
    return lint_main(lint_args)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Proactive Fault Management reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    model = sub.add_parser("model", help="Table 2 -> Eq. 8 / Eq. 14")
    model.add_argument("--precision", type=float, default=0.70)
    model.add_argument("--recall", type=float, default=0.62)
    model.add_argument("--fpr", type=float, default=0.016)
    model.add_argument("--ptp", type=float, default=0.25)
    model.add_argument("--pfp", type=float, default=0.1)
    model.add_argument("--k", type=float, default=2.0)
    model.set_defaults(func=_cmd_model)

    curves = sub.add_parser("curves", help="Fig. 10 series")
    curves.add_argument("--horizon", type=float, default=50_000.0)
    curves.add_argument("--points", type=int, default=11)
    curves.set_defaults(func=_cmd_curves)

    case = sub.add_parser("case-study", help="Sect. 3.3 predictors on the SCP")
    case.add_argument("--days", type=float, default=7.0)
    case.add_argument("--seed", type=int, default=7)
    case.set_defaults(func=_cmd_case_study)

    loop = sub.add_parser("closed-loop", help="PFM vs baseline on one faultload")
    loop.add_argument("--train-seed", type=int, default=11)
    loop.add_argument("--eval-seed", type=int, default=21)
    loop.add_argument("--days", type=float, default=3.0)
    loop.set_defaults(func=_cmd_closed_loop)

    fleet = sub.add_parser(
        "fleet", help="sharded multi-seed grid -> per-scenario distributions"
    )
    fleet.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="scenario to shard over (repeatable; default closed-loop)",
    )
    fleet.add_argument(
        "--seeds",
        default=None,
        help="comma-separated master seeds (e.g. 21,22,23); overrides "
        "--num-seeds/--base-seed",
    )
    fleet.add_argument(
        "--num-seeds", type=int, default=4, help="number of consecutive seeds"
    )
    fleet.add_argument(
        "--base-seed", type=int, default=21, help="first master seed"
    )
    fleet.add_argument(
        "--train-seed",
        type=int,
        default=None,
        help="pin one training seed across every shard (shared-predictor "
        "sweep); default derives training from each shard's master seed",
    )
    fleet.add_argument(
        "--predictor",
        action="append",
        default=None,
        help="predictor registry name (repeatable; default ubf)",
    )
    fleet.add_argument(
        "--predictor-spec",
        action="append",
        default=None,
        help="nested predictor spec as JSON (or @file), e.g. "
        '\'{"name": "noisy-or", "members": ["ubf", "trend"]}\' (repeatable)',
    )
    fleet.add_argument("--days", type=float, default=2.0)
    fleet.add_argument(
        "--backend", choices=["serial", "process"], default="process"
    )
    fleet.add_argument(
        "--workers", type=int, default=None, help="process-pool size"
    )
    fleet.add_argument(
        "--ledger",
        default=None,
        help="JSONL checkpoint; re-running skips completed shards",
    )
    fleet.add_argument(
        "--artifact-store",
        default=None,
        metavar="DIR",
        help="shared trained-model store: pre-warm each unique training "
        "configuration once, workers load instead of re-training",
    )
    fleet.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="shards per submitted chunk (default: sized to the workers)",
    )
    fleet.add_argument(
        "--telemetry", action="store_true", help="instrument every shard"
    )
    fleet.add_argument(
        "--retry-failed",
        action="store_true",
        help="re-run shards the ledger recorded as failed or quarantined "
        "instead of skipping them on resume",
    )
    fleet.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="N",
        help="retry budget per shard for infrastructure failures (worker "
        "death, torn reads) before quarantine; default 3, 1 disables retries",
    )
    fleet.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="arm seeded fault injection in every worker, e.g. "
        "'crash=0.2,slow=0.1,torn=0.05' (fleet chaos harness; proves the "
        "supervisor absorbs worker loss without perturbing aggregates)",
    )
    fleet.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the chaos fault decisions (default 0)",
    )
    fleet.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="fleet-wide distributed tracing: per-shard JSONL sidecars, a "
        "supervisor recovery lane, a merged deterministic timeline "
        "(fleet_trace.jsonl) and a Chrome/Perfetto render "
        "(fleet_trace.chrome.json) under this directory",
    )
    fleet.add_argument(
        "--trace-deterministic",
        action="store_true",
        help="zero wall-clock fields in trace sidecars so trace bytes are "
        "a pure function of simulated behaviour",
    )
    fleet.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregate JSON document (with the recovery section)",
    )
    fleet.add_argument(
        "--out", default=None, help="also write the aggregate JSON to this file"
    )
    fleet.set_defaults(func=_cmd_fleet)

    report = sub.add_parser(
        "report",
        help="render a fleet run report from trace dir + ledger + aggregate",
        description="Turn the artifacts one fleet run left behind (any "
        "subset of --trace-dir, --ledger, --aggregate) into a single "
        "markdown or HTML report: per-shard span profiles, the supervisor "
        "recovery timeline, quarantine causes, and the Sect. 3.3 quality "
        "roll-up.",
    )
    report.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="trace directory written by `fleet --trace-dir`",
    )
    report.add_argument(
        "--ledger",
        default=None,
        help="fleet ledger (quarantine / failure causes)",
    )
    report.add_argument(
        "--aggregate",
        default=None,
        metavar="JSON",
        help="aggregate document written by `fleet --out`",
    )
    report.add_argument(
        "--title", default="fleet run report", help="report heading"
    )
    report.add_argument(
        "--html",
        action="store_true",
        help="render a self-contained HTML page instead of markdown",
    )
    report.add_argument(
        "--out",
        default=None,
        help="write the report here instead of stdout",
    )
    report.set_defaults(func=_cmd_report)

    campaign = sub.add_parser(
        "campaign", help="fault-inject the PFM stack, report graceful degradation"
    )
    campaign.add_argument("--train-seed", type=int, default=11)
    campaign.add_argument("--eval-seed", type=int, default=21)
    campaign.add_argument("--injection-seed", type=int, default=97)
    campaign.add_argument("--days", type=float, default=2.0)
    campaign.add_argument(
        "--predictor",
        default="ubf",
        help="registry name of the campaign's primary predictor",
    )
    campaign.add_argument(
        "--predictor-spec",
        default=None,
        help="nested predictor spec as JSON (or @file), e.g. "
        '\'{"name": "noisy-or", "members": ["ubf", "hsmm", "trend"]}\'; '
        "overrides --predictor",
    )
    campaign.add_argument("--attack-mtbf", type=float, default=3_600.0)
    campaign.add_argument("--attack-duration", type=float, default=1_200.0)
    campaign.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="run only this named scenario (repeatable)",
    )
    campaign.add_argument(
        "--seed",
        type=int,
        default=None,
        help="master seed (overrides train/eval/injection seeds)",
    )
    campaign.add_argument(
        "--telemetry",
        action="store_true",
        help="instrument every PFM run (spans, events, quality gauges)",
    )
    campaign.add_argument(
        "--telemetry-dir",
        default=None,
        help="write one JSONL trace per scenario into this directory "
        "(implies --telemetry)",
    )
    campaign.add_argument(
        "--backend",
        choices=["serial", "process"],
        default="serial",
        help="fleet backend running the scenario shards",
    )
    campaign.add_argument(
        "--workers", type=int, default=None, help="process-pool size"
    )
    campaign.add_argument(
        "--ledger",
        default=None,
        help="JSONL checkpoint; re-running skips completed scenarios",
    )
    campaign.add_argument(
        "--artifact-store",
        default=None,
        metavar="DIR",
        help="shared trained-model store for the scenario shards",
    )
    campaign.add_argument("--json", action="store_true", help="emit JSON report")
    campaign.set_defaults(func=_cmd_campaign)

    trace = sub.add_parser(
        "trace", help="instrumented closed-loop run -> JSONL trace + metrics"
    )
    trace.add_argument("--train-seed", type=int, default=11)
    trace.add_argument("--eval-seed", type=int, default=21)
    trace.add_argument("--days", type=float, default=2.0)
    trace.add_argument(
        "--out", default="telemetry-out", help="output directory for artifacts"
    )
    trace.set_defaults(func=_cmd_trace)

    taxonomy = sub.add_parser("taxonomy", help="Fig. 3 tree")
    taxonomy.set_defaults(func=_cmd_taxonomy)

    policies = sub.add_parser("policies", help="cost: PFM vs rejuvenation vs none")
    policies.add_argument("--unplanned-cost", type=float, default=10.0)
    policies.add_argument("--planned-cost", type=float, default=1.0)
    policies.set_defaults(func=_cmd_policies)

    lint = sub.add_parser(
        "lint",
        help="pfmlint: determinism & dependability static analysis",
        description="Arguments after 'lint' are passed through to pfmlint "
        "(see `repro lint -- --help`).",
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="pfmlint arguments (paths, --json, --baseline, ...)",
    )
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # argparse.REMAINDER does not capture leading options ("lint --json"),
    # so the lint passthrough is dispatched before the main parser runs.
    if argv and argv[0] == "lint":
        from repro.devtools.lint.cli import main as lint_main

        rest = argv[1:]
        if rest and rest[0] == "--":
            rest = rest[1:]
        return lint_main(rest)
    parser = build_parser()
    args = parser.parse_args(argv)
    code = args.func(args)
    return 0 if code is None else int(code)


if __name__ == "__main__":
    sys.exit(main())
