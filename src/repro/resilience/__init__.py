"""Resilience layer: keeping the PFM stack itself dependable.

The MEA cycle watches the system; this package watches the watcher.  It
provides the policies (retry/backoff, per-step timeouts in simulated
time, per-action circuit breakers), the input firewall
(:class:`GaugeSanitizer`), predictor failover
(:class:`FallbackPredictor`), countermeasure escalation
(:class:`EscalationChain`), and the fault-injection campaign that attacks
the PFM stack to demonstrate graceful degradation
(:mod:`repro.resilience.campaign`).

The campaign module orchestrates closed-loop experiments and therefore
imports :mod:`repro.core`; it is loaded lazily here so the substrate
exports stay import-cycle free.
"""

from repro.resilience.escalation import EscalationChain, default_chain
from repro.resilience.fallback import FallbackPredictor, ScoreResult
from repro.resilience.policies import (
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
    StepTimeout,
)
from repro.resilience.sanitizer import GaugeSanitizer, SanitizedReading

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "RetryPolicy",
    "StepTimeout",
    "GaugeSanitizer",
    "SanitizedReading",
    "FallbackPredictor",
    "ScoreResult",
    "EscalationChain",
    "default_chain",
    # lazily loaded from repro.resilience.campaign:
    "CampaignConfig",
    "CampaignReport",
    "PFMFaultScenario",
    "ScenarioResult",
    "default_scenarios",
    "run_campaign",
]

_CAMPAIGN_EXPORTS = {
    "CampaignConfig",
    "CampaignReport",
    "PFMFaultScenario",
    "ScenarioResult",
    "default_scenarios",
    "run_campaign",
}


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        from repro.resilience import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
