"""PFM-layer fault-injection campaign: attack the manager, measure grace.

The paper argues PFM improves dependability -- but a fault-management
stack is itself software, and a PFM layer that dies on its first NaN
gauge read is a new single point of failure.  This campaign turns the
repo's own fault-injection machinery against the PFM stack
(:mod:`repro.faults.pfm_injectors`) and measures how gracefully the
hardened MEA pipeline degrades:

- **no-PFM baseline** -- the faultload alone, no controller,
- **healthy PFM** -- the controller attached, nothing attacking it,
- **attacked PFM** -- the controller attached while one scenario's
  injectors disrupt monitoring, prediction or actuation.

Graceful degradation means every attacked run (a) keeps the MEA cycle
alive to the end of the horizon with all step failures surfaced as
:class:`~repro.core.mea.StepFailure` records, and (b) ends up no less
available than the no-PFM baseline: a PFM layer under attack may lose
its benefit, but must never become the failure it was built to prevent.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.controller import PFMController, default_repertoire
from repro.core.experiment import DEFAULT_VARIABLES, _default_predictor
from repro.errors import ConfigurationError
from repro.faults.pfm_injectors import (
    ActionFailureInjector,
    FlakyPredictorProxy,
    MonitoringDropoutInjector,
    ObservationCorruptionInjector,
    PFMInjector,
    PredictorFaultInjector,
    PredictorLatencyInjector,
    flaky_repertoire,
)
from repro.prediction.baselines.mset import MSETPredictor
from repro.resilience.sanitizer import GaugeSanitizer
from repro.telecom.dataset import DatasetConfig, prepare_simulation
from repro.telemetry import events as tel_events
from repro.telemetry.exporters import export_jsonl
from repro.telemetry.hub import NULL_HUB, TelemetryHub

#: A-priori plausibility ranges for SCP gauges (paper Sect. 4.3): every
#: monitored variable is nonnegative, and the utilization-like ones are
#: bounded near 1.  Feeds the sanitizer's bound checks so corrupted
#: observations are substituted before they reach a predictor.
GAUGE_BOUNDS: dict[str, tuple[float | None, float | None]] = {
    "cpu_utilization": (0.0, 1.5),
    "db_utilization": (0.0, 1.5),
    "violation_prob": (0.0, 1.0),
}


def _campaign_sanitizer() -> GaugeSanitizer:
    """The input firewall every campaign controller runs behind.

    Only *physically impossible* readings are rejected (negative values,
    utilizations beyond 1): symptoms ARE anomalies, so an aggressive
    spike filter would sanitize away exactly what the predictors watch
    for.
    """
    return GaugeSanitizer(lower_bound=0.0, bounds=dict(GAUGE_BOUNDS))


@dataclass(frozen=True)
class PFMFaultScenario:
    """Which PFM attack surfaces one campaign scenario exercises."""

    name: str
    monitoring_dropout: bool = False
    observation_corruption: bool = False
    predictor_exceptions: bool = False
    predictor_latency: bool = False
    action_failures: bool = False

    @property
    def attacks(self) -> tuple[str, ...]:
        """The attack-surface tags active in this scenario."""
        flags = (
            ("monitoring_dropout", self.monitoring_dropout),
            ("observation_corruption", self.observation_corruption),
            ("predictor_exceptions", self.predictor_exceptions),
            ("predictor_latency", self.predictor_latency),
            ("action_failures", self.action_failures),
        )
        return tuple(tag for tag, active in flags if active)


def default_scenarios() -> list[PFMFaultScenario]:
    """One scenario per attack surface, plus the combined assault."""
    return [
        PFMFaultScenario("monitoring-dropout", monitoring_dropout=True),
        PFMFaultScenario("observation-corruption", observation_corruption=True),
        PFMFaultScenario("predictor-exceptions", predictor_exceptions=True),
        PFMFaultScenario("predictor-latency", predictor_latency=True),
        PFMFaultScenario("action-failures", action_failures=True),
        PFMFaultScenario(
            "all-fronts",
            monitoring_dropout=True,
            observation_corruption=True,
            predictor_exceptions=True,
            predictor_latency=True,
            action_failures=True,
        ),
    ]


@dataclass
class CampaignConfig:
    """Knobs of one campaign run."""

    train_seed: int = 11
    eval_seed: int = 21
    injection_seed: int = 97
    #: Master seed: when set, the three seeds above are derived from it
    #: (``seed``, ``seed + 1000``, ``seed + 2000``) so one ``--seed`` flag
    #: reproduces the whole campaign.
    seed: int | None = None
    horizon: float = 2 * 86_400.0
    variables: list[str] | None = None
    dataset: DatasetConfig | None = None
    scenarios: list[PFMFaultScenario] = field(default_factory=default_scenarios)
    #: Episodic attack process parameters (exponential gaps, fixed bursts).
    attack_mtbf: float = 3_600.0
    attack_duration: float = 1_200.0
    #: Declared predictor latency during latency episodes; anything above
    #: the controller's evaluate budget (= lead time) triggers fallback.
    attack_latency: float = 1_800.0
    #: Telemetry: when enabled, every PFM run gets its own hub; with a
    #: ``telemetry_dir`` each scenario additionally writes a JSONL trace
    #: ``trace_<scenario>.jsonl`` keyed by simulated time.
    telemetry: bool = False
    telemetry_dir: str | None = None

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if not self.scenarios:
            raise ConfigurationError("need at least one scenario")
        if self.seed is not None:
            self.train_seed = self.seed
            self.eval_seed = self.seed + 1000
            self.injection_seed = self.seed + 2000
        if self.telemetry_dir is not None:
            self.telemetry = True

    def seeds(self) -> dict[str, int]:
        """The resolved seeds actually used by this campaign."""
        return {
            "train": self.train_seed,
            "eval": self.eval_seed,
            "injection": self.injection_seed,
        }


@dataclass
class ScenarioResult:
    """One PFM run (healthy or attacked) on the shared faultload."""

    scenario: PFMFaultScenario
    availability: float
    failures: int
    mea_iterations: int
    warnings_raised: int
    actions_taken: int
    attack_episodes: int
    resilience: dict
    # --- telemetry (populated when the campaign ran with telemetry on) --
    warning_episodes: int = 0
    telemetry_events: int = 0
    online_quality: dict = field(default_factory=dict)
    trace_path: str | None = None
    wall_seconds: float = 0.0

    @property
    def step_failures(self) -> int:
        """Total MEA step failures surfaced as StepFailure records."""
        return sum(self.resilience["step_failures"].values())

    @property
    def cycle_survived(self) -> bool:
        """True when the MEA loop kept iterating (never died silently)."""
        return self.mea_iterations > 0


@dataclass
class CampaignReport:
    """The graceful-degradation comparison across all scenarios."""

    baseline_availability: float
    baseline_failures: int
    healthy: ScenarioResult
    attacked: list[ScenarioResult]
    horizon: float
    #: The resolved RNG seeds, echoed so any row can be reproduced.
    seeds: dict = field(default_factory=dict)

    def graceful(self, result: ScenarioResult) -> bool:
        """Did this attacked run degrade gracefully?

        The cycle must have survived to keep producing records, and the
        attacked system must be at least as available as having no PFM at
        all (tiny float tolerance: "no worse" must not fail on a 1e-12
        rounding difference).
        """
        return result.cycle_survived and (
            result.availability >= self.baseline_availability - 1e-9
        )

    @property
    def all_graceful(self) -> bool:
        """True when every attacked scenario degraded gracefully."""
        return all(self.graceful(result) for result in self.attacked)

    def summary(self) -> str:
        """Human-readable campaign table."""
        seeds = " ".join(f"{k}={v}" for k, v in self.seeds.items())
        lines = [
            f"seeds: {seeds}" if seeds else "seeds: (defaults)",
            f"no-PFM baseline: availability={self.baseline_availability:.4f} "
            f"failures={self.baseline_failures}",
            (
                f"{'scenario':<24s} {'avail':>7s} {'fail':>5s} {'warn':>5s} "
                f"{'act':>4s} {'stepfail':>8s} {'fallback':>8s} {'graceful':>8s}"
            ),
        ]
        for result in [self.healthy, *self.attacked]:
            graceful = "-" if result is self.healthy else str(self.graceful(result))
            lines.append(
                f"{result.scenario.name:<24s} {result.availability:7.4f} "
                f"{result.failures:5d} {result.warnings_raised:5d} "
                f"{result.actions_taken:4d} {result.step_failures:8d} "
                f"{result.resilience['fallback_scores']:8d} {graceful:>8s}"
            )
        lines.append(f"all attacked scenarios graceful: {self.all_graceful}")
        for result in [self.healthy, *self.attacked]:
            if result.trace_path:
                lines.append(
                    f"trace [{result.scenario.name}]: {result.trace_path} "
                    f"({result.telemetry_events} events)"
                )
        return "\n".join(lines)

    def to_json(self) -> str:
        """JSON document of the full report (for dashboards / CI artifacts)."""

        def row(result: ScenarioResult) -> dict:
            return {
                "scenario": result.scenario.name,
                "attacks": list(result.scenario.attacks),
                "availability": result.availability,
                "failures": result.failures,
                "mea_iterations": result.mea_iterations,
                "warnings_raised": result.warnings_raised,
                "actions_taken": result.actions_taken,
                "attack_episodes": result.attack_episodes,
                "step_failures": result.step_failures,
                "cycle_survived": result.cycle_survived,
                "graceful": None if result is self.healthy else self.graceful(result),
                "resilience": result.resilience,
                "warning_episodes": result.warning_episodes,
                "telemetry_events": result.telemetry_events,
                "online_quality": result.online_quality,
                "trace_path": result.trace_path,
                "wall_seconds": result.wall_seconds,
            }

        return json.dumps(
            {
                "horizon": self.horizon,
                "seeds": self.seeds,
                "baseline": {
                    "availability": self.baseline_availability,
                    "failures": self.baseline_failures,
                },
                "healthy": row(self.healthy),
                "attacked": [row(result) for result in self.attacked],
                "all_graceful": self.all_graceful,
            },
            indent=2,
        )


def _train_models(
    config: CampaignConfig, variables: list[str]
) -> tuple[object, object, np.ndarray]:
    """Fit the primary (UBF) and secondary (MSET) on one training run."""
    base = config.dataset or DatasetConfig()
    train_config = replace(base, seed=config.train_seed, horizon=config.horizon)
    dataset = prepare_simulation(train_config).run()
    _, x, y_avail, y_fail = dataset.ubf_samples(variables=variables)

    rng = np.random.default_rng(config.train_seed)
    primary = _default_predictor(rng)
    primary.fit(x, y_avail)
    training_scores = primary.score_samples(x)
    primary.calibrate_threshold(training_scores, y_fail)

    secondary = MSETPredictor(
        n_exemplars=16, rng=np.random.default_rng(config.train_seed + 1)
    )
    secondary.fit(x, y_avail)
    secondary_scores = secondary.score_samples(x)
    secondary.calibrate_threshold(secondary_scores, y_fail)
    # Degraded mode must be precision-first: a fallback that warns on
    # half the observations turns the PFM layer itself into the hazard
    # (spurious restarts cost more than the failures they pre-empt).
    secondary.set_threshold(
        max(secondary.threshold, float(np.quantile(secondary_scores, 0.98)))
    )
    return primary, secondary, training_scores


def _build_injectors(
    scenario: PFMFaultScenario,
    config: CampaignConfig,
    controller: PFMController,
    predictor_proxy: FlakyPredictorProxy,
    action_proxies,
    rng: np.random.Generator,
) -> list[PFMInjector]:
    episodic = {"mtbf": config.attack_mtbf, "duration": config.attack_duration}
    injectors: list[PFMInjector] = []
    if scenario.monitoring_dropout:
        injectors.append(
            MonitoringDropoutInjector(controller, rng, mode="nan", **episodic)
        )
    if scenario.observation_corruption:
        injectors.append(
            ObservationCorruptionInjector(controller, rng, **episodic)
        )
    if scenario.predictor_exceptions:
        injectors.append(
            PredictorFaultInjector(predictor_proxy, rng, mode="exception", **episodic)
        )
    if scenario.predictor_latency:
        injectors.append(
            PredictorLatencyInjector(
                predictor_proxy, rng, latency=config.attack_latency, **episodic
            )
        )
    if scenario.action_failures:
        injectors.append(
            ActionFailureInjector(action_proxies, rng, mode="report-failure", **episodic)
        )
    return injectors


def _run_scenario(
    scenario: PFMFaultScenario,
    config: CampaignConfig,
    variables: list[str],
    primary,
    secondary,
    training_scores: np.ndarray,
) -> ScenarioResult:
    """One PFM run on the evaluation faultload under this scenario's attacks."""
    base = config.dataset or DatasetConfig()
    eval_config = replace(base, seed=config.eval_seed, horizon=config.horizon)
    sim = prepare_simulation(eval_config)

    hub = TelemetryHub() if config.telemetry else NULL_HUB
    rng = np.random.default_rng(config.injection_seed)
    predictor_proxy = FlakyPredictorProxy(primary, rng)
    action_proxies = flaky_repertoire(default_repertoire(), rng)
    controller = PFMController(
        system=sim.system,
        predictor=predictor_proxy,
        fallback_predictor=secondary,
        variables=variables,
        lead_time=eval_config.lead_time,
        repertoire=list(action_proxies),
        sanitizer=_campaign_sanitizer(),
        telemetry=hub,
    )
    controller.calibrate_confidence(training_scores)
    injectors = _build_injectors(
        scenario, config, controller, predictor_proxy, action_proxies, rng
    )

    hub.emit(
        tel_events.RUN_START,
        scenario=scenario.name,
        attacks=list(scenario.attacks),
        horizon=config.horizon,
        **{f"{k}_seed": v for k, v in config.seeds().items()},
    )
    wall_start = time.perf_counter()
    controller.start()
    for injector in injectors:
        injector.start(sim.system.engine)
    dataset = sim.run()
    wall_seconds = time.perf_counter() - wall_start
    for injector in injectors:
        injector.stop()
    controller.finalize_telemetry()

    trace_path = None
    if config.telemetry_dir is not None:
        os.makedirs(config.telemetry_dir, exist_ok=True)
        trace_path = os.path.join(
            config.telemetry_dir, f"trace_{scenario.name}.jsonl"
        )
        export_jsonl(hub, trace_path)

    return ScenarioResult(
        scenario=scenario,
        availability=dataset.system.sla.overall_availability(),
        failures=len(dataset.failure_log),
        mea_iterations=len(controller.mea.history),
        warnings_raised=controller.mea.warnings_raised,
        actions_taken=controller.mea.actions_taken,
        attack_episodes=sum(injector.episodes for injector in injectors),
        resilience=controller.resilience_summary(),
        warning_episodes=len(controller.warnings),
        telemetry_events=len(hub.events),
        online_quality=controller.quality.summary() if config.telemetry else {},
        trace_path=trace_path,
        wall_seconds=wall_seconds,
    )


def run_campaign(
    config: CampaignConfig | None = None,
    trained: tuple[object, object, np.ndarray] | None = None,
) -> CampaignReport:
    """Run the full graceful-degradation campaign.

    Trains once, then replays the identical evaluation faultload as a
    no-PFM baseline, a healthy-PFM run, and one attacked run per
    scenario in ``config.scenarios``.  Pass ``trained = (primary,
    secondary, training_scores)`` (the tuple :func:`_train_models`
    returns) to skip training -- used by the overhead benchmark to
    compare otherwise-identical runs.
    """
    config = config or CampaignConfig()
    variables = config.variables or list(DEFAULT_VARIABLES)
    if trained is not None:
        primary, secondary, training_scores = trained
    else:
        primary, secondary, training_scores = _train_models(config, variables)

    base = config.dataset or DatasetConfig()
    eval_config = replace(base, seed=config.eval_seed, horizon=config.horizon)
    baseline = prepare_simulation(eval_config).run()

    healthy = _run_scenario(
        PFMFaultScenario("healthy-pfm"),
        config,
        variables,
        primary,
        secondary,
        training_scores,
    )
    attacked = [
        _run_scenario(scenario, config, variables, primary, secondary, training_scores)
        for scenario in config.scenarios
    ]
    return CampaignReport(
        baseline_availability=baseline.system.sla.overall_availability(),
        baseline_failures=len(baseline.failure_log),
        healthy=healthy,
        attacked=attacked,
        horizon=config.horizon,
        seeds=config.seeds(),
    )
