"""PFM-layer fault-injection campaign: attack the manager, measure grace.

The paper argues PFM improves dependability -- but a fault-management
stack is itself software, and a PFM layer that dies on its first NaN
gauge read is a new single point of failure.  This campaign turns the
repo's own fault-injection machinery against the PFM stack
(:mod:`repro.faults.pfm_injectors`) and measures how gracefully the
hardened MEA pipeline degrades:

- **no-PFM baseline** -- the faultload alone, no controller,
- **healthy PFM** -- the controller attached, nothing attacking it,
- **attacked PFM** -- the controller attached while one scenario's
  injectors disrupt monitoring, prediction or actuation.

Graceful degradation means every attacked run (a) keeps the MEA cycle
alive to the end of the horizon with all step failures surfaced as
:class:`~repro.core.mea.StepFailure` records, and (b) ends up no less
available than the no-PFM baseline: a PFM layer under attack may lose
its benefit, but must never become the failure it was built to prevent.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.controller import PFMController, default_repertoire
from repro.core.experiment import DEFAULT_VARIABLES
from repro.errors import ConfigurationError
from repro.fleet.spec import RunResult, RunSpec
from repro.faults.pfm_injectors import (
    ActionFailureInjector,
    FlakyPredictorProxy,
    MonitoringDropoutInjector,
    ObservationCorruptionInjector,
    PFMInjector,
    PredictorFaultInjector,
    PredictorLatencyInjector,
    flaky_repertoire,
)
from repro.prediction.arbitration import NoisyOrArbitrator
from repro.prediction.baselines.mset import MSETPredictor
from repro.prediction.metrics import ContingencyTable, auc
from repro.prediction.registry import make_predictor, normalize_predictor_spec
from repro.prediction.thresholds import max_f_threshold
from repro.resilience.sanitizer import GaugeSanitizer
from repro.telecom.dataset import DatasetConfig, prepare_simulation
from repro.telemetry import events as tel_events
from repro.telemetry.exporters import export_jsonl
from repro.telemetry.hub import NULL_HUB, TelemetryHub
from repro.telemetry.tracing import announce_shard_hub

#: Fleet scenario names of the two non-attacked campaign runs.
NO_PFM = "no-pfm"
HEALTHY_PFM = "healthy-pfm"

#: A-priori plausibility ranges for SCP gauges (paper Sect. 4.3): every
#: monitored variable is nonnegative, and the utilization-like ones are
#: bounded near 1.  Feeds the sanitizer's bound checks so corrupted
#: observations are substituted before they reach a predictor.
GAUGE_BOUNDS: dict[str, tuple[float | None, float | None]] = {
    "cpu_utilization": (0.0, 1.5),
    "db_utilization": (0.0, 1.5),
    "violation_prob": (0.0, 1.0),
}


def _campaign_sanitizer() -> GaugeSanitizer:
    """The input firewall every campaign controller runs behind.

    Only *physically impossible* readings are rejected (negative values,
    utilizations beyond 1): symptoms ARE anomalies, so an aggressive
    spike filter would sanitize away exactly what the predictors watch
    for.
    """
    return GaugeSanitizer(lower_bound=0.0, bounds=dict(GAUGE_BOUNDS))


@dataclass(frozen=True)
class PFMFaultScenario:
    """Which PFM attack surfaces one campaign scenario exercises."""

    name: str
    monitoring_dropout: bool = False
    observation_corruption: bool = False
    predictor_exceptions: bool = False
    predictor_latency: bool = False
    action_failures: bool = False

    @property
    def attacks(self) -> tuple[str, ...]:
        """The attack-surface tags active in this scenario."""
        flags = (
            ("monitoring_dropout", self.monitoring_dropout),
            ("observation_corruption", self.observation_corruption),
            ("predictor_exceptions", self.predictor_exceptions),
            ("predictor_latency", self.predictor_latency),
            ("action_failures", self.action_failures),
        )
        return tuple(tag for tag, active in flags if active)


def default_scenarios() -> list[PFMFaultScenario]:
    """One scenario per attack surface, plus the combined assault."""
    return [
        PFMFaultScenario("monitoring-dropout", monitoring_dropout=True),
        PFMFaultScenario("observation-corruption", observation_corruption=True),
        PFMFaultScenario("predictor-exceptions", predictor_exceptions=True),
        PFMFaultScenario("predictor-latency", predictor_latency=True),
        PFMFaultScenario("action-failures", action_failures=True),
        PFMFaultScenario(
            "all-fronts",
            monitoring_dropout=True,
            observation_corruption=True,
            predictor_exceptions=True,
            predictor_latency=True,
            action_failures=True,
        ),
    ]


@dataclass
class CampaignConfig:
    """Knobs of one campaign run."""

    train_seed: int = 11
    eval_seed: int = 21
    injection_seed: int = 97
    #: Master seed: when set, the three seeds above are derived from it
    #: (``seed``, ``seed + 1000``, ``seed + 2000``) so one ``--seed`` flag
    #: reproduces the whole campaign.
    seed: int | None = None
    horizon: float = 2 * 86_400.0
    variables: list[str] | None = None
    dataset: DatasetConfig | None = None
    #: Primary-predictor spec: a registry name (``"ubf"``) or a nested
    #: ensemble dict (``{"name": "noisy-or", "members": [...]}``); see
    #: :func:`repro.prediction.registry.normalize_predictor_spec`.  The
    #: normalized form is stored, so two configs naming the same panel
    #: compare (and cache) equal.
    predictor: str | dict = "ubf"
    scenarios: list[PFMFaultScenario] = field(default_factory=default_scenarios)
    #: Episodic attack process parameters (exponential gaps, fixed bursts).
    attack_mtbf: float = 3_600.0
    attack_duration: float = 1_200.0
    #: Declared predictor latency during latency episodes; anything above
    #: the controller's evaluate budget (= lead time) triggers fallback.
    attack_latency: float = 1_800.0
    #: Telemetry: when enabled, every PFM run gets its own hub; with a
    #: ``telemetry_dir`` each scenario additionally writes a JSONL trace
    #: ``trace_<scenario>.jsonl`` keyed by simulated time.
    telemetry: bool = False
    telemetry_dir: str | None = None

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if not self.scenarios:
            raise ConfigurationError("need at least one scenario")
        if self.seed is not None:
            self.train_seed = self.seed
            self.eval_seed = self.seed + 1000
            self.injection_seed = self.seed + 2000
        self.predictor = normalize_predictor_spec(self.predictor)
        if self.telemetry_dir is not None:
            self.telemetry = True

    def seeds(self) -> dict[str, int]:
        """The resolved seeds actually used by this campaign."""
        return {
            "train": self.train_seed,
            "eval": self.eval_seed,
            "injection": self.injection_seed,
        }


@dataclass
class ScenarioResult:
    """One PFM run (healthy or attacked) on the shared faultload."""

    scenario: PFMFaultScenario
    availability: float
    failures: int
    mea_iterations: int
    warnings_raised: int
    actions_taken: int
    attack_episodes: int
    resilience: dict
    # --- telemetry (populated when the campaign ran with telemetry on) --
    warning_episodes: int = 0
    telemetry_events: int = 0
    online_quality: dict = field(default_factory=dict)
    trace_path: str | None = None
    metrics_state: list | None = None
    wall_seconds: float = 0.0
    #: Training-time quality comparison of the primary (fused and, for an
    #: ensemble, per member) against the secondary — see
    #: :func:`_predictor_quality`.  Identical across rows of one campaign
    #: (the models are trained once and shared).
    predictor_quality: dict = field(default_factory=dict)

    @property
    def step_failures(self) -> int:
        """Total MEA step failures surfaced as StepFailure records."""
        return sum(self.resilience["step_failures"].values())

    @property
    def cycle_survived(self) -> bool:
        """True when the MEA loop kept iterating (never died silently)."""
        return self.mea_iterations > 0


@dataclass
class CampaignReport:
    """The graceful-degradation comparison across all scenarios."""

    baseline_availability: float
    baseline_failures: int
    healthy: ScenarioResult
    attacked: list[ScenarioResult]
    horizon: float
    #: The resolved RNG seeds, echoed so any row can be reproduced.
    seeds: dict = field(default_factory=dict)
    #: The normalized primary-predictor spec the campaign trained.
    predictor: dict = field(default_factory=dict)

    @property
    def predictor_quality(self) -> dict:
        """Training-grid quality comparison (shared by every PFM row)."""
        return self.healthy.predictor_quality

    def graceful(self, result: ScenarioResult) -> bool:
        """Did this attacked run degrade gracefully?

        The cycle must have survived to keep producing records, and the
        attacked system must be at least as available as having no PFM at
        all (tiny float tolerance: "no worse" must not fail on a 1e-12
        rounding difference).
        """
        return result.cycle_survived and (
            result.availability >= self.baseline_availability - 1e-9
        )

    @property
    def all_graceful(self) -> bool:
        """True when every attacked scenario degraded gracefully."""
        return all(self.graceful(result) for result in self.attacked)

    def summary(self) -> str:
        """Human-readable campaign table."""
        seeds = " ".join(f"{k}={v}" for k, v in self.seeds.items())
        lines = [
            f"seeds: {seeds}" if seeds else "seeds: (defaults)",
            f"no-PFM baseline: availability={self.baseline_availability:.4f} "
            f"failures={self.baseline_failures}",
            (
                f"{'scenario':<24s} {'avail':>7s} {'fail':>5s} {'warn':>5s} "
                f"{'act':>4s} {'stepfail':>8s} {'fallback':>8s} {'graceful':>8s}"
            ),
        ]
        for result in [self.healthy, *self.attacked]:
            graceful = "-" if result is self.healthy else str(self.graceful(result))
            lines.append(
                f"{result.scenario.name:<24s} {result.availability:7.4f} "
                f"{result.failures:5d} {result.warnings_raised:5d} "
                f"{result.actions_taken:4d} {result.step_failures:8d} "
                f"{result.resilience['fallback_scores']:8d} {graceful:>8s}"
            )
        lines.append(f"all attacked scenarios graceful: {self.all_graceful}")
        quality = self.predictor_quality
        if quality:
            for role in ("primary", "secondary"):
                entry = quality.get(role)
                if not entry:
                    continue
                area = entry["auc"]
                lines.append(
                    f"{role} [{entry['name']}]: "
                    f"auc={'n/a' if area is None else format(area, '.4f')} "
                    f"precision={entry['precision']:.3f} "
                    f"recall={entry['recall']:.3f}"
                )
            for name, entry in sorted(quality.get("members", {}).items()):
                area = entry["auc"]
                lines.append(
                    f"  member {name} (c={entry['criticality']:.2f}): "
                    f"auc={'n/a' if area is None else format(area, '.4f')} "
                    f"precision={entry['precision']:.3f} "
                    f"recall={entry['recall']:.3f}"
                )
            best = quality.get("best_single")
            margin = quality.get("fused_minus_best_single_auc")
            if best is not None and margin is not None:
                lines.append(
                    f"fused vs best single ({best['name']}): "
                    f"auc margin {margin:+.4f}"
                )
        for result in [self.healthy, *self.attacked]:
            if result.trace_path:
                lines.append(
                    f"trace [{result.scenario.name}]: {result.trace_path} "
                    f"({result.telemetry_events} events)"
                )
        return "\n".join(lines)

    def to_json(self) -> str:
        """JSON document of the full report (for dashboards / CI artifacts).

        Scenario rows are sorted by scenario name and every object's keys
        are sorted, so two runs of the same campaign — regardless of the
        order scenarios were configured or finished in — serialize to the
        identical document.
        """

        def row(result: ScenarioResult) -> dict:
            return {
                "scenario": result.scenario.name,
                "attacks": list(result.scenario.attacks),
                "availability": result.availability,
                "failures": result.failures,
                "mea_iterations": result.mea_iterations,
                "warnings_raised": result.warnings_raised,
                "actions_taken": result.actions_taken,
                "attack_episodes": result.attack_episodes,
                "step_failures": result.step_failures,
                "cycle_survived": result.cycle_survived,
                "graceful": None if result is self.healthy else self.graceful(result),
                "resilience": result.resilience,
                "warning_episodes": result.warning_episodes,
                "telemetry_events": result.telemetry_events,
                "online_quality": result.online_quality,
                "trace_path": result.trace_path,
                "wall_seconds": result.wall_seconds,
            }

        return json.dumps(
            {
                "horizon": self.horizon,
                "seeds": self.seeds,
                "predictor": self.predictor or None,
                "predictor_quality": self.predictor_quality or None,
                "baseline": {
                    "availability": self.baseline_availability,
                    "failures": self.baseline_failures,
                },
                "healthy": row(self.healthy),
                "attacked": [
                    row(result)
                    for result in sorted(
                        self.attacked, key=lambda r: r.scenario.name
                    )
                ],
                "all_graceful": self.all_graceful,
            },
            indent=2,
            sort_keys=True,
        )


def _train_models(
    config: CampaignConfig, variables: list[str]
) -> tuple[object, object, np.ndarray, dict]:
    """Fit the primary (per ``config.predictor``) and secondary (MSET).

    Returns ``(primary, secondary, training_scores, quality)`` where
    ``quality`` is the :func:`_predictor_quality` comparison computed on
    the training grid (the only place all members, the fused score and
    the secondary are scored on the same aligned rows).
    """
    base = config.dataset or DatasetConfig()
    train_config = replace(base, seed=config.train_seed, horizon=config.horizon)
    dataset = prepare_simulation(train_config).run()

    rng = np.random.default_rng(config.train_seed)
    primary = make_predictor(config.predictor, rng=rng)
    data = dataset.training_data(
        variables=variables,
        consumes=getattr(primary, "consumes", frozenset({"samples"})),
        rng=np.random.default_rng(config.train_seed + 917),
    )
    primary.fit(data)
    training_scores = primary.score_batch(data.batch())
    primary.calibrate_threshold(training_scores, data.labels)

    secondary = MSETPredictor(
        n_exemplars=16, rng=np.random.default_rng(config.train_seed + 1)
    )
    secondary.fit_samples(data.x, data.y)
    secondary_scores = secondary.score_samples(data.x)
    secondary.calibrate_threshold(secondary_scores, data.labels)
    # Degraded mode must be precision-first: a fallback that warns on
    # half the observations turns the PFM layer itself into the hazard
    # (spurious restarts cost more than the failures they pre-empt).
    secondary.set_threshold(
        max(secondary.threshold, float(np.quantile(secondary_scores, 0.98)))
    )
    quality = _predictor_quality(
        primary, secondary, data, training_scores, secondary_scores
    )
    return primary, secondary, training_scores, quality


def _predictor_quality(
    primary,
    secondary,
    data,
    training_scores: np.ndarray,
    secondary_scores: np.ndarray,
) -> dict:
    """Fused-vs-single quality comparison on the training grid.

    One row (precision / recall / AUC / F at the operating threshold) for
    the primary and the MSET secondary; when the primary is a Noisy-OR
    panel, one row per member (scored on its calibrated activation
    probabilities at that member's max-F threshold) plus the best single
    learner and the fused-minus-best AUC margin — the number that says
    whether arbitration earned its keep.
    """
    labels = np.asarray(data.labels, dtype=bool)

    def row(scores, threshold=None) -> dict:
        scores = np.asarray(scores, dtype=float).ravel()
        if threshold is None:
            threshold, _ = max_f_threshold(scores, labels)
        table = ContingencyTable.from_scores(scores, labels, float(threshold))
        try:
            area = float(auc(scores, labels))
        except ConfigurationError:
            area = None  # single-class training grid: AUC undefined
        return {
            "auc": area,
            "f_measure": table.f_measure,
            "precision": table.precision,
            "recall": table.recall,
            "threshold": float(threshold),
        }

    primary_name = getattr(getattr(primary, "info", None), "name", "primary")
    quality: dict = {
        "primary": {"name": primary_name, **row(training_scores, primary.threshold)},
        "secondary": {"name": "mset", **row(secondary_scores, secondary.threshold)},
    }
    if isinstance(primary, NoisyOrArbitrator):
        probabilities = primary.member_probabilities(data.batch())
        members = {}
        for j, member in enumerate(primary.members):
            members[member.name] = {
                "criticality": float(member.criticality),
                **row(probabilities[:, j]),
            }
        quality["members"] = members
        candidates = [
            (m["auc"] if m["auc"] is not None else 0.0, name)
            for name, m in members.items()
        ]
        candidates.append(
            (
                quality["secondary"]["auc"]
                if quality["secondary"]["auc"] is not None
                else 0.0,
                "mset",
            )
        )
        best_auc, best_name = max(candidates)
        fused_auc = quality["primary"]["auc"]
        quality["best_single"] = {"auc": best_auc, "name": best_name}
        quality["fused_minus_best_single_auc"] = (
            fused_auc - best_auc if fused_auc is not None else None
        )
    return quality


def _build_injectors(
    scenario: PFMFaultScenario,
    config: CampaignConfig,
    controller: PFMController,
    predictor_proxy: FlakyPredictorProxy,
    action_proxies,
    rng: np.random.Generator,
) -> list[PFMInjector]:
    episodic = {"mtbf": config.attack_mtbf, "duration": config.attack_duration}
    injectors: list[PFMInjector] = []
    if scenario.monitoring_dropout:
        injectors.append(
            MonitoringDropoutInjector(controller, rng, mode="nan", **episodic)
        )
    if scenario.observation_corruption:
        injectors.append(
            ObservationCorruptionInjector(controller, rng, **episodic)
        )
    if scenario.predictor_exceptions:
        injectors.append(
            PredictorFaultInjector(predictor_proxy, rng, mode="exception", **episodic)
        )
    if scenario.predictor_latency:
        injectors.append(
            PredictorLatencyInjector(
                predictor_proxy, rng, latency=config.attack_latency, **episodic
            )
        )
    if scenario.action_failures:
        injectors.append(
            ActionFailureInjector(action_proxies, rng, mode="report-failure", **episodic)
        )
    return injectors


def _run_scenario(
    scenario: PFMFaultScenario,
    config: CampaignConfig,
    variables: list[str],
    primary,
    secondary,
    training_scores: np.ndarray,
    quality: dict | None = None,
) -> ScenarioResult:
    """One PFM run on the evaluation faultload under this scenario's attacks."""
    base = config.dataset or DatasetConfig()
    eval_config = replace(base, seed=config.eval_seed, horizon=config.horizon)
    sim = prepare_simulation(eval_config)

    hub = TelemetryHub() if config.telemetry else NULL_HUB
    announce_shard_hub(hub)
    rng = np.random.default_rng(config.injection_seed)
    predictor_proxy = FlakyPredictorProxy(primary, rng)
    action_proxies = flaky_repertoire(default_repertoire(), rng)
    controller = PFMController(
        system=sim.system,
        predictor=predictor_proxy,
        fallback_predictor=secondary,
        variables=variables,
        lead_time=eval_config.lead_time,
        repertoire=list(action_proxies),
        sanitizer=_campaign_sanitizer(),
        telemetry=hub,
    )
    controller.calibrate_confidence(training_scores)
    injectors = _build_injectors(
        scenario, config, controller, predictor_proxy, action_proxies, rng
    )

    hub.emit(
        tel_events.RUN_START,
        scenario=scenario.name,
        attacks=list(scenario.attacks),
        horizon=config.horizon,
        **{f"{k}_seed": v for k, v in config.seeds().items()},
    )
    wall_start = time.perf_counter()
    controller.start()
    for injector in injectors:
        injector.start(sim.system.engine)
    dataset = sim.run()
    wall_seconds = time.perf_counter() - wall_start
    for injector in injectors:
        injector.stop()
    controller.finalize_telemetry()

    trace_path = None
    if config.telemetry_dir is not None:
        os.makedirs(config.telemetry_dir, exist_ok=True)
        trace_path = os.path.join(
            config.telemetry_dir, f"trace_{scenario.name}.jsonl"
        )
        export_jsonl(hub, trace_path)

    return ScenarioResult(
        scenario=scenario,
        availability=dataset.system.sla.overall_availability(),
        failures=len(dataset.failure_log),
        mea_iterations=len(controller.mea.history),
        warnings_raised=controller.mea.warnings_raised,
        actions_taken=controller.mea.actions_taken,
        attack_episodes=sum(injector.episodes for injector in injectors),
        resilience=controller.resilience_summary(),
        warning_episodes=len(controller.warnings),
        telemetry_events=len(hub.events),
        online_quality=controller.quality.summary() if config.telemetry else {},
        trace_path=trace_path,
        metrics_state=hub.registry.to_state() if config.telemetry else None,
        wall_seconds=wall_seconds,
        predictor_quality=quality or {},
    )


# ----------------------------------------------------------------------
# Fleet integration: campaign scenarios as RunSpec shards
# ----------------------------------------------------------------------

#: Default episodic-attack knobs, mirrored from :class:`CampaignConfig`
#: so a bare spec (no options) reproduces the default campaign exactly.
_ATTACK_DEFAULTS = {
    "attack_mtbf": 3_600.0,
    "attack_duration": 1_200.0,
    "attack_latency": 1_800.0,
}

_ATTACK_TAGS = (
    "monitoring_dropout",
    "observation_corruption",
    "predictor_exceptions",
    "predictor_latency",
    "action_failures",
)


def known_scenario_names() -> list[str]:
    """Every campaign scenario the fleet can run by name alone."""
    return [NO_PFM, HEALTHY_PFM] + [s.name for s in default_scenarios()]


def knows_scenario(spec: RunSpec) -> bool:
    """Can :func:`run_scenario_spec` execute this spec?

    True for the built-in scenario names, and for any custom-named spec
    that carries its attack surfaces in ``options["attacks"]``.
    """
    return (
        spec.scenario in known_scenario_names()
        or spec.option("attacks") is not None
    )


def _scenario_from_spec(spec: RunSpec) -> PFMFaultScenario:
    """Reconstruct the attack scenario a spec describes.

    Attack surfaces travel inside the spec (``options["attacks"]``), so a
    pool worker can rebuild any scenario without a shared registry; specs
    naming a default scenario work without options.
    """
    if spec.scenario == HEALTHY_PFM:
        return PFMFaultScenario(HEALTHY_PFM)
    attacks = spec.option("attacks")
    if attacks is not None:
        unknown = [tag for tag in attacks if tag not in _ATTACK_TAGS]
        if unknown:
            raise ConfigurationError(
                f"unknown attack surfaces {unknown}; valid: {list(_ATTACK_TAGS)}"
            )
        return PFMFaultScenario(spec.scenario, **{tag: True for tag in attacks})
    for scenario in default_scenarios():
        if scenario.name == spec.scenario:
            return scenario
    raise ConfigurationError(
        f"unknown campaign scenario {spec.scenario!r}; pass its attack "
        f"surfaces via options['attacks'] or use one of {known_scenario_names()}"
    )


def _config_from_spec(spec: RunSpec) -> CampaignConfig:
    """The CampaignConfig one shard runs under (seeds resolved by the spec)."""
    seeds = spec.seeds()
    dataset = spec.option("dataset")
    if isinstance(dataset, dict):
        dataset = DatasetConfig(**dataset)
    return CampaignConfig(
        train_seed=seeds["train"],
        eval_seed=seeds["eval"],
        injection_seed=seeds["injection"],
        horizon=spec.horizon,
        variables=list(spec.variables) if spec.variables is not None else None,
        dataset=dataset,
        attack_mtbf=spec.option("attack_mtbf", _ATTACK_DEFAULTS["attack_mtbf"]),
        attack_duration=spec.option(
            "attack_duration", _ATTACK_DEFAULTS["attack_duration"]
        ),
        attack_latency=spec.option(
            "attack_latency", _ATTACK_DEFAULTS["attack_latency"]
        ),
        predictor=spec.option("predictor") or "ubf",
        telemetry=spec.telemetry,
        telemetry_dir=spec.option("telemetry_dir"),
    )


def _train_key(spec: RunSpec) -> tuple:
    """Cache key of the campaign's trained-model pair for this spec.

    Only fields that influence training participate, so every shard of
    one campaign (healthy and attacked alike) shares a single entry in
    the per-process training cache — the serial backend then trains once,
    exactly like the pre-fleet campaign did.
    """
    return (
        "campaign",
        spec.seeds()["train"],
        spec.horizon,
        spec.variables,
        repr(spec.option("dataset")),
        repr(spec.option("predictor")),
    )


def training_plan_for_spec(spec: RunSpec):
    """``(train_key, builder)`` for one campaign shard (``None``: no-pfm).

    The pair :func:`run_scenario_spec` hands to the shard training
    cache, exposed so the fleet's artifact-store pre-warm pass
    (:func:`repro.fleet.artifacts.prewarm_training`) can train each
    campaign configuration exactly once before fan-out.
    """
    if spec.scenario == NO_PFM:
        return None  # the baseline replays the faultload untrained
    config = _config_from_spec(spec)
    variables = config.variables or list(DEFAULT_VARIABLES)

    def _build():
        return _train_models(config, variables)

    return _train_key(spec), _build


def campaign_specs(config: CampaignConfig | None = None) -> list[RunSpec]:
    """The campaign as a fleet grid: baseline, healthy, one spec per attack.

    Order is stable: ``[no-pfm, healthy-pfm, *config.scenarios]``.
    """
    config = config or CampaignConfig()
    options: dict[str, object] = {
        "attack_mtbf": config.attack_mtbf,
        "attack_duration": config.attack_duration,
        "attack_latency": config.attack_latency,
    }
    if config.dataset is not None:
        options["dataset"] = config.dataset
    if config.predictor != {"name": "ubf"}:
        # Only a non-default panel rides in the spec: bare-ubf campaigns
        # keep their historical shard keys (and ledger identities).
        options["predictor"] = config.predictor
    if config.telemetry_dir is not None:
        options["telemetry_dir"] = config.telemetry_dir
    common = {
        "seed": config.seed if config.seed is not None else config.train_seed,
        "train_seed": config.train_seed,
        "eval_seed": config.eval_seed,
        "injection_seed": config.injection_seed,
        "horizon": config.horizon,
        "variables": tuple(config.variables) if config.variables else None,
        "telemetry": config.telemetry,
    }
    specs = [
        RunSpec(scenario=NO_PFM, options=options, **common),
        RunSpec(scenario=HEALTHY_PFM, options=options, **common),
    ]
    for scenario in config.scenarios:
        specs.append(
            RunSpec(
                scenario=scenario.name,
                options={**options, "attacks": scenario.attacks},
                **common,
            )
        )
    return specs


def run_scenario_spec(spec: RunSpec) -> RunResult:
    """Execute one campaign shard (the fleet's entry point).

    ``no-pfm`` replays the evaluation faultload with no controller at
    all; every other scenario trains (through the per-process cache) and
    runs the attacked / healthy PFM comparison.
    """
    config = _config_from_spec(spec)
    if spec.scenario == NO_PFM:
        base = config.dataset or DatasetConfig()
        eval_config = replace(base, seed=config.eval_seed, horizon=config.horizon)
        wall_start = time.perf_counter()
        dataset = prepare_simulation(eval_config).run()
        wall_seconds = time.perf_counter() - wall_start
        return RunResult(
            spec=spec,
            availability=dataset.system.sla.overall_availability(),
            failures=len(dataset.failure_log),
            wall_seconds=wall_seconds,
        )

    from repro.fleet.shards import cached_training

    variables = config.variables or list(DEFAULT_VARIABLES)
    trained = cached_training(*training_plan_for_spec(spec))
    scenario = _scenario_from_spec(spec)
    result = _run_scenario(scenario, config, variables, *trained)
    return RunResult(
        spec=spec,
        availability=result.availability,
        failures=result.failures,
        mea_iterations=result.mea_iterations,
        warnings_raised=result.warnings_raised,
        warning_episodes=result.warning_episodes,
        actions_taken=result.actions_taken,
        attack_episodes=result.attack_episodes,
        resilience=result.resilience,
        online_quality=result.online_quality,
        telemetry_events=result.telemetry_events,
        metrics_state=result.metrics_state,
        artifacts=_shard_artifacts(result),
        wall_seconds=result.wall_seconds,
    )


def _shard_artifacts(result: ScenarioResult) -> dict:
    """JSON-able extras a campaign shard carries back through the fleet."""
    artifacts: dict = {}
    if result.trace_path:
        artifacts["trace_path"] = result.trace_path
    if result.predictor_quality:
        artifacts["predictor_quality"] = result.predictor_quality
    return artifacts


def _scenario_result(scenario: PFMFaultScenario, result: RunResult) -> ScenarioResult:
    """Fold a fleet shard result back into the campaign's report row."""
    return ScenarioResult(
        scenario=scenario,
        availability=result.availability,
        failures=result.failures,
        mea_iterations=result.mea_iterations,
        warnings_raised=result.warnings_raised,
        actions_taken=result.actions_taken,
        attack_episodes=result.attack_episodes,
        resilience=result.resilience,
        warning_episodes=result.warning_episodes,
        telemetry_events=result.telemetry_events,
        online_quality=result.online_quality,
        trace_path=result.artifacts.get("trace_path"),
        metrics_state=result.metrics_state,
        wall_seconds=result.wall_seconds,
        predictor_quality=result.artifacts.get("predictor_quality") or {},
    )


def run_campaign(
    config: CampaignConfig | None = None,
    trained: tuple | None = None,
    *,
    backend: str = "serial",
    workers: int | None = None,
    ledger_path: str | None = None,
    artifact_store=None,
    progress=None,
) -> CampaignReport:
    """Run the full graceful-degradation campaign.

    The campaign now rides the fleet runner: every scenario (the no-PFM
    baseline, healthy PFM, and each attacked run) is one self-contained
    :class:`~repro.fleet.spec.RunSpec` shard.  The default ``serial``
    backend trains once per process (via the shard training cache) and
    reproduces the pre-fleet campaign bit-for-bit; ``backend="process"``
    fans scenarios across workers, and ``ledger_path`` checkpoints
    completed scenarios for resume.

    Pass ``trained = (primary, secondary, training_scores, quality)``
    (the tuple :func:`_train_models` returns) to skip training -- used by
    the overhead benchmark to compare otherwise-identical runs.  Injected
    models force the serial backend (they cannot cross process
    boundaries into a fresh worker's cache).
    """
    config = config or CampaignConfig()
    specs = campaign_specs(config)
    if trained is not None:
        from repro.fleet.shards import seed_training_cache

        backend = "serial"
        seed_training_cache(_train_key(specs[1]), trained)

    from repro.fleet.runner import run_fleet

    fleet = run_fleet(
        specs,
        backend=backend,
        workers=workers,
        ledger_path=ledger_path,
        artifact_store=artifact_store,
        progress=progress,
    )
    baseline = fleet.result_for(specs[0])
    healthy = _scenario_result(
        PFMFaultScenario(HEALTHY_PFM), fleet.result_for(specs[1])
    )
    attacked = [
        _scenario_result(scenario, fleet.result_for(spec))
        for scenario, spec in zip(config.scenarios, specs[2:], strict=True)
    ]
    return CampaignReport(
        baseline_availability=baseline.availability,
        baseline_failures=baseline.failures,
        healthy=healthy,
        attacked=attacked,
        horizon=config.horizon,
        seeds=config.seeds(),
        predictor=dict(config.predictor),
    )
