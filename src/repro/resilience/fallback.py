"""Predictor fallback: keep Evaluate alive when the primary model faults.

Aupy et al. (PAPERS.md) show prediction-driven policies must remain
correct when the predictor itself is unreliable; the practical corollary
is that a controller whose only predictor raises exceptions degrades to
"no PFM".  :class:`FallbackPredictor` pairs the trained primary with a
cheaper secondary (typically a :mod:`repro.prediction.baselines` model)
behind a circuit breaker: repeated primary faults switch scoring to the
secondary, and after a cooldown the primary is probed again.

Each predictor keeps its *own* threshold -- scores from different model
families are not on a common scale, so the warning decision is always
made against the threshold of the model that produced the score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.resilience.policies import BreakerState, CircuitBreaker
from repro.telemetry import events as tel_events
from repro.telemetry.hub import NULL_HUB, TelemetryHub


@dataclass(frozen=True)
class ScoreResult:
    """One scoring decision, tagged with the model that produced it."""

    score: float
    warning: bool
    source: str  # "primary" | "secondary" | "none"
    degraded: bool  # True when the primary could not be used


class FallbackPredictor:
    """Primary/secondary symptom-predictor pair with automatic failover.

    Parameters
    ----------
    primary:
        The trained production predictor (duck-typed: needs
        ``score_samples`` and ``threshold``).
    secondary:
        The fallback model, already fitted and threshold-calibrated.
        ``None`` means "no fallback": primary faults yield a null score
        with ``warning=False`` (inert, but alive).
    clock:
        Zero-argument callable returning the current simulated time.
    failure_threshold / cooldown:
        Circuit-breaker parameters for the primary (see
        :class:`~repro.resilience.policies.CircuitBreaker`).
    latency_budget:
        Optional simulated-seconds budget: a primary declaring
        ``simulated_latency`` above it counts as a fault (a prediction
        slower than the lead time is useless).
    telemetry:
        Telemetry hub receiving ``evaluate.score`` spans, predictor-fault
        events and the primary breaker's transitions (disabled default).
    """

    def __init__(
        self,
        primary,
        secondary=None,
        clock: Callable[[], float] = lambda: 0.0,
        failure_threshold: int = 3,
        cooldown: float = 1_800.0,
        latency_budget: float | None = None,
        telemetry: TelemetryHub = NULL_HUB,
    ) -> None:
        self.primary = primary
        self.secondary = secondary
        self.clock = clock
        self.latency_budget = latency_budget
        self.telemetry = telemetry
        self.breaker = CircuitBreaker(
            name="primary-predictor",
            failure_threshold=failure_threshold,
            cooldown=cooldown,
            on_transition=self._breaker_transition,
        )
        self.primary_faults = 0
        self.secondary_scores = 0
        self.null_scores = 0

    def _breaker_transition(
        self, name: str, old: str, new: str, now: float
    ) -> None:
        self.telemetry.emit(
            tel_events.BREAKER_TRANSITION, breaker=name, from_state=old, to=new
        )
        self.telemetry.counter(
            "breaker_transitions_total", breaker=name, to=new
        ).inc()

    def _record_fault(self, now: float, reason: str) -> None:
        self.primary_faults += 1
        self.breaker.record_failure(now)
        self.telemetry.emit(tel_events.PREDICTOR_FAULT, reason=reason)
        self.telemetry.counter("predictor_faults_total", reason=reason).inc()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def score(self, observation: np.ndarray) -> ScoreResult:
        """Score one observation vector, failing over as needed."""
        now = self.clock()
        with self.telemetry.span("evaluate.score") as span:
            result = None
            if self.breaker.allow(now):
                result = self._try_primary(observation, now)
            if result is None:
                result = self._secondary_score(observation)
            span.annotate(source=result.source)
            self.telemetry.counter(
                "predictor_scores_total", source=result.source
            ).inc()
            return result

    def _try_primary(self, observation: np.ndarray, now: float) -> ScoreResult | None:
        latency = float(getattr(self.primary, "simulated_latency", 0.0) or 0.0)
        if self.latency_budget is not None and latency > self.latency_budget:
            self._record_fault(now, "latency")
            return None
        try:
            score = float(self.primary.score_samples(observation[None, :])[0])
        except Exception:
            self._record_fault(now, "exception")
            return None
        if not np.isfinite(score):
            self._record_fault(now, "non-finite")
            return None
        self.breaker.record_success(now)
        return ScoreResult(
            score=score,
            warning=score >= self.primary.threshold,
            source="primary",
            degraded=False,
        )

    def _secondary_score(self, observation: np.ndarray) -> ScoreResult:
        if self.secondary is None:
            self.null_scores += 1
            return ScoreResult(
                score=float("nan"), warning=False, source="none", degraded=True
            )
        try:
            score = float(self.secondary.score_samples(observation[None, :])[0])
        except Exception:
            self.null_scores += 1
            return ScoreResult(
                score=float("nan"), warning=False, source="none", degraded=True
            )
        if not np.isfinite(score):
            self.null_scores += 1
            return ScoreResult(
                score=float("nan"), warning=False, source="none", degraded=True
            )
        self.secondary_scores += 1
        return ScoreResult(
            score=score,
            warning=score >= self.secondary.threshold,
            source="secondary",
            degraded=True,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def using_fallback(self) -> bool:
        """True while the primary's breaker is open."""
        return self.breaker.state is BreakerState.OPEN

    @property
    def threshold(self) -> float:
        """The active model's threshold (primary unless its breaker is open)."""
        if self.using_fallback and self.secondary is not None:
            return self.secondary.threshold
        return self.primary.threshold
