"""Countermeasure escalation: cleanup -> failover -> restart.

When an executed action reports ``ActionOutcome(success=False)``, retrying
the same action is usually wasted lead time (the recovery-oriented-
computing insight behind recursive microreboots).  The chain keeps a
per-target escalation level: every failed execution bumps the target one
level up the chain, a success resets it, and a quiet period
(``reset_after`` simulated seconds without a failed action) decays it back
to level zero so an old incident does not force heavyweight restarts
forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.actions.base import Action
from repro.actions.cleanup import StateCleanupAction
from repro.actions.failover import PreventiveFailoverAction
from repro.actions.restart import PreventiveRestartAction
from repro.errors import ConfigurationError


def default_chain() -> list[Action]:
    """The canonical cheap-to-drastic escalation ladder."""
    return [
        StateCleanupAction(),
        PreventiveFailoverAction(fraction=0.8),
        PreventiveRestartAction(restart_duration=45.0),
    ]


@dataclass
class _TargetState:
    level: int = 0
    last_failure: float = float("-inf")


@dataclass
class EscalationChain:
    """Per-target escalation ladder over a fixed action sequence."""

    levels: list[Action] = field(default_factory=default_chain)
    reset_after: float = 1_800.0
    escalations: int = field(default=0, init=False)
    _targets: dict[str, _TargetState] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if not self.levels:
            raise ConfigurationError("escalation chain needs at least one level")
        if self.reset_after <= 0:
            raise ConfigurationError("reset_after must be positive")

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    def level(self, target: str, now: float) -> int:
        """Current escalation level for ``target`` (0 = not escalated)."""
        state = self._targets.get(target)
        if state is None:
            return 0
        if now - state.last_failure >= self.reset_after:
            state.level = 0
        return state.level

    def record_failure(self, target: str, now: float) -> int:
        """An action against ``target`` failed: move one level up the chain.

        Returns the new level (capped at the last chain entry).
        """
        state = self._targets.setdefault(target, _TargetState())
        if now - state.last_failure >= self.reset_after:
            state.level = 0
        if state.level < len(self.levels) - 1:
            state.level += 1
            self.escalations += 1
        state.last_failure = now
        return state.level

    def record_success(self, target: str, now: float) -> None:
        """An action against ``target`` succeeded: de-escalate fully."""
        state = self._targets.get(target)
        if state is not None:
            state.level = 0

    # ------------------------------------------------------------------
    # Candidate actions
    # ------------------------------------------------------------------

    def candidates(self, target: str, now: float) -> list[Action]:
        """Actions to try for ``target``, current level first.

        At level 0 (no pending escalation) this is empty -- normal
        utility-based selection applies; once escalated, the chain from
        the current level upward is proposed so an inapplicable or
        circuit-broken level can be skipped in favour of the next one.
        """
        level = self.level(target, now)
        if level == 0:
            return []
        return self.levels[level:]

    def escalated_targets(self, now: float) -> list[str]:
        """Targets currently above level zero."""
        return [t for t in self._targets if self.level(t, now) > 0]
