"""Gauge-read sanitization: the Monitor step's input firewall.

A predictor fed a single NaN produces NaN scores forever after (kernel
distances, logsumexp, Platt scaling all propagate it), and a gauge whose
read callable raises would previously kill the whole ``mea-cycle``
process.  The sanitizer sits between the raw gauges (plus any injected
perturbations) and the feature vector:

- **NaN / infinity** readings are replaced by the last known good value,
- **exceptions** from the read callable are caught and likewise replaced,
- **implausible** readings (paper Sect. 4.3 plausibility checks) are
  replaced too: values below a configured ``lower_bound`` and sudden
  spikes far beyond the last good magnitude,
- **stuck** gauges (the same exact value repeated far longer than natural
  jitter allows -- a frozen collector) are flagged,
- a variable whose reads keep failing is marked **stale** so downstream
  consumers can discount it.

Every substitution is counted per variable and reason, so a fault-
injection campaign can assert that monitoring attacks were absorbed
rather than silently ignored.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.telemetry import events as tel_events
from repro.telemetry.hub import NULL_HUB, TelemetryHub


@dataclass(frozen=True)
class SanitizedReading:
    """One sanitized gauge read."""

    variable: str
    value: float  # what downstream consumers should use
    raw: float  # what the gauge actually returned (NaN for exceptions)
    ok: bool  # the raw reading was usable as-is
    reason: str | None = None  # "nan"|"inf"|"exception"|"bound"|"spike"|"stuck"
    stale: bool = False  # substitutions have persisted past stale_after


@dataclass
class _VariableState:
    last_good: float | None = None
    last_value: float | None = None
    repeats: int = 0
    consecutive_bad: int = 0


@dataclass
class GaugeSanitizer:
    """Detect NaN / stuck / stale gauge readings; substitute last-known-good.

    Parameters
    ----------
    stale_after:
        Number of consecutive bad reads after which a variable is flagged
        stale (its substituted value no longer tracks reality).
    stuck_after:
        Number of *identical nonzero* consecutive readings after which a
        gauge is flagged stuck.  Zero readings are exempt because idle
        gauges legitimately sit at 0.0 for long stretches.
    default:
        Fallback value when a read fails before any good value was seen.
    lower_bound:
        Optional plausibility floor: finite readings below it (e.g. a
        negative utilization) are treated as corrupt and substituted.
    spike_factor:
        Optional plausibility ceiling on jumps: a reading whose magnitude
        exceeds ``spike_factor * max(|last_good|, spike_floor)`` is
        treated as corrupt and substituted.  ``spike_floor`` keeps
        small-valued gauges from flagging ordinary activity ramps.
    bounds:
        Optional per-variable ``{variable: (low, high)}`` plausibility
        ranges from a-priori knowledge (e.g. a utilization can never be
        negative or 8.0); either end may be None.  Out-of-range readings
        are substituted with reason ``"bound"``.
    telemetry:
        Telemetry hub that mirrors every substitution as a
        ``sanitizer_substitutions_total{variable,reason}`` counter plus a
        ``sanitizer.substitution`` event, and flags staleness
        transitions (disabled by default).
    """

    stale_after: int = 3
    stuck_after: int = 20
    default: float = 0.0
    lower_bound: float | None = None
    spike_factor: float | None = None
    spike_floor: float = 1.0
    bounds: dict[str, tuple[float | None, float | None]] | None = None
    telemetry: TelemetryHub = NULL_HUB
    events: dict[str, dict[str, int]] = field(default_factory=dict)
    _states: dict[str, _VariableState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.stale_after < 1:
            raise ConfigurationError("stale_after must be >= 1")
        if self.stuck_after < 2:
            raise ConfigurationError("stuck_after must be >= 2")
        if self.spike_factor is not None and self.spike_factor <= 1.0:
            raise ConfigurationError("spike_factor must exceed 1")
        if self.spike_floor <= 0:
            raise ConfigurationError("spike_floor must be positive")

    def read(self, variable: str, read_fn: Callable[[], float]) -> SanitizedReading:
        """Read one gauge through the sanitizer."""
        state = self._states.setdefault(variable, _VariableState())
        reason: str | None = None
        try:
            raw = float(read_fn())
        except Exception:
            raw = float("nan")
            reason = "exception"
        else:
            if math.isnan(raw):
                reason = "nan"
            elif math.isinf(raw):
                reason = "inf"
            elif self._out_of_bounds(variable, raw):
                reason = "bound"
            elif (
                self.spike_factor is not None
                and state.last_good is not None
                and abs(raw)
                > self.spike_factor * max(abs(state.last_good), self.spike_floor)
            ):
                reason = "spike"

        if reason is not None:
            state.consecutive_bad += 1
            self._count(variable, reason)
            if state.consecutive_bad == self.stale_after:
                self.telemetry.emit(
                    tel_events.SANITIZER_STALE,
                    variable=variable,
                    consecutive_bad=state.consecutive_bad,
                )
                self.telemetry.counter("sanitizer_stale_total").inc()
            value = state.last_good if state.last_good is not None else self.default
            return SanitizedReading(
                variable=variable,
                value=value,
                raw=raw,
                ok=False,
                reason=reason,
                stale=state.consecutive_bad >= self.stale_after,
            )

        # A finite reading: track the repeat run for stuck detection.
        if state.last_value is not None and raw == state.last_value:
            state.repeats += 1
        else:
            state.repeats = 0
        state.last_value = raw
        state.consecutive_bad = 0

        # Exact-zero sentinel: a gauge resting at literal 0.0 is a
        # legitimate idle reading, not a stuck value.
        if raw != 0.0 and state.repeats >= self.stuck_after:  # pfmlint: disable=PFM003
            # The value itself is the best estimate we have; flag, don't
            # substitute -- a frozen gauge's last value *is* last-known-good.
            self._count(variable, "stuck")
            return SanitizedReading(
                variable=variable, value=raw, raw=raw, ok=False,
                reason="stuck", stale=True,
            )

        state.last_good = raw
        return SanitizedReading(variable=variable, value=raw, raw=raw, ok=True)

    def _out_of_bounds(self, variable: str, raw: float) -> bool:
        if self.lower_bound is not None and raw < self.lower_bound:
            return True
        low, high = (self.bounds or {}).get(variable, (None, None))
        if low is not None and raw < low:
            return True
        return high is not None and raw > high

    def _count(self, variable: str, reason: str) -> None:
        per_var = self.events.setdefault(variable, {})
        per_var[reason] = per_var.get(reason, 0) + 1
        self.telemetry.counter(
            "sanitizer_substitutions_total", variable=variable, reason=reason
        ).inc()
        self.telemetry.emit(
            tel_events.SANITIZER_SUBSTITUTION, variable=variable, reason=reason
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stale_variables(self) -> list[str]:
        """Variables currently running on substituted (or frozen) values."""
        stale = []
        for variable, state in self._states.items():
            if state.consecutive_bad >= self.stale_after:
                stale.append(variable)
            elif (
                state.last_value is not None
                # Same exact-zero sentinel as the stuck check above.
                and state.last_value != 0.0  # pfmlint: disable=PFM003
                and state.repeats >= self.stuck_after
            ):
                stale.append(variable)
        return stale

    @property
    def total_substitutions(self) -> int:
        """Total bad readings absorbed across all variables."""
        return sum(
            count for per_var in self.events.values() for count in per_var.values()
        )
