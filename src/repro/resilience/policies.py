"""Resilience policies for the MEA stack itself.

The paper argues the Monitor-Evaluate-Act cycle keeps the *managed* system
dependable; this module supplies the mechanisms that keep the *cycle*
dependable.  Three classical patterns, all expressed in simulated time:

- :class:`RetryPolicy` -- bounded retries with exponential backoff.  A
  failed step is retried immediately up to ``max_attempts``; if the whole
  iteration still fails, the next cycle is delayed by an exponentially
  growing backoff instead of the nominal period (trading monitoring
  frequency for stability, never dying).
- :class:`StepTimeout` -- a per-step budget in simulated seconds.  Steps
  whose declared simulated latency exceeds the budget are skipped and
  surfaced as timeouts rather than stalling the cycle (Aupy et al.'s
  lesson: a prediction that arrives after the lead time is worthless).
- :class:`CircuitBreaker` -- per-action breaker that opens after repeated
  failures, rejects execution while open, and half-opens after a cooldown
  to probe whether the action recovered.

None of these import anything above the substrate layer, so the core can
use them without creating an import cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff (simulated seconds).

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    call plus up to two immediate retries.  :meth:`backoff` maps the
    number of *consecutive failed cycles* to the delay before the next
    cycle iteration.
    """

    max_attempts: int = 2
    backoff_base: float = 30.0
    backoff_factor: float = 2.0
    backoff_max: float = 600.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")

    def backoff(self, consecutive_failures: int) -> float:
        """Delay before the next attempt after ``consecutive_failures``."""
        if consecutive_failures <= 0:
            return 0.0
        delay = self.backoff_base * self.backoff_factor ** (consecutive_failures - 1)
        return min(delay, self.backoff_max)


@dataclass(frozen=True)
class StepTimeout:
    """A per-step execution budget in simulated seconds."""

    budget: float

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ConfigurationError("timeout budget must be positive")

    def exceeded(self, simulated_latency: float) -> bool:
        """Whether a step declaring this latency should be timed out."""
        return simulated_latency > self.budget


class BreakerState(enum.Enum):
    """Circuit breaker states (standard three-state machine)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Suppress an operation that keeps failing; probe again after cooldown.

    The clock is supplied by the caller (simulated time), so the breaker
    itself stays independent of the simulation engine.

    State machine: CLOSED counts consecutive failures and trips to OPEN at
    ``failure_threshold``; OPEN rejects calls until ``cooldown`` simulated
    seconds have passed, then transitions to HALF_OPEN on the next
    :meth:`allow`; in HALF_OPEN a recorded success closes the breaker and
    a recorded failure re-opens it (restarting the cooldown).

    ``on_transition`` (if set) is invoked as
    ``on_transition(name, old_state, new_state, now)`` on every state
    change -- the seam the telemetry layer uses to stream breaker events
    without the breaker importing anything above the substrate.
    """

    name: str = "breaker"
    failure_threshold: int = 3
    cooldown: float = 600.0
    on_transition: Callable[[str, str, str, float], None] | None = None
    state: BreakerState = field(default=BreakerState.CLOSED, init=False)
    consecutive_failures: int = field(default=0, init=False)
    times_opened: int = field(default=0, init=False)
    opened_at: float = field(default=float("-inf"), init=False)
    calls_rejected: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if self.cooldown < 0:
            raise ConfigurationError("cooldown must be >= 0")

    def _set_state(self, new_state: BreakerState, now: float) -> None:
        old = self.state
        if old is new_state:
            return
        self.state = new_state
        if self.on_transition is not None:
            self.on_transition(self.name, old.value, new_state.value, now)

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at simulated time ``now``."""
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.cooldown:
                self._set_state(BreakerState.HALF_OPEN, now)
            else:
                self.calls_rejected += 1
                return False
        return True

    def record_success(self, now: float) -> None:
        """A call succeeded: close the breaker and clear the failure run."""
        self.consecutive_failures = 0
        self._set_state(BreakerState.CLOSED, now)

    def record_failure(self, now: float) -> None:
        """A call failed: count it, tripping or re-opening as needed."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._trip(now)

    def _trip(self, now: float) -> None:
        self._set_state(BreakerState.OPEN, now)
        self.opened_at = now
        self.times_opened += 1

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state.value}, "
            f"failures={self.consecutive_failures}, opened={self.times_opened}x)"
        )
