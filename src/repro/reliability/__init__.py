"""CTMC-based assessment of proactive fault management (paper Sect. 5).

The central objects are:

- :class:`~repro.reliability.rates.PredictionQuality` -- precision / recall /
  false-positive rate of a failure predictor (Sect. 3.3 metrics),
- :class:`~repro.reliability.rates.PFMParameters` -- the full parameter set
  of the paper's Table 2 plus time scales,
- :class:`~repro.reliability.pfm_model.PFMModel` -- the 7-state CTMC of
  Fig. 9 with availability (Eq. 8), reliability and hazard rate (Eqs. 9-13),
- :mod:`~repro.reliability.baseline` -- comparators without PFM,
- :mod:`~repro.reliability.sensitivity` -- parameter sweeps.
"""

from repro.reliability.availability import closed_form_availability
from repro.reliability.cost import (
    CostModel,
    PolicyCost,
    deterministic_rejuvenation_policy_cost,
    no_action_policy_cost,
    optimal_rejuvenation_interval,
    pfm_policy_cost,
    policy_comparison,
    rejuvenation_policy_cost,
)
from repro.reliability.from_measurements import (
    parameters_from_report,
    scales_from_failure_log,
)
from repro.reliability.baseline import (
    TwoStateModel,
    RejuvenationModel,
    without_pfm_availability,
    without_pfm_reliability,
)
from repro.reliability.pfm_model import PFMModel, STATE_NAMES
from repro.reliability.rates import (
    PFMParameters,
    PredictionQuality,
    PredictionRates,
    derive_rates,
)
from repro.reliability.reliability_fn import (
    asymptotic_unavailability_ratio,
    hazard_curves,
    reliability_curves,
    unavailability_ratio,
)
from repro.reliability.sensitivity import (
    sweep_availability,
    sweep_unavailability_ratio,
)
from repro.reliability.threshold_opt import (
    ThresholdOperatingPoint,
    dependability_optimal_threshold,
    threshold_ratio_curve,
)

__all__ = [
    "closed_form_availability",
    "CostModel",
    "PolicyCost",
    "deterministic_rejuvenation_policy_cost",
    "no_action_policy_cost",
    "optimal_rejuvenation_interval",
    "pfm_policy_cost",
    "policy_comparison",
    "rejuvenation_policy_cost",
    "parameters_from_report",
    "scales_from_failure_log",
    "TwoStateModel",
    "RejuvenationModel",
    "without_pfm_availability",
    "without_pfm_reliability",
    "PFMModel",
    "STATE_NAMES",
    "PFMParameters",
    "PredictionQuality",
    "PredictionRates",
    "derive_rates",
    "asymptotic_unavailability_ratio",
    "hazard_curves",
    "reliability_curves",
    "unavailability_ratio",
    "sweep_availability",
    "sweep_unavailability_ratio",
    "ThresholdOperatingPoint",
    "dependability_optimal_threshold",
    "threshold_ratio_curve",
]
