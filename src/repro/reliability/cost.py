"""Downtime cost and the PFM-vs-periodic-rejuvenation comparison.

The rejuvenation literature the paper builds on (Huang et al., Dohi et
al.) optimizes *cost*: forced downtime is cheaper than unplanned downtime,
so restarting preemptively can pay off even though it adds downtime.  The
paper's point (Sect. 5.2) is that PFM acts on *predictions* instead of a
fixed clock: "The key property of proactive fault management is that it
operates upon failure predictions rather than on a purely time-triggered
execution of fault-tolerance mechanisms."

This module prices both policies with one cost model so the claim becomes
a measurable comparison (bench A5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.reliability.pfm_model import PFMModel
from repro.reliability.rates import PFMParameters


@dataclass(frozen=True)
class CostModel:
    """Cost rates per unit time of each downtime flavour.

    Unplanned downtime is typically an order of magnitude more expensive
    than planned/forced downtime (SLA penalties, lost transactions,
    emergency staffing).
    """

    unplanned_cost_rate: float = 10.0
    planned_cost_rate: float = 1.0
    action_cost_rate: float = 0.05  # overhead while countermeasures run

    def __post_init__(self) -> None:
        if min(self.unplanned_cost_rate, self.planned_cost_rate) < 0:
            raise ConfigurationError("cost rates must be non-negative")


@dataclass(frozen=True)
class PolicyCost:
    """Steady-state cost breakdown of one policy."""

    policy: str
    availability: float
    planned_downtime_fraction: float
    unplanned_downtime_fraction: float
    cost_rate: float  # expected cost per unit time


def pfm_policy_cost(params: PFMParameters, costs: CostModel) -> PolicyCost:
    """Price the Fig. 9 PFM model.

    Prepared/forced downtime (state SR) is billed at the planned rate,
    unprepared downtime (SF) at the unplanned rate; time spent in
    prediction/action states carries the small action overhead.
    """
    model = PFMModel(params)
    pi = model.steady_state()
    planned = pi["SR"]
    unplanned = pi["SF"]
    acting = pi["STP"] + pi["SFP"] + pi["STN"] + pi["SFN"]
    cost_rate = (
        planned * costs.planned_cost_rate
        + unplanned * costs.unplanned_cost_rate
        + acting * costs.action_cost_rate
    )
    return PolicyCost(
        policy="pfm",
        availability=model.availability(),
        planned_downtime_fraction=planned,
        unplanned_downtime_fraction=unplanned,
        cost_rate=cost_rate,
    )


def rejuvenation_policy_cost(
    params: PFMParameters,
    costs: CostModel,
    rejuvenation_interval: float,
) -> PolicyCost:
    """Price *time-triggered* rejuvenation on the same fault process.

    A clock policy restarts on schedule regardless of the (invisible)
    internal state, so the rejuvenation transition leaves both the healthy
    and the failure-probable state at rate ``1 / interval``.  (Giving the
    clock policy oracle knowledge of the failure-probable state -- as the
    plain Huang chain does -- would conflate it with perfect
    condition-based inspection; the whole point of the comparison is that
    PFM earns that knowledge through prediction.)
    """
    if rejuvenation_interval <= 0:
        raise ConfigurationError("rejuvenation_interval must be positive")
    from repro.markov.ctmc import CTMC

    rate = 1.0 / rejuvenation_interval
    chain = CTMC.from_rates(
        ["up", "probable", "rejuvenating", "failed"],
        {
            ("up", "probable"): params.failure_rate,
            ("up", "rejuvenating"): rate,
            ("probable", "failed"): params.r_a,
            ("probable", "rejuvenating"): rate,
            ("rejuvenating", "up"): params.r_r,
            ("failed", "up"): params.r_f,
        },
    )
    pi = chain.steady_state()
    planned = float(pi[chain.index_of("rejuvenating")])
    unplanned = float(pi[chain.index_of("failed")])
    availability = float(pi[chain.index_of("up")] + pi[chain.index_of("probable")])
    cost_rate = (
        planned * costs.planned_cost_rate + unplanned * costs.unplanned_cost_rate
    )
    return PolicyCost(
        policy=f"rejuvenation@{rejuvenation_interval:.0f}s",
        availability=availability,
        planned_downtime_fraction=planned,
        unplanned_downtime_fraction=unplanned,
        cost_rate=cost_rate,
    )


def deterministic_rejuvenation_policy_cost(
    params: PFMParameters,
    costs: CostModel,
    rejuvenation_interval: float,
) -> PolicyCost:
    """Price *deterministic*-interval rejuvenation via a semi-Markov model.

    The exponential clock of :func:`rejuvenation_policy_cost` is the
    Huang-style approximation; Dohi et al. moved to semi-Markov processes
    because real rejuvenation schedules are deterministic.  This variant
    restarts exactly every ``rejuvenation_interval`` seconds of uptime.
    """
    if rejuvenation_interval <= 0:
        raise ConfigurationError("rejuvenation_interval must be positive")
    from repro.markov.smp import deterministic_rejuvenation_smp

    smp = deterministic_rejuvenation_smp(
        mttf_aging=params.mttf,
        maturation_time=params.action_time,
        rejuvenation_interval=rejuvenation_interval,
        rejuvenation_downtime=1.0 / params.r_r,
        repair_downtime=params.mttr,
    )
    pi = smp.steady_state()
    planned = float(pi[smp.jump_chain.index_of("rejuvenating")])
    unplanned = float(pi[smp.jump_chain.index_of("failed")])
    return PolicyCost(
        policy=f"det-rejuvenation@{rejuvenation_interval:.0f}s",
        availability=float(pi[smp.jump_chain.index_of("up")]),
        planned_downtime_fraction=planned,
        unplanned_downtime_fraction=unplanned,
        cost_rate=(
            planned * costs.planned_cost_rate
            + unplanned * costs.unplanned_cost_rate
        ),
    )


def no_action_policy_cost(params: PFMParameters, costs: CostModel) -> PolicyCost:
    """Price doing nothing: every failure-prone situation matures."""
    lam = 1.0 / (params.mttf + params.action_time)
    unavailability = lam / (lam + params.r_f)
    return PolicyCost(
        policy="none",
        availability=1.0 - unavailability,
        planned_downtime_fraction=0.0,
        unplanned_downtime_fraction=unavailability,
        cost_rate=unavailability * costs.unplanned_cost_rate,
    )


def optimal_rejuvenation_interval(
    params: PFMParameters,
    costs: CostModel,
    candidates: np.ndarray | None = None,
) -> tuple[float, PolicyCost]:
    """Grid-search the cheapest time-triggered rejuvenation schedule.

    Giving the time-triggered policy its *optimal* schedule makes the
    PFM-vs-rejuvenation comparison fair (bench A5).
    """
    if candidates is None:
        candidates = np.geomspace(params.mttf / 100, params.mttf * 10, 60)
    best_interval, best = None, None
    for interval in candidates:
        cost = rejuvenation_policy_cost(params, costs, float(interval))
        if best is None or cost.cost_rate < best.cost_rate:
            best_interval, best = float(interval), cost
    assert best_interval is not None and best is not None
    return best_interval, best


def policy_comparison(
    params: PFMParameters, costs: CostModel | None = None
) -> list[PolicyCost]:
    """All three policies priced on the same fault process, cheapest first."""
    costs = costs or CostModel()
    _, best_rejuvenation = optimal_rejuvenation_interval(params, costs)
    rows = [
        pfm_policy_cost(params, costs),
        best_rejuvenation,
        no_action_policy_cost(params, costs),
    ]
    rows.sort(key=lambda row: row.cost_rate)
    return rows
