"""Parameter sweeps over the PFM dependability model.

The paper's Sect. 5 motivates assessing *how much* predictor accuracy and
action effectiveness matter; these sweeps quantify it.  They power the
sensitivity benchmark (bench S1 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.errors import ConfigurationError
from repro.reliability.pfm_model import PFMModel
from repro.reliability.rates import PFMParameters
from repro.reliability.reliability_fn import unavailability_ratio

_QUALITY_FIELDS = {"precision", "recall", "fpr"}
_PARAM_FIELDS = {"p_tp", "p_fp", "p_tn", "k", "mttf", "action_time", "mttr"}


def _with_value(params: PFMParameters, field: str, value: float) -> PFMParameters:
    if field in _QUALITY_FIELDS:
        return params.with_quality(**{field: value})
    if field in _PARAM_FIELDS:
        return replace(params, **{field: value})
    raise ConfigurationError(f"unknown sweep field: {field!r}")


def sweep_availability(
    params: PFMParameters, field: str, values: Sequence[float]
) -> list[tuple[float, float]]:
    """Steady-state availability as ``field`` sweeps over ``values``.

    Returns ``[(value, availability), ...]``.
    """
    return [
        (value, PFMModel(_with_value(params, field, value)).availability())
        for value in values
    ]


def sweep_unavailability_ratio(
    params: PFMParameters, field: str, values: Sequence[float]
) -> list[tuple[float, float]]:
    """Eq. 14 ratio as ``field`` sweeps over ``values``."""
    return [
        (value, unavailability_ratio(_with_value(params, field, value)))
        for value in values
    ]


def break_even_p_fp(params: PFMParameters, tolerance: float = 1e-6) -> float:
    """Find the induced-failure probability at which PFM stops paying off.

    Bisects ``p_fp`` in [0, 1] for the point where the unavailability ratio
    crosses 1.  Returns 1.0 if PFM wins even at ``p_fp = 1``.
    """
    low, high = 0.0, 1.0
    if unavailability_ratio(replace(params, p_fp=high)) < 1.0:
        return 1.0
    if unavailability_ratio(replace(params, p_fp=low)) >= 1.0:
        return 0.0
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if unavailability_ratio(replace(params, p_fp=mid)) < 1.0:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)
