"""Build model parameters from measured predictor quality.

Closes the loop between the case study (Sect. 3.3) and the dependability
model (Sect. 5): take a :class:`~repro.prediction.evaluation.PredictorReport`
measured on real (or simulated) data plus observed system time scales, and
produce the :class:`~repro.reliability.rates.PFMParameters` the CTMC
needs -- exactly what the paper does when it plugs the HSMM's
precision/recall/fpr into Table 2.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.prediction.evaluation import PredictorReport
from repro.reliability.rates import PFMParameters, PredictionQuality


def parameters_from_report(
    report: PredictorReport,
    mttf: float,
    mttr: float,
    action_time: float = 100.0,
    p_tp: float = 0.25,
    p_fp: float = 0.1,
    p_tn: float = 0.001,
    k: float = 2.0,
) -> PFMParameters:
    """PFMParameters from a measured evaluation report.

    Degenerate measured values (precision or recall of exactly 0 or 1,
    fpr of 0) are nudged into the model's open domain.
    """
    precision = float(np.clip(report.precision, 1e-3, 1.0))
    recall = float(np.clip(report.recall, 1e-3, 1.0))
    fpr = float(np.clip(report.false_positive_rate, 1e-4, 1.0 - 1e-4))
    return PFMParameters(
        quality=PredictionQuality(precision=precision, recall=recall, fpr=fpr),
        p_tp=p_tp,
        p_fp=p_fp,
        p_tn=p_tn,
        k=k,
        mttf=mttf,
        action_time=action_time,
        mttr=mttr,
    )


def scales_from_failure_log(
    failure_times: list[float],
    horizon: float,
    repair_downtime: float,
) -> tuple[float, float]:
    """Estimate ``(mttf, mttr)`` from an observed failure log.

    MTTF is the mean gap between failure *episodes* (breaches closer than
    the repair downtime are one episode); MTTR is the supplied per-episode
    downtime (the simulated SCP repairs via restart of known duration).
    """
    if horizon <= 0:
        raise ConfigurationError("horizon must be positive")
    times = sorted(failure_times)
    if len(times) < 2:
        raise ConfigurationError("need at least two failures to estimate MTTF")
    episodes = [times[0]]
    for t in times[1:]:
        if t - episodes[-1] > repair_downtime:
            episodes.append(t)
    if len(episodes) < 2:
        raise ConfigurationError("all failures collapse into one episode")
    mttf = float(np.mean(np.diff(episodes)))
    return mttf, float(repair_downtime)
