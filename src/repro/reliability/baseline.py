"""Comparator models without proactive fault management.

Two comparators from the paper:

- availability: "a simple CTMC with two states (up and down) and the same
  failure and repair rates as for the case with PFM" (Sect. 5.5) --
  :class:`TwoStateModel` / :func:`without_pfm_availability`;
- reliability / hazard: the same underlying fault process, but positive
  predictions trigger no countermeasures, i.e. every failure-prone
  situation turns into an unprepared failure after the action-time delay --
  :func:`without_pfm_reliability`.

Additionally :class:`RejuvenationModel` implements the classic Huang et
al. (1995) time-triggered rejuvenation CTMC that the paper's model extends,
so the two policies can be compared head to head.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.markov.ctmc import CTMC
from repro.markov.phase_type import PhaseTypeDistribution
from repro.reliability.rates import PFMParameters


class TwoStateModel:
    """Minimal up/down CTMC: failure rate ``lam``, repair rate ``mu``."""

    def __init__(self, failure_rate: float, repair_rate: float) -> None:
        if failure_rate <= 0 or repair_rate <= 0:
            raise ConfigurationError("rates must be positive")
        self.failure_rate = failure_rate
        self.repair_rate = repair_rate
        self.ctmc = CTMC.from_rates(
            ["up", "down"],
            {("up", "down"): failure_rate, ("down", "up"): repair_rate},
        )

    def availability(self) -> float:
        """``A = mu / (lam + mu)``."""
        return self.repair_rate / (self.failure_rate + self.repair_rate)

    def unavailability(self) -> float:
        return 1.0 - self.availability()


def without_pfm_availability(params: PFMParameters) -> float:
    """Availability of the unprotected system (Sect. 5.5 comparator).

    The effective failure rate is ``1 / (MTTF + action_time)``: a
    failure-prone situation arises after MTTF on average and evolves into
    the failure over the same delay the PFM model uses, so both systems see
    an identical fault process.  Repair is always unprepared (rate ``rF``).
    """
    effective_failure_rate = 1.0 / (params.mttf + params.action_time)
    return TwoStateModel(effective_failure_rate, params.r_f).availability()


def without_pfm_reliability(params: PFMParameters) -> PhaseTypeDistribution:
    """First-passage distribution to failure without countermeasures.

    The fault process is identical to the PFM model's (failure-prone
    situations at rate ``F``, maturing into failures at rate ``rA``), but no
    prediction-driven action intervenes, so every failure-prone situation is
    absorbed into the failure state: a hypoexponential(F, rA) distribution.
    """
    transient = np.array(
        [
            [-params.failure_rate, params.failure_rate],
            [0.0, -params.r_a],
        ]
    )
    return PhaseTypeDistribution(transient, np.array([1.0, 0.0]))


class RejuvenationModel:
    """Huang et al. (1995) software-rejuvenation CTMC (related work, Sect. 5.2).

    States: ``up`` (S0), ``failure_probable`` (SP, aged), ``rejuvenating``
    (forced downtime), ``failed`` (unplanned downtime).

    Parameters
    ----------
    aging_rate:
        Rate ``r2`` of entering the failure-probable state.
    failure_rate:
        Rate ``lam`` of failing from the failure-probable state.
    rejuvenation_rate:
        Rate ``r4`` of triggering rejuvenation from the failure-probable
        state (exponential approximation of the periodic schedule).
    rejuvenation_repair_rate:
        Rate ``r3`` of completing rejuvenation.
    repair_rate:
        Rate ``r1`` of repairing an unplanned failure.
    """

    def __init__(
        self,
        aging_rate: float,
        failure_rate: float,
        rejuvenation_rate: float,
        rejuvenation_repair_rate: float,
        repair_rate: float,
    ) -> None:
        for name, value in {
            "aging_rate": aging_rate,
            "failure_rate": failure_rate,
            "rejuvenation_repair_rate": rejuvenation_repair_rate,
            "repair_rate": repair_rate,
        }.items():
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if rejuvenation_rate < 0:
            raise ConfigurationError("rejuvenation_rate must be non-negative")
        self.ctmc = CTMC.from_rates(
            ["up", "failure_probable", "rejuvenating", "failed"],
            {
                ("up", "failure_probable"): aging_rate,
                ("failure_probable", "failed"): failure_rate,
                ("failure_probable", "rejuvenating"): rejuvenation_rate,
                ("rejuvenating", "up"): rejuvenation_repair_rate,
                ("failed", "up"): repair_rate,
            },
        )

    def availability(self) -> float:
        """Steady-state probability of the two operational states."""
        pi = self.ctmc.steady_state()
        up = self.ctmc.index_of("up")
        probable = self.ctmc.index_of("failure_probable")
        return float(pi[up] + pi[probable])

    def downtime_split(self) -> dict[str, float]:
        """Steady-state mass of rejuvenation vs unplanned downtime."""
        pi = self.ctmc.steady_state()
        return {
            "rejuvenating": float(pi[self.ctmc.index_of("rejuvenating")]),
            "failed": float(pi[self.ctmc.index_of("failed")]),
        }
