"""Parameters of the PFM dependability model and rate derivation.

The paper's Fig. 9 CTMC is parameterized by prediction rates ``rTP``,
``rFP``, ``rTN``, ``rFN``, an action rate ``rA``, repair rates ``rF`` /
``rR = k rF`` and the conditional failure probabilities ``PTP``, ``PFP``,
``PTN``.  The paper states these rates "can be determined from precision,
recall, false positive rate and a few additional assumptions" (citing
Salfner's thesis, Chap. 10).  We reconstruct that derivation:

Given the rate ``F = 1 / MTTF`` at which failure-prone situations arise,

- recall splits the failure-prone situations into predicted and missed:
  ``rTP = recall * F``  and  ``rFN = (1 - recall) * F``,
- precision ties false positives to true positives:
  ``precision = rTP / (rTP + rFP)``  =>  ``rFP = rTP (1 - precision) / precision``,
- the false positive rate ties true negatives to false positives:
  ``fpr = rFP / (rFP + rTN)``  =>  ``rTN = rFP (1 - fpr) / fpr``.

Substituting these rates into the balance equations of the Fig. 9 chain
yields exactly the paper's Eq. 8 with ``rp = rTP + rFP + rTN + rFN``
(see :mod:`repro.reliability.availability`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PredictionQuality:
    """Accuracy metrics of a failure predictor (paper Sect. 3.3).

    Attributes
    ----------
    precision:
        Fraction of failure warnings that are correct.
    recall:
        Fraction of actual failures that are predicted (true positive rate).
    fpr:
        Fraction of non-failures falsely classified as failure-prone.
    """

    precision: float
    recall: float
    fpr: float

    def __post_init__(self) -> None:
        if not 0.0 < self.precision <= 1.0:
            raise ConfigurationError(f"precision must be in (0, 1], got {self.precision}")
        if not 0.0 < self.recall <= 1.0:
            raise ConfigurationError(f"recall must be in (0, 1], got {self.recall}")
        if not 0.0 < self.fpr < 1.0:
            raise ConfigurationError(f"fpr must be in (0, 1), got {self.fpr}")

    @property
    def f_measure(self) -> float:
        """Harmonic mean of precision and recall."""
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


@dataclass(frozen=True)
class PredictionRates:
    """Rates of the four prediction outcomes (events per unit time)."""

    r_tp: float
    r_fp: float
    r_tn: float
    r_fn: float

    @property
    def total(self) -> float:
        """Total prediction rate ``rp`` appearing in Eq. 8."""
        return self.r_tp + self.r_fp + self.r_tn + self.r_fn

    @property
    def failure_prone_rate(self) -> float:
        """Rate of truly failure-prone situations (``F`` in the derivation)."""
        return self.r_tp + self.r_fn


def derive_rates(quality: PredictionQuality, failure_rate: float) -> PredictionRates:
    """Derive the four prediction rates from metrics and the failure rate.

    ``failure_rate`` is the rate at which truly failure-prone situations
    arise (``1 / MTTF`` of the unprotected system).
    """
    if failure_rate <= 0:
        raise ConfigurationError("failure_rate must be positive")
    r_tp = quality.recall * failure_rate
    r_fn = (1.0 - quality.recall) * failure_rate
    r_fp = r_tp * (1.0 - quality.precision) / quality.precision
    r_tn = r_fp * (1.0 - quality.fpr) / quality.fpr
    return PredictionRates(r_tp=r_tp, r_fp=r_fp, r_tn=r_tn, r_fn=r_fn)


@dataclass(frozen=True)
class PFMParameters:
    """Full parameter set of the Sect. 5 model.

    Attributes
    ----------
    quality:
        Predictor accuracy metrics (Table 2: precision, recall, fpr).
    p_tp:
        ``P(failure | true positive prediction)`` -- probability that the
        failure occurs despite countermeasures (Eq. 3).
    p_fp:
        ``P(failure | false positive prediction)`` -- probability that an
        unnecessary action *induces* a failure (Eq. 4).
    p_tn:
        ``P(failure | true negative prediction)`` -- probability that the
        prediction overhead itself induces a failure (Eq. 5).
    k:
        Repair time improvement factor ``MTTR / MTTR_prepared`` (Eq. 6).
    mttf:
        Mean time between failure-prone situations (seconds); ``F = 1/mttf``.
    action_time:
        Mean time from start of a prediction to resolution (``1 / rA``);
        also the prediction lead-time scale.
    mttr:
        Mean time to repair after an *unprepared* failure (``1 / rF``).
    """

    quality: PredictionQuality
    p_tp: float = 0.25
    p_fp: float = 0.1
    p_tn: float = 0.001
    k: float = 2.0
    mttf: float = 12_500.0
    action_time: float = 100.0
    mttr: float = 600.0

    def __post_init__(self) -> None:
        for name in ("p_tp", "p_fp", "p_tn"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.k <= 0:
            raise ConfigurationError("k must be positive")
        for name in ("mttf", "action_time", "mttr"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")

    @classmethod
    def paper_example(cls) -> "PFMParameters":
        """The exact parameter values of the paper's Table 2.

        Time scales (MTTF, action time, MTTR) are not given in the paper;
        the defaults here are chosen so the Fig. 10 axes are matched
        (hazard asymptote ~8e-5 1/s, knee within 0-1000 s) -- see DESIGN.md.
        """
        return cls(
            quality=PredictionQuality(precision=0.70, recall=0.62, fpr=0.016),
            p_tp=0.25,
            p_fp=0.1,
            p_tn=0.001,
            k=2.0,
        )

    def with_quality(self, **kwargs: float) -> "PFMParameters":
        """Copy with some quality metrics replaced (for sweeps)."""
        return replace(self, quality=replace(self.quality, **kwargs))

    # Convenience rate accessors -------------------------------------------------

    @property
    def failure_rate(self) -> float:
        """``F = 1 / MTTF`` -- rate of failure-prone situations."""
        return 1.0 / self.mttf

    @property
    def r_a(self) -> float:
        """Action rate ``rA = 1 / action_time``."""
        return 1.0 / self.action_time

    @property
    def r_f(self) -> float:
        """Unprepared repair rate ``rF = 1 / MTTR``."""
        return 1.0 / self.mttr

    @property
    def r_r(self) -> float:
        """Prepared repair rate ``rR = k * rF`` (Eq. 6)."""
        return self.k * self.r_f

    def rates(self) -> PredictionRates:
        """The four prediction-outcome rates derived from the metrics."""
        return derive_rates(self.quality, self.failure_rate)
