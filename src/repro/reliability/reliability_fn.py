"""Reliability / hazard-rate curves and the unavailability ratio.

These helpers regenerate the data behind the paper's Fig. 10 (reliability
and hazard rate, with vs. without PFM) and Eq. 14 (the unavailability
ratio, ~0.488 for the Table 2 parameters).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.reliability.baseline import (
    without_pfm_availability,
    without_pfm_reliability,
)
from repro.reliability.pfm_model import PFMModel
from repro.reliability.rates import PFMParameters


def reliability_curves(
    params: PFMParameters, times: Sequence[float]
) -> dict[str, np.ndarray]:
    """``R(t)`` with and without PFM over ``times`` (Fig. 10a).

    Returns a dict with keys ``t``, ``with_pfm`` and ``without_pfm``.
    """
    ts = np.asarray(times, dtype=float)
    model = PFMModel(params)
    with_pfm = model.evaluate_curves(ts)["reliability"]
    baseline = without_pfm_reliability(params)
    without = baseline.evaluate(ts)["reliability"]
    return {"t": ts, "with_pfm": with_pfm, "without_pfm": without}


def hazard_curves(
    params: PFMParameters, times: Sequence[float]
) -> dict[str, np.ndarray]:
    """``h(t)`` with and without PFM over ``times`` (Fig. 10b)."""
    ts = np.asarray(times, dtype=float)
    model = PFMModel(params)
    with_pfm = model.evaluate_curves(ts)["hazard"]
    baseline = without_pfm_reliability(params)
    without = baseline.evaluate(ts)["hazard"]
    return {"t": ts, "with_pfm": with_pfm, "without_pfm": without}


def unavailability_ratio(params: PFMParameters) -> float:
    """``(1 - A_PFM) / (1 - A)`` -- the paper's Eq. 14.

    Values below 1 mean PFM reduces unavailability; the paper reports
    ~0.488 for the Table 2 parameters ("unavailability is roughly cut
    down by half").  The exact value depends on the absolute time scales
    (MTTF, MTTR, action time), which the paper does not publish; see
    :func:`asymptotic_unavailability_ratio` for the scale-free limit.
    """
    a_pfm = PFMModel(params).availability()
    a_plain = without_pfm_availability(params)
    return (1.0 - a_pfm) / (1.0 - a_plain)


def asymptotic_unavailability_ratio(params: PFMParameters) -> float:
    """Eq. 14 in the high-availability limit (scale-free form).

    As downtime and prediction overhead become small relative to uptime
    (``F * MTTR -> 0``, ``F / rA -> 0``), the ratio converges to

    .. math::

        \\frac{(P_{TP} r_{TP} + P_{FP} r_{FP}) / k + P_{TN} r_{TN} + r_{FN}}{F}

    which depends only on the Table 2 parameters.  For the paper's values
    this evaluates to 0.487, matching the reported ~0.488.
    """
    rates = params.rates()
    failure_rate = rates.failure_prone_rate
    prepared = (params.p_tp * rates.r_tp + params.p_fp * rates.r_fp) / params.k
    unprepared = params.p_tn * rates.r_tn + rates.r_fn
    return (prepared + unprepared) / failure_rate
