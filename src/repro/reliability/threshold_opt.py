"""Dependability-optimal predictor thresholds.

The paper keeps the two halves separate: Sect. 3.3 picks thresholds by
F-measure, Sect. 5 evaluates the resulting (precision, recall, fpr) in the
CTMC.  Closing the loop gives a better rule: **pick the threshold whose
resulting quality minimizes modeled unavailability** (or cost).  The
F-measure weighs false alarms and misses equally; the model knows that a
missed failure costs unprepared downtime while a false alarm costs only
``P_FP``-induced risk -- so the optimal operating point generally differs
from max-F.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError
from repro.prediction.metrics import ContingencyTable
from repro.reliability.rates import PFMParameters, PredictionQuality
from repro.reliability.reliability_fn import asymptotic_unavailability_ratio

_EPS = 1e-4


def quality_at_threshold(
    scores: np.ndarray, labels: np.ndarray, threshold: float
) -> PredictionQuality | None:
    """Measured quality at one threshold (None when degenerate).

    Degenerate = no warnings at all, or zero precision/recall, which the
    model's domain excludes.
    """
    table = ContingencyTable.from_scores(
        np.asarray(scores), np.asarray(labels, dtype=bool), threshold
    )
    if table.tp == 0:
        return None
    precision = min(max(table.precision, _EPS), 1.0)
    recall = min(max(table.recall, _EPS), 1.0)
    fpr = min(max(table.false_positive_rate, _EPS), 1.0 - _EPS)
    return PredictionQuality(precision=precision, recall=recall, fpr=fpr)


@dataclass(frozen=True)
class ThresholdOperatingPoint:
    """One candidate threshold with its measured quality and modeled ratio."""

    threshold: float
    quality: PredictionQuality
    unavailability_ratio: float


def threshold_ratio_curve(
    scores: np.ndarray,
    labels: np.ndarray,
    params: PFMParameters,
    n_candidates: int = 50,
) -> list[ThresholdOperatingPoint]:
    """The modeled unavailability ratio as a function of the threshold.

    Candidate thresholds are score quantiles; degenerate operating points
    are skipped.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=bool)
    if scores.size == 0 or not labels.any():
        raise ConfigurationError("need scores with at least one positive label")
    candidates = np.unique(
        np.quantile(scores, np.linspace(0.02, 0.98, n_candidates))
    )
    points: list[ThresholdOperatingPoint] = []
    for threshold in candidates:
        quality = quality_at_threshold(scores, labels, float(threshold))
        if quality is None:
            continue
        ratio = asymptotic_unavailability_ratio(
            replace(params, quality=quality)
        )
        points.append(
            ThresholdOperatingPoint(
                threshold=float(threshold),
                quality=quality,
                unavailability_ratio=ratio,
            )
        )
    if not points:
        raise ConfigurationError("no usable operating point found")
    return points


def dependability_optimal_threshold(
    scores: np.ndarray,
    labels: np.ndarray,
    params: PFMParameters,
    n_candidates: int = 50,
) -> ThresholdOperatingPoint:
    """The threshold minimizing the modeled unavailability ratio."""
    points = threshold_ratio_curve(scores, labels, params, n_candidates)
    return min(points, key=lambda p: p.unavailability_ratio)
