"""Closed-form steady-state availability -- the paper's Eq. 8.

.. math::

    A = \\frac{(r_A + r_p)\\, k\\, r_F}
             {k r_F (r_A + r_p) +
              r_A (P_{FP} r_{FP} + P_{TP} r_{TP} + k P_{TN} r_{TN} + k r_{FN})}

with ``rp = rTP + rFP + rTN + rFN`` the total prediction rate and
``rR = k rF``.  This formula follows from the global balance equations of
the Fig. 9 CTMC (the derivation is spelled out in DESIGN.md);
:class:`~repro.reliability.pfm_model.PFMModel` cross-checks it against a
numeric steady-state solve.
"""

from __future__ import annotations

from repro.reliability.rates import PFMParameters


def closed_form_availability(params: PFMParameters) -> float:
    """Evaluate Eq. 8 for the given parameter set."""
    p = params
    rates = p.rates()
    r_a, r_f, k = p.r_a, p.r_f, p.k
    r_p = rates.total
    numerator = (r_a + r_p) * k * r_f
    denominator = k * r_f * (r_a + r_p) + r_a * (
        p.p_fp * rates.r_fp
        + p.p_tp * rates.r_tp
        + k * p.p_tn * rates.r_tn
        + k * rates.r_fn
    )
    return numerator / denominator
