"""The 7-state CTMC availability/reliability model of the paper's Fig. 9.

States::

    S0   -- system up, no prediction pending
    STP  -- true positive prediction in progress (failure really imminent)
    SFP  -- false positive prediction in progress (false alarm)
    STN  -- true negative prediction in progress (correctly quiet)
    SFN  -- false negative prediction in progress (missed failure looming)
    SR   -- down, prepared / forced downtime (repair rate rR = k rF)
    SF   -- down, unprepared downtime (repair rate rF)

Transitions (rates), exactly as described in Sect. 5.3::

    S0  -> STP : rTP          S0  -> SFP : rFP
    S0  -> STN : rTN          S0  -> SFN : rFN
    STP -> SR  : PTP  * rA    STP -> S0 : (1 - PTP) * rA
    SFP -> SR  : PFP  * rA    SFP -> S0 : (1 - PFP) * rA
    STN -> SF  : PTN  * rA    STN -> S0 : (1 - PTN) * rA
    SFN -> SF  : rA           (an unpredicted failure always strikes)
    SR  -> S0  : rR           SF  -> S0 : rF
"""

from __future__ import annotations

import numpy as np

from repro.markov.ctmc import CTMC
from repro.markov.phase_type import PhaseTypeDistribution
from repro.reliability.availability import closed_form_availability
from repro.reliability.rates import PFMParameters

STATE_UP = "S0"
STATE_TP = "STP"
STATE_FP = "SFP"
STATE_TN = "STN"
STATE_FN = "SFN"
STATE_PREPARED_DOWN = "SR"
STATE_UNPREPARED_DOWN = "SF"

STATE_NAMES = (
    STATE_UP,
    STATE_TP,
    STATE_FP,
    STATE_TN,
    STATE_FN,
    STATE_PREPARED_DOWN,
    STATE_UNPREPARED_DOWN,
)

UP_STATES = (STATE_UP, STATE_TP, STATE_FP, STATE_TN, STATE_FN)
DOWN_STATES = (STATE_PREPARED_DOWN, STATE_UNPREPARED_DOWN)


class PFMModel:
    """Availability / reliability / hazard-rate model for a PFM system."""

    def __init__(self, params: PFMParameters) -> None:
        self.params = params
        self._ctmc = self._build_ctmc()

    def _build_ctmc(self) -> CTMC:
        p = self.params
        rates = p.rates()
        transition_rates = {
            (STATE_UP, STATE_TP): rates.r_tp,
            (STATE_UP, STATE_FP): rates.r_fp,
            (STATE_UP, STATE_TN): rates.r_tn,
            (STATE_UP, STATE_FN): rates.r_fn,
            (STATE_TP, STATE_PREPARED_DOWN): p.p_tp * p.r_a,
            (STATE_TP, STATE_UP): (1.0 - p.p_tp) * p.r_a,
            (STATE_FP, STATE_PREPARED_DOWN): p.p_fp * p.r_a,
            (STATE_FP, STATE_UP): (1.0 - p.p_fp) * p.r_a,
            (STATE_TN, STATE_UNPREPARED_DOWN): p.p_tn * p.r_a,
            (STATE_TN, STATE_UP): (1.0 - p.p_tn) * p.r_a,
            (STATE_FN, STATE_UNPREPARED_DOWN): p.r_a,
            (STATE_PREPARED_DOWN, STATE_UP): p.r_r,
            (STATE_UNPREPARED_DOWN, STATE_UP): p.r_f,
        }
        return CTMC.from_rates(STATE_NAMES, transition_rates)

    @property
    def ctmc(self) -> CTMC:
        """The underlying 7-state CTMC."""
        return self._ctmc

    # ------------------------------------------------------------------
    # Availability (Sect. 5.3)
    # ------------------------------------------------------------------

    def steady_state(self) -> dict[str, float]:
        """Steady-state probability of each named state."""
        pi = self._ctmc.steady_state()
        return dict(zip(STATE_NAMES, pi, strict=True))

    def availability(self) -> float:
        """Steady-state availability: probability mass in the up states (Eq. 7)."""
        pi = self.steady_state()
        return sum(pi[name] for name in UP_STATES)

    def availability_closed_form(self) -> float:
        """Eq. 8 evaluated directly (cross-check for :meth:`availability`)."""
        return closed_form_availability(self.params)

    def unavailability(self) -> float:
        """``1 - A``: probability mass in the down states."""
        return 1.0 - self.availability()

    def downtime_split(self) -> dict[str, float]:
        """Steady-state mass of prepared (SR) vs unprepared (SF) downtime."""
        pi = self.steady_state()
        return {name: pi[name] for name in DOWN_STATES}

    # ------------------------------------------------------------------
    # Reliability and hazard rate (Sect. 5.4)
    # ------------------------------------------------------------------

    def failure_time_distribution(self) -> PhaseTypeDistribution:
        """First-passage distribution into any down state (Eqs. 11-13).

        The two down states are merged and made absorbing; the initial
        distribution is ``alpha = [1, 0, 0, 0, 0]`` over the up states.
        """
        return PhaseTypeDistribution.from_ctmc(
            self._ctmc, list(DOWN_STATES), STATE_UP
        )

    def reliability(self, t: float) -> float:
        """``R(t)`` (Eq. 9)."""
        return self.failure_time_distribution().survival(t)

    def hazard_rate(self, t: float) -> float:
        """``h(t)`` (Eq. 10)."""
        return self.failure_time_distribution().hazard(t)

    def mttf_effective(self) -> float:
        """Mean time to the first failure under PFM."""
        return self.failure_time_distribution().mean()

    def evaluate_curves(self, times: np.ndarray) -> dict[str, np.ndarray]:
        """Reliability / pdf / hazard series over ``times`` (Fig. 10 data)."""
        return self.failure_time_distribution().evaluate(times)

    def __repr__(self) -> str:
        return f"PFMModel(availability={self.availability():.6f})"
