"""Proactive Fault Management (PFM) reproduction library.

This package reproduces the system described in Salfner & Malek,
"Architecting Dependable Systems with Proactive Fault Management":

- ``repro.simulator``    -- discrete-event simulation engine
- ``repro.faults``       -- fault -> error -> symptom -> failure chain
- ``repro.monitoring``   -- monitoring infrastructure (time series + error log)
- ``repro.telecom``      -- synthetic telecom SCP case-study system
- ``repro.markov``       -- DTMC/CTMC/HMM/HSMM mathematics
- ``repro.prediction``   -- online failure prediction (UBF, HSMM, baselines)
- ``repro.actions``      -- prediction-driven countermeasures
- ``repro.reliability``  -- CTMC availability/reliability/hazard model
- ``repro.core``         -- MEA cycle, blueprint architecture, experiments
- ``repro.fleet``        -- sharded multi-seed experiment campaigns
- ``repro.resilience``   -- hardening + PFM-targeted fault injection
- ``repro.telemetry``    -- sim-time spans, events and metrics

The curated top-level surface re-exports the experiment API — describe a
run with a :class:`RunSpec`, fan a grid with :func:`run_fleet`::

    from repro import RunSpec, grid, run_fleet
    report = run_fleet(grid(["closed-loop"], seeds=range(21, 25)))
    print(report.summary())

Everything re-exported here loads lazily: ``import repro`` stays cheap.
"""

from repro.version import __version__

__all__ = [
    "__version__",
    # fleet: the unified experiment API
    "RunSpec",
    "RunResult",
    "FleetReport",
    "grid",
    "run_fleet",
    # experiments
    "run_closed_loop",
    "run_campaign",
    "CampaignConfig",
    # predictors
    "make_predictor",
    "available_predictors",
    # telemetry
    "TelemetryHub",
]

_LAZY = {
    "RunSpec": ("repro.fleet.spec", "RunSpec"),
    "RunResult": ("repro.fleet.spec", "RunResult"),
    "FleetReport": ("repro.fleet.aggregate", "FleetReport"),
    "grid": ("repro.fleet.spec", "grid"),
    "run_fleet": ("repro.fleet.runner", "run_fleet"),
    "run_closed_loop": ("repro.core.experiment", "run_closed_loop"),
    "run_campaign": ("repro.resilience.campaign", "run_campaign"),
    "CampaignConfig": ("repro.resilience.campaign", "CampaignConfig"),
    "make_predictor": ("repro.prediction.registry", "make_predictor"),
    "available_predictors": ("repro.prediction.registry", "available_predictors"),
    "TelemetryHub": ("repro.telemetry.hub", "TelemetryHub"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
