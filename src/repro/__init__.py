"""Proactive Fault Management (PFM) reproduction library.

This package reproduces the system described in Salfner & Malek,
"Architecting Dependable Systems with Proactive Fault Management":

- ``repro.simulator``    -- discrete-event simulation engine
- ``repro.faults``       -- fault -> error -> symptom -> failure chain
- ``repro.monitoring``   -- monitoring infrastructure (time series + error log)
- ``repro.telecom``      -- synthetic telecom SCP case-study system
- ``repro.markov``       -- DTMC/CTMC/HMM/HSMM mathematics
- ``repro.prediction``   -- online failure prediction (UBF, HSMM, baselines)
- ``repro.actions``      -- prediction-driven countermeasures
- ``repro.reliability``  -- CTMC availability/reliability/hazard model
- ``repro.core``         -- MEA cycle, blueprint architecture, experiments

Quickstart::

    from repro.reliability import PFMParameters, PFMModel
    params = PFMParameters.paper_example()
    model = PFMModel(params)
    print(model.availability())
"""

from repro.version import __version__

__all__ = ["__version__"]
