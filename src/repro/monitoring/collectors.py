"""Periodic collectors: sample gauges into a time-series store.

A :class:`Gauge` is a named zero-argument callable returning the current
value of one system variable; :class:`PeriodicCollector` is a simulation
process sampling all registered gauges at a (runtime-adjustable) interval.
:func:`sar_gauges` names the variable set after the System Activity
Reporter data the paper's case study used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigurationError
from repro.monitoring.timeseries import TimeSeriesStore
from repro.simulator.engine import Engine
from repro.simulator.events import Timeout


@dataclass(frozen=True)
class Gauge:
    """A named probe for one monitored variable."""

    variable: str
    read: Callable[[], float]


#: Variable names mirroring the SAR data of the case study.
SAR_VARIABLES = (
    "cpu_utilization",
    "memory_used_mb",
    "memory_free_mb",
    "swap_activity",
    "queue_length",
    "request_rate",
    "response_time_ms",
    "semaphore_ops",
    "disk_io",
    "context_switches",
)


def sar_gauges(reader: Callable[[str], float]) -> list[Gauge]:
    """Build the standard SAR gauge set from a ``variable -> value`` reader."""
    return [
        Gauge(variable=name, read=(lambda n=name: reader(n)))
        for name in SAR_VARIABLES
    ]


class PeriodicCollector:
    """Samples gauges into a store at a fixed (but adjustable) interval."""

    def __init__(
        self,
        engine: Engine,
        store: TimeSeriesStore,
        gauges: list[Gauge],
        interval: float = 60.0,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("sampling interval must be positive")
        self.engine = engine
        self.store = store
        self.gauges = list(gauges)
        self.interval = interval
        self.samples_taken = 0
        self._running = False

    def start(self) -> None:
        """Launch the sampling process (idempotent)."""
        if self._running:
            return
        self._running = True
        self.engine.process(self._run(), name="collector")

    def stop(self) -> None:
        self._running = False

    def add_gauge(self, gauge: Gauge) -> None:
        """Plug in a new data source at runtime (blueprint requirement)."""
        self.gauges.append(gauge)

    def set_interval(self, interval: float) -> None:
        """Adjust the sampling rate on the fly (adaptive monitoring)."""
        if interval <= 0:
            raise ConfigurationError("sampling interval must be positive")
        self.interval = interval

    def sample_once(self) -> dict[str, float]:
        """Take one sample of every gauge right now."""
        values = {gauge.variable: float(gauge.read()) for gauge in self.gauges}
        self.store.record_many(self.engine.now, values)
        self.samples_taken += 1
        return values

    def _run(self):
        while self._running:
            self.sample_once()
            yield Timeout(self.interval)
