"""Monitoring infrastructure (the "M" of the MEA cycle).

The blueprint (paper Sect. 6) demands a pluggable, runtime-adaptable
monitoring layer producing two kinds of data:

- periodic numeric samples of system variables (symptom monitoring;
  SAR-style) -- :class:`~repro.monitoring.timeseries.TimeSeriesStore` fed
  by :class:`~repro.monitoring.collectors.PeriodicCollector`,
- event-driven error reports (detected error reporting) --
  :class:`~repro.monitoring.logbook.ErrorLog`.

:class:`~repro.monitoring.sources.SourceRegistry` provides the pluggable
data-source registry, and
:class:`~repro.monitoring.adaptive.AdaptiveMonitor` implements on-the-fly
adjustment of sampling rates.
"""

from repro.monitoring.adaptive import AdaptiveMonitor
from repro.monitoring.collectors import Gauge, PeriodicCollector, sar_gauges
from repro.monitoring.logbook import ErrorLog, FailureLog
from repro.monitoring.records import MonitoringRecord
from repro.monitoring.sources import MonitoringSource, SourceRegistry
from repro.monitoring.timeseries import TimeSeries, TimeSeriesStore

__all__ = [
    "AdaptiveMonitor",
    "Gauge",
    "PeriodicCollector",
    "sar_gauges",
    "ErrorLog",
    "FailureLog",
    "MonitoringRecord",
    "MonitoringSource",
    "SourceRegistry",
    "TimeSeries",
    "TimeSeriesStore",
]
