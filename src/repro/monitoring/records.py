"""Record types for monitoring data."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MonitoringRecord:
    """One sample of one monitored variable."""

    time: float
    variable: str
    value: float


@dataclass(frozen=True)
class EventSequence:
    """An event-driven temporal sequence of error events.

    This is the paper's "error sequence": the timestamps and message ids of
    all errors within a data window (Fig. 6).  Times are absolute.
    """

    times: np.ndarray
    message_ids: np.ndarray
    label: bool = False  # True for failure sequences
    origin: float = 0.0  # window start, for traceability

    def __post_init__(self) -> None:
        object.__setattr__(self, "times", np.asarray(self.times, dtype=float))
        object.__setattr__(
            self, "message_ids", np.asarray(self.message_ids, dtype=int)
        )
        if self.times.shape != self.message_ids.shape:
            raise ValueError("times and message_ids must have equal length")

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def delays(self) -> np.ndarray:
        """Inter-event delays (first event measured from the window start)."""
        if self.times.size == 0:
            return np.empty(0)
        return np.diff(np.concatenate([[self.origin], self.times]))
