"""Pluggable monitoring-source registry.

The blueprint (Sect. 6) requires "a robust and flexible monitoring
infrastructure ... pluggable such that new monitoring data sources can be
incorporated easily".  A :class:`MonitoringSource` bundles the gauges and
error reporting of one component or layer; the :class:`SourceRegistry`
lets sources appear and disappear at runtime.
"""

from __future__ import annotations

from typing import Iterator, Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.monitoring.collectors import Gauge


@runtime_checkable
class MonitoringSource(Protocol):
    """What a component must implement to be monitorable."""

    name: str

    def gauges(self) -> list[Gauge]:
        """The numeric variables this source exposes."""


class SourceRegistry:
    """Registry of live monitoring sources (keyed by unique name)."""

    def __init__(self) -> None:
        self._sources: dict[str, MonitoringSource] = {}

    def register(self, source: MonitoringSource) -> None:
        if source.name in self._sources:
            raise ConfigurationError(f"source {source.name!r} already registered")
        self._sources[source.name] = source

    def unregister(self, name: str) -> MonitoringSource:
        try:
            return self._sources.pop(name)
        except KeyError as exc:
            raise ConfigurationError(f"unknown source {name!r}") from exc

    def get(self, name: str) -> MonitoringSource:
        try:
            return self._sources[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown source {name!r}") from exc

    def all_gauges(self) -> list[Gauge]:
        """Gauges of all registered sources, names prefixed by source."""
        gauges: list[Gauge] = []
        for source in self._sources.values():
            for gauge in source.gauges():
                gauges.append(
                    Gauge(
                        variable=f"{source.name}.{gauge.variable}",
                        read=gauge.read,
                    )
                )
        return gauges

    @property
    def names(self) -> list[str]:
        return sorted(self._sources)

    def __len__(self) -> int:
        return len(self._sources)

    def __iter__(self) -> Iterator[MonitoringSource]:
        return iter(self._sources.values())
