"""Append-only time series storage for monitoring data.

Samples arrive in time order (the collectors guarantee it); queries are
window extractions and grid resampling, which is exactly what the
symptom-based predictors (UBF, trend analysis, MSET) consume.
"""

from __future__ import annotations

import bisect
from typing import Iterable

import numpy as np

from repro.errors import ConfigurationError


class TimeSeries:
    """One variable's ``(time, value)`` samples, kept in time order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def append(self, time: float, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ConfigurationError(
                f"samples must arrive in time order ({time} < {self._times[-1]})"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    def window(self, start: float, end: float) -> tuple[np.ndarray, np.ndarray]:
        """Samples with ``start <= t < end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return np.asarray(self._times[lo:hi]), np.asarray(self._values[lo:hi])

    def latest(self, n: int = 1) -> np.ndarray:
        """The most recent ``n`` values (may be fewer early on)."""
        return np.asarray(self._values[-n:])

    def value_at(self, time: float) -> float:
        """Last value sampled at or before ``time`` (NaN if none)."""
        idx = bisect.bisect_right(self._times, time) - 1
        if idx < 0:
            return float("nan")
        return self._values[idx]

    def resample(self, grid: Iterable[float]) -> np.ndarray:
        """Sample-and-hold values at each grid point (NaN before first)."""
        return np.asarray([self.value_at(t) for t in grid])

    def mean_over(self, start: float, end: float) -> float:
        """Mean of samples in the window (NaN when empty)."""
        _, values = self.window(start, end)
        return float(values.mean()) if values.size else float("nan")


class TimeSeriesStore:
    """A named collection of :class:`TimeSeries`."""

    def __init__(self) -> None:
        self._series: dict[str, TimeSeries] = {}

    def record(self, time: float, variable: str, value: float) -> None:
        self.series(variable).append(time, value)

    def record_many(self, time: float, values: dict[str, float]) -> None:
        for variable, value in values.items():
            self.record(time, variable, value)

    def series(self, variable: str) -> TimeSeries:
        """The series for ``variable`` (created on first use)."""
        if variable not in self._series:
            self._series[variable] = TimeSeries(variable)
        return self._series[variable]

    @property
    def variables(self) -> list[str]:
        return sorted(self._series)

    def __contains__(self, variable: str) -> bool:
        return variable in self._series

    def matrix(
        self, variables: list[str], grid: Iterable[float]
    ) -> np.ndarray:
        """Sample-and-hold design matrix: rows = grid points, cols = variables.

        This is the feature matrix fed to symptom-based predictors.
        """
        grid = list(grid)
        columns = [self.series(v).resample(grid) for v in variables]
        return np.column_stack(columns) if columns else np.empty((len(grid), 0))

    def __repr__(self) -> str:
        return f"TimeSeriesStore(variables={self.variables})"
