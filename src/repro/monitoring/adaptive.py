"""Runtime-adaptive monitoring.

Sect. 6: "monitoring should be adaptable during runtime.  Failure
predictors ... should be able to adjust, e.g., the frequency or precision
of the data for a monitored object."

:class:`AdaptiveMonitor` watches the recent variability of each variable
and speeds up sampling for volatile variables while slowing it down for
quiet ones, within configured bounds.  It exposes the same hook a failure
predictor would call when it decides a variable needs finer data.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.monitoring.collectors import PeriodicCollector
from repro.monitoring.timeseries import TimeSeriesStore


class AdaptiveMonitor:
    """Adjusts a collector's sampling interval from observed volatility.

    Parameters
    ----------
    collector:
        The collector whose interval is managed.
    store:
        Where the samples land (used to measure variability).
    min_interval / max_interval:
        Bounds for the adapted interval.
    target_cv:
        Desired coefficient of variation per window; variables exceeding
        it pull the interval down proportionally.
    window:
        Look-back horizon (in time units) for the variability estimate.
    """

    def __init__(
        self,
        collector: PeriodicCollector,
        store: TimeSeriesStore,
        min_interval: float = 5.0,
        max_interval: float = 300.0,
        target_cv: float = 0.05,
        window: float = 600.0,
    ) -> None:
        if not 0 < min_interval <= max_interval:
            raise ConfigurationError("need 0 < min_interval <= max_interval")
        if target_cv <= 0 or window <= 0:
            raise ConfigurationError("target_cv and window must be positive")
        self.collector = collector
        self.store = store
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.target_cv = target_cv
        self.window = window
        self._pinned: dict[str, float] = {}

    def request_precision(self, variable: str, interval: float) -> None:
        """Predictor hook: pin a variable to at least this sampling rate."""
        if interval <= 0:
            raise ConfigurationError("interval must be positive")
        self._pinned[variable] = max(self.min_interval, interval)
        self._apply()

    def release_precision(self, variable: str) -> None:
        """Remove a predictor's precision pin."""
        self._pinned.pop(variable, None)
        self._apply()

    def observed_cv(self, variable: str, now: float) -> float:
        """Coefficient of variation of the variable over the window."""
        _, values = self.store.series(variable).window(now - self.window, now)
        if values.size < 3:
            return 0.0
        mean = float(np.mean(values))
        if abs(mean) < 1e-12:
            return 0.0
        return float(np.std(values) / abs(mean))

    def adapt(self, now: float) -> float:
        """Re-evaluate all variables and set the collector interval.

        Returns the interval chosen.  Volatile variables (cv above target)
        shrink the interval proportionally; all-quiet systems drift back
        toward ``max_interval``.
        """
        worst_ratio = 0.0
        for gauge in self.collector.gauges:
            cv = self.observed_cv(gauge.variable, now)
            worst_ratio = max(worst_ratio, cv / self.target_cv)
        if worst_ratio <= 1.0:
            interval = min(self.collector.interval * 1.5, self.max_interval)
        else:
            interval = max(self.collector.interval / worst_ratio, self.min_interval)
        self.collector.set_interval(self._respect_pins(interval))
        return self.collector.interval

    def _respect_pins(self, interval: float) -> float:
        if self._pinned:
            interval = min(interval, min(self._pinned.values()))
        return float(np.clip(interval, self.min_interval, self.max_interval))

    def _apply(self) -> None:
        self.collector.set_interval(self._respect_pins(self.collector.interval))
