"""Event-driven logs: the error log and the failure log.

The error log is the input of detected-error-reporting predictors (HSMM,
DFT, event sets...); the failure log is both the input of failure-tracking
predictors and the label source for supervised training.
"""

from __future__ import annotations

import bisect
from collections import Counter
from typing import Iterator

from repro.faults.model import ErrorRecord, FailureRecord


class ErrorLog:
    """Append-only log of detected errors, ordered by time."""

    def __init__(self) -> None:
        self._records: list[ErrorRecord] = []
        self._times: list[float] = []

    def report(self, record: ErrorRecord) -> None:
        """Append a record (insertion keeps time order)."""
        idx = bisect.bisect_right(self._times, record.time)
        self._records.insert(idx, record)
        self._times.insert(idx, record.time)

    def window(self, start: float, end: float) -> list[ErrorRecord]:
        """Records with ``start <= time < end``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return self._records[lo:hi]

    def counts_by_message(self, start: float, end: float) -> Counter:
        """Histogram of message ids within the window."""
        return Counter(r.message_id for r in self.window(start, end))

    def rate(self, start: float, end: float) -> float:
        """Errors per time unit within the window."""
        if end <= start:
            return 0.0
        return len(self.window(start, end)) / (end - start)

    def message_vocabulary(self) -> list[int]:
        """Sorted list of all message ids seen."""
        return sorted({r.message_id for r in self._records})

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ErrorRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[ErrorRecord]:
        return list(self._records)


class FailureLog:
    """Append-only log of service-level failures."""

    def __init__(self) -> None:
        self._records: list[FailureRecord] = []
        self._times: list[float] = []

    def report(self, record: FailureRecord) -> None:
        idx = bisect.bisect_right(self._times, record.time)
        self._records.insert(idx, record)
        self._times.insert(idx, record.time)

    def window(self, start: float, end: float) -> list[FailureRecord]:
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return self._records[lo:hi]

    def any_failure_in(self, start: float, end: float) -> bool:
        """Whether a failure *starts* within ``[start, end)``."""
        return bool(self.window(start, end))

    def failure_times(self) -> list[float]:
        return list(self._times)

    def total_downtime(self) -> float:
        return sum(r.duration for r in self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FailureRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[FailureRecord]:
        return list(self._records)
