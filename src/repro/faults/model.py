"""Record types for the dependability chain of the paper's Fig. 2.

- :class:`Fault` -- the root cause; dormant until activated.
- :class:`ErrorRecord` -- an incorrect-state manifestation; *detected*
  errors are what gets written to the error log (reporting), undetected
  ones can only be found by auditing.
- :class:`Symptom` -- out-of-norm behaviour of a monitored variable caused
  by an (un)detected error.
- :class:`FailureRecord` -- deviation of the delivered service from the
  specification, observable from outside.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.faults.classification import CristianFailureMode, FaultPersistence

_fault_ids = itertools.count(1)


class FaultState(enum.Enum):
    """Lifecycle of a fault."""

    DORMANT = "dormant"
    ACTIVE = "active"
    REMOVED = "removed"


@dataclass
class Fault:
    """The adjudged or hypothesized root cause of errors.

    Attributes
    ----------
    kind:
        Free-form fault kind tag (e.g. ``"memory-leak"``).
    component:
        Where the fault resides.
    persistence:
        Transient / intermittent / permanent.
    state:
        Lifecycle state; faults start dormant and are activated by
        injectors or load.
    """

    kind: str
    component: str
    persistence: FaultPersistence = FaultPersistence.PERMANENT
    state: FaultState = FaultState.DORMANT
    fault_id: int = field(default_factory=lambda: next(_fault_ids))
    activated_at: float | None = None

    def activate(self, time: float) -> None:
        """Mark the fault active; the first activation time is remembered."""
        self.state = FaultState.ACTIVE
        if self.activated_at is None:
            self.activated_at = time

    def deactivate(self) -> None:
        """Return an active fault to dormancy (intermittent behaviour)."""
        if self.state is FaultState.ACTIVE:
            self.state = FaultState.DORMANT

    def remove(self) -> None:
        """Permanently remove the fault (repair of the root cause)."""
        self.state = FaultState.REMOVED


@dataclass(frozen=True)
class ErrorRecord:
    """One error event, as it would appear in a log.

    ``message_id`` is the categorical event type the HSMM predictor
    consumes (the paper: "error events mostly are discrete, categorical
    data such as event IDs, component IDs").  ``detected`` distinguishes
    reported errors from silent ones (auditing-only).
    """

    time: float
    message_id: int
    component: str
    fault_id: int | None = None
    severity: int = 1
    detected: bool = True
    message: str = ""


@dataclass(frozen=True)
class Symptom:
    """Out-of-norm behaviour of one monitored variable."""

    time: float
    variable: str
    value: float
    expected: float
    deviation: float  # (value - expected) in units of the normal spread


@dataclass(frozen=True)
class FailureRecord:
    """A service-level failure (the system missed its specification)."""

    time: float
    mode: CristianFailureMode = CristianFailureMode.TIMING
    component: str = "system"
    duration: float = 0.0
    description: str = ""

    @property
    def end_time(self) -> float:
        """When the failure's downtime ends (time + duration)."""
        return self.time + self.duration
