"""Fault and failure classifications referenced by the paper (Sect. 3.1).

Two classic taxonomies:

- persistence: transient / intermittent / permanent faults
  (Siewiorek & Swarz),
- behaviour at the service interface: the Cristian failure-mode hierarchy
  (crash < omission < timing < byzantine), later extended by Laranjeira
  and Barborak.
"""

from __future__ import annotations

import enum


class FaultPersistence(enum.Enum):
    """How long a fault stays active once it manifests."""

    TRANSIENT = "transient"  # appears once, vanishes by itself
    INTERMITTENT = "intermittent"  # appears and disappears repeatedly
    PERMANENT = "permanent"  # stays until repaired


class CristianFailureMode(enum.IntEnum):
    """Failure modes ordered by severity (each contains the previous).

    The integer ordering encodes the containment hierarchy: a byzantine-
    tolerant mechanism also tolerates timing, omission and crash failures.
    """

    CRASH = 1  # component stops and stays silent
    OMISSION = 2  # some responses are missing
    TIMING = 3  # responses correct in value but late/early
    BYZANTINE = 4  # arbitrary, possibly malicious behaviour

    def covers(self, other: "CristianFailureMode") -> bool:
        """Whether tolerating ``self`` implies tolerating ``other``."""
        return self >= other
