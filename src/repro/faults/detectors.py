"""Error detectors (the paper's Sect. 4.3 detection mechanisms).

"Detection mechanisms such as coding checks, replication checks, timing
checks or plausibility checks trigger the recovery."  Detectors turn an
incorrect state into a *detected* error, i.e. an
:class:`~repro.faults.model.ErrorRecord` with ``detected=True`` suitable
for the error log.
"""

from __future__ import annotations

import abc
import zlib
from typing import Any, Sequence

from repro.faults.model import ErrorRecord


class ErrorDetector(abc.ABC):
    """Base class: checks one aspect of system state."""

    #: Message-id block for errors raised by this detector family.
    message_base = 900

    def __init__(self, component: str) -> None:
        self.component = component
        self.checks_run = 0
        self.errors_found = 0

    def check(self, time: float, observation: Any) -> ErrorRecord | None:
        """Run the check; returns an error record when the state is bad."""
        self.checks_run += 1
        problem = self._evaluate(observation)
        if problem is None:
            return None
        self.errors_found += 1
        return ErrorRecord(
            time=time,
            message_id=self.message_base,
            component=self.component,
            detected=True,
            message=problem,
        )

    @abc.abstractmethod
    def _evaluate(self, observation: Any) -> str | None:
        """Return a problem description, or None when the state is fine."""


class TimingCheck(ErrorDetector):
    """Flags observations (response times) above a deadline."""

    message_base = 910

    def __init__(self, component: str, deadline: float) -> None:
        super().__init__(component)
        self.deadline = deadline

    def _evaluate(self, observation: Any) -> str | None:
        value = float(observation)
        if value > self.deadline:
            return f"deadline exceeded: {value:.4f} > {self.deadline:.4f}"
        return None


class PlausibilityCheck(ErrorDetector):
    """Flags values outside a plausible [low, high] range."""

    message_base = 920

    def __init__(self, component: str, low: float, high: float) -> None:
        super().__init__(component)
        if low > high:
            raise ValueError("low must not exceed high")
        self.low = low
        self.high = high

    def _evaluate(self, observation: Any) -> str | None:
        value = float(observation)
        if not self.low <= value <= self.high:
            return f"implausible value {value:.4f} outside [{self.low}, {self.high}]"
        return None


class CodingCheck(ErrorDetector):
    """Checksum-based corruption detection over byte payloads.

    ``check`` expects ``(payload: bytes, expected_crc: int)`` tuples; the
    expected CRC is what the writer stored alongside the data.
    """

    message_base = 930

    def _evaluate(self, observation: Any) -> str | None:
        payload, expected_crc = observation
        actual = zlib.crc32(payload)
        if actual != expected_crc:
            return f"checksum mismatch: {actual:#010x} != {expected_crc:#010x}"
        return None

    @staticmethod
    def protect(payload: bytes) -> tuple[bytes, int]:
        """Produce a ``(payload, crc)`` pair for later verification."""
        return payload, zlib.crc32(payload)


class ReplicationCheck(ErrorDetector):
    """Majority voting over replicated results.

    ``check`` expects a sequence of replica outputs; a disagreement of any
    replica with the majority is a detected error.
    """

    message_base = 940

    def _evaluate(self, observation: Any) -> str | None:
        replicas: Sequence[Any] = list(observation)
        if len(replicas) < 2:
            return None
        counts: dict[Any, int] = {}
        for value in replicas:
            counts[value] = counts.get(value, 0) + 1
        majority_value, majority_count = max(counts.items(), key=lambda kv: kv[1])
        if majority_count == len(replicas):
            return None
        dissent = len(replicas) - majority_count
        return f"{dissent}/{len(replicas)} replicas disagree with majority {majority_value!r}"

    @staticmethod
    def majority(replicas: Sequence[Any]) -> Any:
        """The majority value (ties broken by first occurrence)."""
        counts: dict[Any, int] = {}
        for value in replicas:
            counts[value] = counts.get(value, 0) + 1
        return max(counts.items(), key=lambda kv: kv[1])[0]
