"""The fault -> error -> symptom -> failure chain (paper Fig. 2).

The paper's taxonomy of prediction methods is organized around how flaws
become visible: faults (testing), undetected errors (auditing), symptoms
(monitoring), detected errors (reporting) and failures (tracking).  This
package provides the corresponding record types, fault classifications,
fault injectors (used by the telecom simulator to create realistic failure
behaviour) and error detectors (coding / timing / plausibility /
replication checks, Sect. 4.3).
"""

from repro.faults.classification import (
    CristianFailureMode,
    FaultPersistence,
)
from repro.faults.detectors import (
    CodingCheck,
    ErrorDetector,
    PlausibilityCheck,
    ReplicationCheck,
    TimingCheck,
)
from repro.faults.faultload import FaultActivation, FaultLoad
from repro.faults.injectors import (
    FaultInjector,
    InjectionTarget,
    IntermittentErrorInjector,
    MemoryLeakInjector,
    OverloadInjector,
    ProcessHangInjector,
    StateCorruptionInjector,
)
from repro.faults.model import (
    ErrorRecord,
    FailureRecord,
    Fault,
    FaultState,
    Symptom,
)

__all__ = [
    "CristianFailureMode",
    "FaultPersistence",
    "CodingCheck",
    "ErrorDetector",
    "PlausibilityCheck",
    "ReplicationCheck",
    "TimingCheck",
    "FaultActivation",
    "FaultLoad",
    "FaultInjector",
    "InjectionTarget",
    "IntermittentErrorInjector",
    "MemoryLeakInjector",
    "OverloadInjector",
    "ProcessHangInjector",
    "StateCorruptionInjector",
    # lazily loaded from repro.faults.chaos (the fleet chaos harness):
    "ChaosConfig",
    "ChaosInjector",
    "TornArtifactError",
    "active_chaos",
    "clear_chaos",
    "install_chaos",
    "parse_chaos",
    # lazily loaded from repro.faults.pfm_injectors (which needs
    # repro.actions, itself a consumer of this package):
    "ActionFailureInjector",
    "FlakyActionProxy",
    "FlakyPredictorProxy",
    "MonitoringDropoutInjector",
    "ObservationCorruptionInjector",
    "PFMInjector",
    "PredictorFaultInjector",
    "PredictorLatencyInjector",
    "flaky_repertoire",
    "ErrorRecord",
    "FailureRecord",
    "Fault",
    "FaultState",
    "Symptom",
]

_CHAOS_EXPORTS = {
    "ChaosConfig",
    "ChaosInjector",
    "TornArtifactError",
    "active_chaos",
    "clear_chaos",
    "install_chaos",
    "parse_chaos",
}

_PFM_INJECTOR_EXPORTS = {
    "ActionFailureInjector",
    "FlakyActionProxy",
    "FlakyPredictorProxy",
    "MonitoringDropoutInjector",
    "ObservationCorruptionInjector",
    "PFMInjector",
    "PredictorFaultInjector",
    "PredictorLatencyInjector",
    "flaky_repertoire",
}


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.faults import chaos

        return getattr(chaos, name)
    if name in _PFM_INJECTOR_EXPORTS:
        from repro.faults import pfm_injectors

        return getattr(pfm_injectors, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
