"""Fault injectors.

Injectors turn dormant :class:`~repro.faults.model.Fault` instances into
running degradation processes against an :class:`InjectionTarget` -- the
small protocol the telecom components implement.  The injector families
mirror the error/symptom patterns the paper discusses:

- :class:`MemoryLeakInjector` -- the paper's running example: slow resource
  depletion producing symptoms long before errors are detected,
- :class:`ProcessHangInjector` -- a worker stops serving (capacity loss),
- :class:`StateCorruptionInjector` -- latent state corruption that surfaces
  as bursts of detected errors,
- :class:`OverloadInjector` -- load spike beyond provisioned capacity,
- :class:`IntermittentErrorInjector` -- background error noise unrelated to
  failures (what makes prediction hard).
"""

from __future__ import annotations

import abc
from typing import Protocol, runtime_checkable

import numpy as np

from repro.faults.classification import FaultPersistence
from repro.faults.model import Fault
from repro.simulator.engine import Engine
from repro.simulator.events import Timeout


@runtime_checkable
class InjectionTarget(Protocol):
    """What a component must expose for injectors to act on it.

    The telecom components implement this protocol; tests use lightweight
    fakes.
    """

    name: str

    def leak_memory(self, megabytes: float) -> None:
        """Consume memory that is never freed."""

    def degrade_capacity(self, fraction: float) -> None:
        """Reduce effective service capacity by ``fraction`` in [0, 1]."""

    def restore_capacity(self) -> None:
        """Undo capacity degradation (e.g. hung worker restarted)."""

    def corrupt_state(self, amount: float) -> None:
        """Increase latent state corruption."""

    def add_background_load(self, delta: float) -> None:
        """Add (or with negative ``delta`` remove) background load."""

    def emit_error(self, message_id: int, fault_id: int | None, severity: int) -> None:
        """Write a detected error to the component's log."""


class FaultInjector(abc.ABC):
    """Base class: owns a fault and drives its activation over time."""

    #: Error-log message-id block used by this injector family.
    message_base: int = 0

    def __init__(
        self,
        target: InjectionTarget,
        rng: np.random.Generator,
        persistence: FaultPersistence = FaultPersistence.PERMANENT,
    ) -> None:
        self.target = target
        self.rng = rng
        self.fault = Fault(
            kind=self.kind(), component=target.name, persistence=persistence
        )
        self.active = False

    @classmethod
    def kind(cls) -> str:
        """Human-readable fault kind tag."""
        return cls.__name__.replace("Injector", "").lower()

    def start(self, engine: Engine) -> None:
        """Activate the fault and launch the degradation process."""
        self.fault.activate(engine.now)
        self.active = True
        engine.process(self._run(engine), name=f"inject:{self.kind()}:{self.target.name}")

    def stop(self) -> None:
        """Deactivate (the running process observes ``self.active``)."""
        self.active = False
        self.fault.deactivate()

    @abc.abstractmethod
    def _run(self, engine: Engine):
        """Generator implementing the degradation process."""


class MemoryLeakInjector(FaultInjector):
    """Leak memory at ``rate_mb`` per period; occasionally log allocation
    warnings once leakage is substantial (errors follow symptoms)."""

    message_base = 100

    def __init__(
        self,
        target: InjectionTarget,
        rng: np.random.Generator,
        rate_mb: float = 2.0,
        period: float = 30.0,
        warn_after_mb: float = 150.0,
    ) -> None:
        super().__init__(target, rng)
        self.rate_mb = rate_mb
        self.period = period
        self.warn_after_mb = warn_after_mb
        self.leaked = 0.0

    def _run(self, engine: Engine):
        while self.active:
            yield Timeout(self.rng.exponential(self.period))
            if not self.active:
                return
            amount = self.rng.gamma(2.0, self.rate_mb / 2.0)
            self.target.leak_memory(amount)
            self.leaked += amount
            if self.leaked > self.warn_after_mb and self.rng.random() < 0.4:
                self.target.emit_error(
                    self.message_base + int(self.rng.integers(0, 3)),
                    self.fault.fault_id,
                    severity=2,
                )


class ProcessHangInjector(FaultInjector):
    """Worker processes hang one after another: capacity erodes in steps
    (a cascading hang), each step logging timeout errors.

    The progressive erosion matters for prediction: errors appear minutes
    before the capacity loss is large enough to breach the SLA, which is
    the window online failure prediction lives in.
    """

    message_base = 200

    def __init__(
        self,
        target: InjectionTarget,
        rng: np.random.Generator,
        initial_loss: float = 0.2,
        step_loss: float = 0.06,
        max_loss: float = 0.8,
        step_period: float = 80.0,
    ) -> None:
        super().__init__(target, rng)
        self.initial_loss = initial_loss
        self.step_loss = step_loss
        self.max_loss = max_loss
        self.step_period = step_period
        self._applied = 0.0

    def _run(self, engine: Engine):
        self.target.degrade_capacity(self.initial_loss)
        self._applied = self.initial_loss
        self.target.emit_error(self.message_base, self.fault.fault_id, severity=3)
        while self.active:
            yield Timeout(self.rng.exponential(self.step_period))
            if not self.active:
                break
            if self._applied < self.max_loss:
                self.target.degrade_capacity(self.step_loss)
                self._applied += self.step_loss
            self.target.emit_error(
                self.message_base + 1 + int(self.rng.integers(0, 2)),
                self.fault.fault_id,
                severity=2,
            )
        self.target.restore_capacity()
        self._applied = 0.0


class StateCorruptionInjector(FaultInjector):
    """Latent corruption accumulates, surfacing as error bursts."""

    message_base = 300

    def __init__(
        self,
        target: InjectionTarget,
        rng: np.random.Generator,
        growth: float = 0.02,
        period: float = 25.0,
        burst_threshold: float = 0.3,
    ) -> None:
        super().__init__(target, rng)
        self.growth = growth
        self.period = period
        self.burst_threshold = burst_threshold
        self.level = 0.0

    def _run(self, engine: Engine):
        while self.active:
            yield Timeout(self.rng.exponential(self.period))
            if not self.active:
                return
            increment = self.rng.exponential(self.growth)
            self.level += increment
            self.target.corrupt_state(increment)
            if self.level > self.burst_threshold:
                burst = 1 + int(self.rng.poisson(2))
                for _ in range(burst):
                    self.target.emit_error(
                        self.message_base + int(self.rng.integers(0, 4)),
                        self.fault.fault_id,
                        severity=2,
                    )


class OverloadInjector(FaultInjector):
    """A load spike beyond provisioned capacity (e.g. traffic storm)."""

    message_base = 400

    def __init__(
        self,
        target: InjectionTarget,
        rng: np.random.Generator,
        extra_load: float = 0.5,
        ramp_steps: int = 5,
        step_period: float = 30.0,
    ) -> None:
        super().__init__(target, rng)
        self.extra_load = extra_load
        self.ramp_steps = ramp_steps
        self.step_period = step_period
        self._applied = 0.0

    def _run(self, engine: Engine):
        step = self.extra_load / self.ramp_steps
        for _ in range(self.ramp_steps):
            if not self.active:
                break
            self.target.add_background_load(step)
            self._applied += step
            if self._applied > self.extra_load * 0.5:
                self.target.emit_error(
                    self.message_base + int(self.rng.integers(0, 2)),
                    self.fault.fault_id,
                    severity=1,
                )
            yield Timeout(self.step_period)
        # Hold the overload while active.
        while self.active:
            yield Timeout(self.step_period)
        self.target.add_background_load(-self._applied)
        self._applied = 0.0


class IntermittentErrorInjector(FaultInjector):
    """Benign background errors that never lead to failures.

    This is the noise floor: a realistic error log contains many reports
    that are *not* symptomatic of upcoming failures, which is precisely
    what makes online failure prediction non-trivial.
    """

    message_base = 500

    def __init__(
        self,
        target: InjectionTarget,
        rng: np.random.Generator,
        period: float = 120.0,
        n_message_types: int = 8,
    ) -> None:
        super().__init__(target, rng, persistence=FaultPersistence.INTERMITTENT)
        self.period = period
        self.n_message_types = n_message_types

    def _run(self, engine: Engine):
        while self.active:
            yield Timeout(self.rng.exponential(self.period))
            if not self.active:
                return
            self.target.emit_error(
                self.message_base + int(self.rng.integers(0, self.n_message_types)),
                self.fault.fault_id,
                severity=1,
            )
