"""The fleet chaos harness: seeded worker-level fault injection.

:mod:`repro.faults.pfm_injectors` attacks the PFM stack *inside* the
simulation; this module attacks the fleet machinery *around* it — the
worker processes, the pool, the artifact reads — so the supervisor loop
in :func:`repro.fleet.run_fleet` can be tested against the faults it
claims to absorb.  Three fault processes, all driven by hash-derived
decisions (no RNG state, so a decision depends only on the chaos seed,
the shard key, the attempt number, and the channel — never on execution
order or process identity):

- **worker crash** — a hard ``os._exit`` before the shard executes,
  taking the whole pool worker (and every chunk-mate's progress) with
  it.  In the parent process (serial backend) the kill is simulated by
  raising :class:`~repro.errors.WorkerCrashError` instead, so the test
  process survives its own chaos.
- **slow worker** — a wall-clock ``time.sleep`` before the shard.  Wall
  time is the one field the fleet's determinism contract excludes, so a
  slow worker must perturb *nothing* in the aggregate.
- **torn artifact** — a :class:`TornArtifactError` (an ``OSError``)
  standing in for a half-written model artifact or checkpoint read.

Because decisions are keyed by attempt number, a shard that crashes on
attempt 1 gets an independent draw on attempt 2 — exactly the transient
infrastructure fault the supervisor's retry policy exists for.  Setting
``crash_probability=1.0`` makes a spec *poison* (it kills a worker on
every attempt), which is how the quarantine path is exercised.

The chaos invariant the fleet bench enforces: with any chaos
configuration whose faults the retry budget absorbs, the fleet aggregate
is byte-identical to a clean serial run.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError, WorkerCrashError

#: Exit status of a hard-killed worker (the conventional SIGKILL code).
CRASH_EXIT_CODE = 137

#: Decision channels: independent draws per fault process.
_CRASH, _SLOW, _TORN = "crash", "slow", "torn"


class TornArtifactError(OSError):
    """Chaos stand-in for a torn/corrupt artifact read (infrastructure)."""


@dataclass(frozen=True)
class ChaosConfig:
    """One seeded chaos regime; probabilities are per (shard, attempt)."""

    seed: int = 0
    crash_probability: float = 0.0
    slow_probability: float = 0.0
    slow_seconds: float = 0.01
    torn_artifact_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("crash_probability", "slow_probability",
                     "torn_artifact_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.slow_seconds < 0:
            raise ConfigurationError("slow_seconds must be >= 0")

    def enabled(self) -> bool:
        """Whether any fault process can ever fire."""
        return (
            self.crash_probability > 0
            or self.slow_probability > 0
            or self.torn_artifact_probability > 0
        )


def _chance(seed: int, spec_key: str, attempt: int, channel: str) -> float:
    """Deterministic uniform draw in [0, 1) for one decision point."""
    payload = f"chaos:{seed}:{spec_key}:{attempt}:{channel}"
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


def crash_decision(config: ChaosConfig, spec_key: str, attempt: int) -> bool:
    """Whether this (shard, attempt) pair dies.  Pure; tests plan with it."""
    return _chance(config.seed, spec_key, attempt, _CRASH) < config.crash_probability


def torn_decision(config: ChaosConfig, spec_key: str, attempt: int) -> bool:
    """Whether this (shard, attempt) pair tears its artifact read."""
    return (
        _chance(config.seed, spec_key, attempt, _TORN)
        < config.torn_artifact_probability
    )


def slow_decision(config: ChaosConfig, spec_key: str, attempt: int) -> bool:
    """Whether this (shard, attempt) pair runs on a slow worker."""
    return _chance(config.seed, spec_key, attempt, _SLOW) < config.slow_probability


@dataclass
class ChaosInjector:
    """The per-process chaos runtime installed by the worker initializer."""

    config: ChaosConfig
    parent_pid: int
    #: Faults fired in *this* process (meaningful for the serial backend;
    #: a hard-killed pool worker takes its counters to the grave).
    crashes_simulated: int = 0
    torn_reads: int = 0
    slowdowns: int = 0

    def _trace(self, spec_key: str, attempt: int, channel: str) -> None:
        """Record one fired fault on the fleet trace, if tracing is armed.

        Written *before* the fault executes — for the crash channel the
        ``os._exit`` follows immediately, and an atomically-published
        record is the only way a hard-killed worker's injection stays
        visible on the merged timeline.
        """
        from repro.telemetry.tracing import active_trace, record_chaos_event

        context = active_trace()
        if context is not None:
            record_chaos_event(context, spec_key, attempt, channel)

    def before_spec(self, spec_key: str, attempt: int) -> None:
        """Fire this (shard, attempt) pair's faults, worst last.

        Slowdowns happen first (they perturb only wall clock), then torn
        reads (an ordinary raise the worker survives), then the crash —
        a hard ``os._exit`` in a pool worker, a raised
        :class:`WorkerCrashError` when this *is* the parent process.
        """
        cfg = self.config
        if slow_decision(cfg, spec_key, attempt):
            self.slowdowns += 1
            self._trace(spec_key, attempt, _SLOW)
            time.sleep(cfg.slow_seconds)
        if torn_decision(cfg, spec_key, attempt):
            self.torn_reads += 1
            self._trace(spec_key, attempt, _TORN)
            raise TornArtifactError(
                f"chaos: torn artifact read for shard {spec_key} "
                f"(attempt {attempt})"
            )
        if crash_decision(cfg, spec_key, attempt):
            self._trace(spec_key, attempt, _CRASH)
            if os.getpid() == self.parent_pid:
                self.crashes_simulated += 1
                raise WorkerCrashError(
                    f"chaos: simulated worker crash on shard {spec_key} "
                    f"(attempt {attempt})"
                )
            os._exit(CRASH_EXIT_CODE)


#: The process-wide injector (one per worker; ``None`` = chaos off).
_ACTIVE: ChaosInjector | None = None


def install_chaos(config: ChaosConfig, parent_pid: int | None = None) -> ChaosInjector:
    """Arm chaos in this process; returns the installed injector."""
    global _ACTIVE
    _ACTIVE = ChaosInjector(
        config=config,
        parent_pid=parent_pid if parent_pid is not None else os.getpid(),
    )
    return _ACTIVE


def active_chaos() -> ChaosInjector | None:
    """The injector armed in this process, if any."""
    return _ACTIVE


def clear_chaos() -> None:
    """Disarm chaos in this process."""
    global _ACTIVE
    _ACTIVE = None


def parse_chaos(spec: str, seed: int = 0) -> ChaosConfig:
    """``"crash=0.3,slow=0.1,torn=0.05"`` -> :class:`ChaosConfig`.

    Keys: ``crash``, ``slow``, ``torn`` (probabilities) and
    ``slow-seconds`` (the injected delay).  The CLI's ``--chaos`` flag
    routes through here.
    """
    fields = {
        "crash": "crash_probability",
        "slow": "slow_probability",
        "torn": "torn_artifact_probability",
        "slow-seconds": "slow_seconds",
        "slow_seconds": "slow_seconds",
    }
    kwargs: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        if not sep:
            raise ConfigurationError(
                f"chaos spec entry {part!r} is not name=value"
            )
        field_name = fields.get(name.strip())
        if field_name is None:
            raise ConfigurationError(
                f"unknown chaos fault {name.strip()!r}; "
                f"use one of {sorted(set(fields))}"
            )
        try:
            kwargs[field_name] = float(value)
        except ValueError:
            raise ConfigurationError(
                f"chaos value {value!r} for {name.strip()!r} is not a number"
            ) from None
    return ChaosConfig(seed=seed, **kwargs)
