"""Faultload campaigns: when which fault strikes during a simulation run.

A :class:`FaultLoad` is a reproducible schedule of fault activations,
generated from per-kind inter-arrival and duration distributions.  The
telecom dataset builder uses it to place failure-causing episodes into
long simulation runs; the ground-truth activation times double as labels
for predictor training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FaultActivation:
    """One scheduled fault episode."""

    start: float
    duration: float
    kind: str
    target: str

    @property
    def end(self) -> float:
        """Episode end time (start + duration)."""
        return self.start + self.duration


@dataclass
class FaultLoad:
    """A generated schedule of fault activations.

    Build with :meth:`generate`; iterate in time order.
    """

    activations: list[FaultActivation] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        horizon: float,
        specs: dict[str, dict[str, float]],
        targets: list[str],
        rng: np.random.Generator,
        min_gap: float = 0.0,
    ) -> "FaultLoad":
        """Generate a faultload over ``[0, horizon]``.

        Parameters
        ----------
        horizon:
            Simulation length.
        specs:
            ``{kind: {"mtbf": ..., "duration": ...}}`` -- mean time between
            activations and mean episode duration per fault kind
            (both exponential).
        targets:
            Component names; each activation picks one uniformly.
        min_gap:
            Minimum spacing enforced between *any* two activations, so
            episodes (and thus failure labels) do not pile up.
        """
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if not targets:
            raise ConfigurationError("need at least one target component")
        raw: list[FaultActivation] = []
        for kind, spec in specs.items():
            mtbf = spec.get("mtbf")
            duration = spec.get("duration")
            if not mtbf or mtbf <= 0 or not duration or duration <= 0:
                raise ConfigurationError(
                    f"spec for {kind!r} needs positive 'mtbf' and 'duration'"
                )
            t = rng.exponential(mtbf)
            while t < horizon:
                raw.append(
                    FaultActivation(
                        start=t,
                        duration=rng.exponential(duration),
                        kind=kind,
                        target=str(rng.choice(targets)),
                    )
                )
                t += rng.exponential(mtbf)
        raw.sort(key=lambda a: a.start)
        if min_gap > 0:
            spaced: list[FaultActivation] = []
            last_end = -np.inf
            for activation in raw:
                if activation.start - last_end >= min_gap:
                    spaced.append(activation)
                    last_end = activation.end
            raw = spaced
        return cls(activations=raw)

    def within(self, start: float, end: float) -> list[FaultActivation]:
        """Activations whose episode overlaps ``[start, end]``."""
        return [a for a in self.activations if a.start < end and a.end > start]

    def kinds(self) -> set[str]:
        """The distinct fault kinds present in this faultload."""
        return {a.kind for a in self.activations}

    def __iter__(self):
        return iter(self.activations)

    def __len__(self) -> int:
        return len(self.activations)
