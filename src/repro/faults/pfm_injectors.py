"""Fault injectors that attack the PFM stack itself.

The injectors in :mod:`repro.faults.injectors` degrade the *managed*
system; these degrade the *manager* -- the depman exemplar's idea of
coupling a dependability manager to an injector manager, applied one
level up.  The attack surface is the PFM controller's own seams:

- :class:`MonitoringDropoutInjector` -- gauges stop reporting (NaN reads,
  frozen values, or raising read callables),
- :class:`ObservationCorruptionInjector` -- gauge readings are corrupted
  (multiplicative spikes, sign flips),
- :class:`PredictorFaultInjector` -- the symptom predictor raises or
  returns NaN scores,
- :class:`PredictorLatencyInjector` -- the predictor becomes slow in
  simulated time (a prediction past the lead time is worthless),
- :class:`ActionFailureInjector` -- countermeasures raise mid-execution
  or report ``ActionOutcome(success=False)``.

Predictor and action attacks go through explicit proxies
(:class:`FlakyPredictorProxy`, :class:`FlakyActionProxy`) installed by
the caller, so production objects never grow injection hooks; monitoring
attacks use the controller's ``observation_taps`` seam, which sits below
the gauge sanitizer by construction.

All injectors are episodic simulation processes: episodes start after
exponentially distributed gaps (``mtbf``) and last ``duration`` simulated
seconds, mirroring the system-level faultload's activation model.

Every proxy and injector requires an **explicit** random generator (or
seed) -- typically derived from the owning spec's injection seed.  There
is deliberately no seed-zero fallback: with one, two fleet shards that
forgot to pass a stream would silently replay the same attack schedule
(pfmlint rule PFM001).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.actions.base import Action, ActionOutcome
from repro.errors import ActionExecutionError, ConfigurationError, PFMFaultError
from repro.rng import ensure_rng
from repro.simulator.engine import Engine
from repro.simulator.events import Timeout

#: Valid fault modes per proxy family.
PREDICTOR_FAULT_MODES = ("exception", "nan")
ACTION_FAULT_MODES = ("exception", "report-failure")
DROPOUT_MODES = ("nan", "stuck", "exception")


# ----------------------------------------------------------------------
# Proxies: the fault hooks wrapped around PFM components
# ----------------------------------------------------------------------


class FlakyPredictorProxy:
    """Wraps a symptom predictor with injectable fault behaviour.

    Transparent while no fault mode is set; under an active fault it
    raises :class:`PFMFaultError` or returns NaN scores with
    ``fail_probability`` per call, and may declare a nonzero
    ``simulated_latency`` (consumed by step-timeout / fallback policies).
    Everything else delegates to the wrapped predictor.
    """

    def __init__(self, inner, rng: np.random.Generator | int) -> None:
        self.inner = inner
        # An explicit stream is mandatory: two shards that both fell back
        # to a seed-zero default would replay identical attack schedules.
        self.rng = ensure_rng(rng)
        self.fail_mode: str | None = None
        self.fail_probability = 1.0
        self.simulated_latency = 0.0
        self.faults_injected = 0

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        if self.fail_mode is not None and self.rng.random() < self.fail_probability:
            self.faults_injected += 1
            if self.fail_mode == "exception":
                raise PFMFaultError("injected predictor fault")
            return np.full(np.atleast_2d(x).shape[0], np.nan)
        return self.inner.score_samples(x)

    def __getattr__(self, name: str):
        return getattr(self.__dict__["inner"], name)


class FlakyActionProxy(Action):
    """Wraps a countermeasure with injectable execution failures.

    Mirrors the inner action's selection attributes (name, category,
    cost, complexity, success probability) so the objective function and
    circuit breakers see the real action; under an active fault mode the
    execution raises :class:`ActionExecutionError` or reports
    ``success=False`` *without* applying the countermeasure's effect (the
    action died before doing its work).
    """

    def __init__(self, inner: Action, rng: np.random.Generator | int) -> None:
        self.__dict__["inner"] = inner
        self.rng = ensure_rng(rng)
        self.name = inner.name
        self.category = inner.category
        self.cost = inner.cost
        self.complexity = inner.complexity
        self.success_probability = inner.success_probability
        self.executions = 0
        self.fail_mode: str | None = None
        self.fail_probability = 1.0
        self.faults_injected = 0

    def applicable(self, system, target: str) -> bool:
        return self.inner.applicable(system, target)

    def execute(self, system, target: str) -> ActionOutcome:
        self.executions += 1
        if self.fail_mode is not None and self.rng.random() < self.fail_probability:
            self.faults_injected += 1
            if self.fail_mode == "exception":
                raise ActionExecutionError(
                    f"injected failure executing {self.name!r}"
                )
            return ActionOutcome(
                action=self.name,
                target=target,
                time=system.engine.now,
                success=False,
                details={"injected": True},
            )
        return self.inner.execute(system, target)

    def __getattr__(self, name: str):
        return getattr(self.__dict__["inner"], name)


def flaky_repertoire(
    actions: list[Action], rng: np.random.Generator | int
) -> list[FlakyActionProxy]:
    """Wrap a whole repertoire in action-failure proxies (one shared rng)."""
    rng = ensure_rng(rng)
    return [FlakyActionProxy(action, rng) for action in actions]


# ----------------------------------------------------------------------
# Episodic injector processes
# ----------------------------------------------------------------------


class PFMInjector(abc.ABC):
    """Base class: drives episodic attacks against the PFM stack."""

    def __init__(
        self,
        rng: np.random.Generator,
        mtbf: float = 3_600.0,
        duration: float = 900.0,
    ) -> None:
        if mtbf <= 0 or duration <= 0:
            raise ConfigurationError("mtbf and duration must be positive")
        self.rng = rng
        self.mtbf = mtbf
        self.duration = duration
        self.running = False
        self.attacking = False
        self.episodes = 0

    @classmethod
    def kind(cls) -> str:
        """Human-readable attack kind tag."""
        return cls.__name__.replace("Injector", "").lower()

    def start(self, engine: Engine) -> None:
        """Launch the episodic attack process."""
        self.running = True
        engine.process(self._run(), name=f"pfm-inject:{self.kind()}")

    def stop(self) -> None:
        """Stop attacking (ends any in-progress episode)."""
        self.running = False
        if self.attacking:
            self._deactivate()
            self.attacking = False

    def _run(self):
        while self.running:
            yield Timeout(self.rng.exponential(self.mtbf))
            if not self.running:
                return
            self._activate()
            self.attacking = True
            self.episodes += 1
            yield Timeout(self.duration)
            if self.attacking:
                self._deactivate()
                self.attacking = False

    @abc.abstractmethod
    def _activate(self) -> None:
        """Switch the attack on."""

    @abc.abstractmethod
    def _deactivate(self) -> None:
        """Switch the attack off."""


class MonitoringDropoutInjector(PFMInjector):
    """Monitoring goes dark: selected gauges return NaN, freeze, or raise.

    Installs an observation tap on the controller, i.e. the perturbation
    applies to raw reads *before* the sanitizer -- exactly what a crashed
    collector or a wedged SNMP agent looks like from the Evaluate step.
    """

    def __init__(
        self,
        controller,
        rng: np.random.Generator,
        variables: list[str] | None = None,
        mode: str = "nan",
        **kwargs,
    ) -> None:
        super().__init__(rng, **kwargs)
        if mode not in DROPOUT_MODES:
            raise ConfigurationError(f"mode must be one of {DROPOUT_MODES}")
        self.controller = controller
        self.variables = set(variables) if variables is not None else None
        self.mode = mode
        self.reads_attacked = 0
        self._frozen: dict[str, float] = {}

    def _tap(self, variable: str, value: float) -> float:
        if self.variables is not None and variable not in self.variables:
            return value
        self.reads_attacked += 1
        if self.mode == "exception":
            raise PFMFaultError(f"injected read failure on {variable!r}")
        if self.mode == "stuck":
            return self._frozen.setdefault(variable, value)
        return float("nan")

    def _activate(self) -> None:
        self._frozen.clear()
        self.controller.observation_taps.append(self._tap)

    def _deactivate(self) -> None:
        if self._tap in self.controller.observation_taps:
            self.controller.observation_taps.remove(self._tap)


class ObservationCorruptionInjector(PFMInjector):
    """Gauge readings are corrupted: spikes and sign flips per read."""

    def __init__(
        self,
        controller,
        rng: np.random.Generator,
        variables: list[str] | None = None,
        probability: float = 0.5,
        magnitude: float = 8.0,
        **kwargs,
    ) -> None:
        super().__init__(rng, **kwargs)
        if not 0.0 < probability <= 1.0:
            raise ConfigurationError("probability must be in (0, 1]")
        if magnitude <= 1.0:
            raise ConfigurationError("magnitude must exceed 1")
        self.controller = controller
        self.variables = set(variables) if variables is not None else None
        self.probability = probability
        self.magnitude = magnitude
        self.reads_attacked = 0

    def _tap(self, variable: str, value: float) -> float:
        if self.variables is not None and variable not in self.variables:
            return value
        if self.rng.random() >= self.probability:
            return value
        self.reads_attacked += 1
        # Half the corruptions are upward spikes, half sign flips --
        # both shapes a bit-flipped counter or mis-scaled unit produces.
        if self.rng.random() < 0.5:
            return value * self.magnitude
        return -value

    def _activate(self) -> None:
        self.controller.observation_taps.append(self._tap)

    def _deactivate(self) -> None:
        if self._tap in self.controller.observation_taps:
            self.controller.observation_taps.remove(self._tap)


class PredictorFaultInjector(PFMInjector):
    """The primary predictor raises (or returns NaN) while the episode runs."""

    def __init__(
        self,
        proxy: FlakyPredictorProxy,
        rng: np.random.Generator,
        mode: str = "exception",
        probability: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(rng, **kwargs)
        if mode not in PREDICTOR_FAULT_MODES:
            raise ConfigurationError(f"mode must be one of {PREDICTOR_FAULT_MODES}")
        self.proxy = proxy
        self.mode = mode
        self.probability = probability

    def _activate(self) -> None:
        self.proxy.fail_mode = self.mode
        self.proxy.fail_probability = self.probability

    def _deactivate(self) -> None:
        self.proxy.fail_mode = None


class PredictorLatencyInjector(PFMInjector):
    """The predictor becomes slow: declared simulated latency per score."""

    def __init__(
        self,
        proxy: FlakyPredictorProxy,
        rng: np.random.Generator,
        latency: float = 600.0,
        **kwargs,
    ) -> None:
        super().__init__(rng, **kwargs)
        if latency <= 0:
            raise ConfigurationError("latency must be positive")
        self.proxy = proxy
        self.latency = latency

    def _activate(self) -> None:
        self.proxy.simulated_latency = self.latency

    def _deactivate(self) -> None:
        self.proxy.simulated_latency = 0.0


class ActionFailureInjector(PFMInjector):
    """Countermeasures fail mid-execution while the episode runs."""

    def __init__(
        self,
        proxies: list[FlakyActionProxy],
        rng: np.random.Generator,
        mode: str = "report-failure",
        probability: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(rng, **kwargs)
        if mode not in ACTION_FAULT_MODES:
            raise ConfigurationError(f"mode must be one of {ACTION_FAULT_MODES}")
        if not proxies:
            raise ConfigurationError("need at least one action proxy to attack")
        self.proxies = list(proxies)
        self.mode = mode
        self.probability = probability

    def _activate(self) -> None:
        for proxy in self.proxies:
            proxy.fail_mode = self.mode
            proxy.fail_probability = self.probability

    def _deactivate(self) -> None:
        for proxy in self.proxies:
            proxy.fail_mode = None
