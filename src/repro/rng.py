"""The one sanctioned place RNG defaulting happens.

Every stochastic component takes an ``rng``; scattering
``rng or np.random.default_rng(0)`` fallbacks through library code is
how two fleet shards end up silently sharing one stream (pfmlint rule
PFM001).  :func:`ensure_rng` centralizes the policy:

- a :class:`numpy.random.Generator` passes through untouched,
- an ``int`` / :class:`~numpy.random.SeedSequence` seeds a fresh
  generator,
- ``None`` either raises (components whose stream identity matters,
  e.g. fault injectors) or, where a module documents a reproducible
  default, seeds ``default_seed``.

Simulation components should prefer a named stream from
:class:`repro.simulator.random_streams.RandomStreams`; experiment specs
derive seeds from the master seed (:meth:`repro.fleet.RunSpec.seeds`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def ensure_rng(
    rng: np.random.Generator | np.random.SeedSequence | int | None = None,
    *,
    default_seed: int | None = None,
) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        A generator (returned as-is), a seed (``int`` /
        ``SeedSequence``), or ``None``.
    default_seed:
        Seed used when ``rng`` is ``None``.  Omit it to make the
        generator mandatory: ``None`` then raises
        :class:`~repro.errors.ConfigurationError` instead of silently
        handing every caller the same stream.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        if default_seed is None:
            raise ConfigurationError(
                "an explicit rng (or seed) is required here; implicit "
                "defaults would share one stream across callers"
            )
        return np.random.default_rng(default_seed)
    if isinstance(rng, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(rng)
    raise ConfigurationError(
        f"cannot build a Generator from {type(rng).__name__}: pass a "
        "numpy Generator, an integer seed, or a SeedSequence"
    )
