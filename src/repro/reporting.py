"""Terminal reporting helpers: ASCII charts and aligned tables.

The benchmark harness and examples regenerate the paper's *figures* as
text; these helpers render series as compact ASCII line charts so the
shape of Fig. 10-style curves is visible directly in test output.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

_BLOCKS = " .:-=+*#%@"


def ascii_chart(
    series: dict[str, Sequence[float]],
    width: int = 60,
    height: int = 12,
    markers: str = "ox+*",
) -> str:
    """Render one or more aligned series as an ASCII line chart.

    All series share the y-scale; x is the sample index scaled to
    ``width``.  Returns a multi-line string (top row = max value).
    """
    if not series:
        raise ConfigurationError("need at least one series")
    arrays = {name: np.asarray(values, dtype=float) for name, values in series.items()}
    lengths = {a.size for a in arrays.values()}
    if len(lengths) != 1:
        raise ConfigurationError("all series must have equal length")
    n = lengths.pop()
    if n < 2:
        raise ConfigurationError("series need at least two points")
    lo = min(float(np.nanmin(a)) for a in arrays.values())
    hi = max(float(np.nanmax(a)) for a in arrays.values())
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for k, (_name, values) in enumerate(arrays.items()):
        marker = markers[k % len(markers)]
        for col in range(width):
            idx = int(round(col * (n - 1) / (width - 1)))
            value = values[idx]
            if not np.isfinite(value):
                continue
            row = int(round((value - lo) / (hi - lo) * (height - 1)))
            grid[height - 1 - row][col] = marker
    lines = [f"{hi:11.4g} +" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 11 + " |" + "".join(row))
    lines.append(f"{lo:11.4g} +" + "".join(grid[-1]))
    legend = "   ".join(
        f"{markers[k % len(markers)]} = {name}" for k, name in enumerate(arrays)
    )
    lines.append(" " * 13 + legend)
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float], bins: int = 10, width: int = 40
) -> str:
    """Horizontal-bar histogram of a sample."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ConfigurationError("need at least one value")
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:], strict=True):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{lo:10.3g}, {hi:10.3g}) {count:6d} {bar}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line intensity rendering of a series."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    lo, hi = float(np.nanmin(values)), float(np.nanmax(values))
    span = (hi - lo) or 1.0
    chars = []
    for value in values:
        if not np.isfinite(value):
            chars.append("?")
            continue
        level = int((value - lo) / span * (len(_BLOCKS) - 1))
        chars.append(_BLOCKS[level])
    return "".join(chars)


def table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], pad: int = 2
) -> str:
    """Aligned text table."""
    if not headers:
        raise ConfigurationError("need headers")
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigurationError("row width must match headers")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    sep = " " * pad

    def fmt(cells: Sequence[str]) -> str:
        return sep.join(
            cell.ljust(width)
            for cell, width in zip(cells, widths, strict=True)
        )

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)
