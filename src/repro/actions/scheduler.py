"""Action scheduling.

"In addition to selecting an appropriate action, its execution needs to be
scheduled, e.g., at times of low system utilization, and it needs to be
executed."

The scheduler defers an action until system utilization drops below a
threshold -- but never beyond the prediction lead time, because a
countermeasure executed after the failure is pointless.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.actions.base import Action, ActionOutcome
from repro.errors import ConfigurationError
from repro.simulator.events import Timeout
from repro.telecom.system import SCPSystem


@dataclass
class ScheduledExecution:
    """Bookkeeping for one deferred action."""

    action: Action
    target: str
    deadline: float
    executed_at: float | None = None
    outcome: ActionOutcome | None = None


class ActionScheduler:
    """Defers actions to low-utilization moments within the lead time."""

    def __init__(
        self,
        system: SCPSystem,
        utilization_threshold: float = 0.5,
        poll_interval: float = 10.0,
    ) -> None:
        if not 0 < utilization_threshold <= 1.5:
            raise ConfigurationError("utilization_threshold must be positive")
        if poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")
        self.system = system
        self.utilization_threshold = utilization_threshold
        self.poll_interval = poll_interval
        self.history: list[ScheduledExecution] = []

    def _utilization(self) -> float:
        return float(np.mean([c.utilization for c in self.system.containers]))

    def schedule(self, action: Action, target: str, lead_time: float) -> ScheduledExecution:
        """Queue the action; it runs at the first quiet poll or at deadline."""
        if lead_time <= 0:
            raise ConfigurationError("lead_time must be positive")
        record = ScheduledExecution(
            action=action,
            target=target,
            deadline=self.system.engine.now + lead_time,
        )
        self.history.append(record)
        self.system.engine.process(
            self._wait_and_execute(record), name=f"sched:{action.name}"
        )
        return record

    def execute_now(self, action: Action, target: str) -> ScheduledExecution:
        """Immediate execution (for urgent warnings)."""
        record = ScheduledExecution(
            action=action, target=target, deadline=self.system.engine.now
        )
        self._fire(record)
        self.history.append(record)
        return record

    def _wait_and_execute(self, record: ScheduledExecution):
        while self.system.engine.now < record.deadline:
            if self._utilization() <= self.utilization_threshold:
                break
            remaining = record.deadline - self.system.engine.now
            yield Timeout(min(self.poll_interval, max(remaining, 1e-9)))
        self._fire(record)

    def _fire(self, record: ScheduledExecution) -> None:
        record.executed_at = self.system.engine.now
        record.outcome = record.action.execute(self.system, record.target)

    @property
    def executed(self) -> list[ScheduledExecution]:
        """Scheduled actions that have run (with their outcomes)."""
        return [r for r in self.history if r.executed_at is not None]
