"""Action interface and outcome records."""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field

from repro.telecom.system import SCPSystem


class ActionCategory(enum.Enum):
    """The two principal goals of Fig. 7."""

    DOWNTIME_AVOIDANCE = "downtime-avoidance"
    DOWNTIME_MINIMIZATION = "downtime-minimization"


@dataclass(frozen=True)
class ActionOutcome:
    """What happened when an action executed."""

    action: str
    target: str
    time: float
    success: bool
    downtime_incurred: float = 0.0
    details: dict = field(default_factory=dict)


class Action(abc.ABC):
    """A countermeasure that can be triggered by a failure warning.

    Attributes (class-level defaults, overridable per instance):

    - ``category``: downtime avoidance vs minimization,
    - ``cost``: abstract execution cost (performance impact, risk),
    - ``complexity``: the paper's objective function includes action
      complexity as a separate term,
    - ``success_probability``: prior probability the action defuses the
      problem (the model's ``1 - P_TP`` contribution).
    """

    name: str = "action"
    category: ActionCategory = ActionCategory.DOWNTIME_AVOIDANCE
    cost: float = 1.0
    complexity: float = 1.0
    success_probability: float = 0.5

    def __init__(
        self,
        cost: float | None = None,
        complexity: float | None = None,
        success_probability: float | None = None,
    ) -> None:
        if cost is not None:
            self.cost = cost
        if complexity is not None:
            self.complexity = complexity
        if success_probability is not None:
            self.success_probability = success_probability
        self.executions = 0

    def applicable(self, system: SCPSystem, target: str) -> bool:
        """Whether this action makes sense for the target right now."""
        return True

    @abc.abstractmethod
    def execute(self, system: SCPSystem, target: str) -> ActionOutcome:
        """Perform the countermeasure against ``target`` on ``system``."""

    def _outcome(
        self,
        system: SCPSystem,
        target: str,
        success: bool,
        downtime: float = 0.0,
        **details,
    ) -> ActionOutcome:
        self.executions += 1
        return ActionOutcome(
            action=self.name,
            target=target,
            time=system.engine.now,
            success=success,
            downtime_incurred=downtime,
            details=details,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cost={self.cost}, p_success={self.success_probability})"
