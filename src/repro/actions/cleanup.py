"""State clean-up (downtime avoidance).

"State clean-up tries to avoid failures by cleaning up resources.
Examples include garbage collection, clearance of queues, correction of
corrupt data or elimination of 'hung' processes."

Clean-up runs online -- no downtime -- but only recovers soft state
(leaked memory, corruption); it cannot restore hung workers, which is why
its success probability is below a restart's.
"""

from __future__ import annotations

from repro.actions.base import Action, ActionCategory, ActionOutcome
from repro.telecom.system import SCPSystem


class StateCleanupAction(Action):
    """Garbage collection + corrupt-state repair on one component."""

    name = "state-cleanup"
    category = ActionCategory.DOWNTIME_AVOIDANCE
    cost = 0.5
    complexity = 0.5
    success_probability = 0.6

    def __init__(self, effectiveness: float = 0.8, **kwargs) -> None:
        super().__init__(**kwargs)
        self.effectiveness = effectiveness

    def applicable(self, system: SCPSystem, target: str) -> bool:
        """Clean-up helps only when there is soft state (leak/corruption) to clean."""
        component = system.component(target)
        # Cleaning helps when there is soft state to clean.
        return component.leaked_mb > 0 or component.corruption > 0

    def execute(self, system: SCPSystem, target: str) -> ActionOutcome:
        """Run GC + corruption repair on the target; success = substantial recovery."""
        component = system.component(target)
        leaked_before = component.leaked_mb
        corruption_before = component.corruption
        system.cleanup_component(target, self.effectiveness)
        recovered_mb = leaked_before - component.leaked_mb
        # Success = the dominant soft-state problem was substantially reduced.
        success = (
            recovered_mb > 0.5 * leaked_before
            or (corruption_before - component.corruption) > 0.5 * corruption_before
        )
        return self._outcome(
            system,
            target,
            success=bool(success),
            recovered_mb=recovered_mb,
            corruption_removed=corruption_before - component.corruption,
        )
