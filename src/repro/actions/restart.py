"""Preventive restart / rejuvenation (downtime minimization).

"Preventive restart intentionally brings the system down for restart
turning unplanned downtime into forced downtime, which is expected to be
shorter (fail fast policy)."  Includes the recovery-oriented-computing
variant where "restarting is organized recursively until the problem is
solved" (recursive microreboots, Candea et al.).
"""

from __future__ import annotations

from repro.actions.base import Action, ActionCategory, ActionOutcome
from repro.errors import ConfigurationError
from repro.telecom.system import SCPSystem


class PreventiveRestartAction(Action):
    """Forced, short restart of a failure-prone component."""

    name = "preventive-restart"
    category = ActionCategory.DOWNTIME_MINIMIZATION
    cost = 1.5
    complexity = 1.0
    success_probability = 0.95

    def __init__(self, restart_duration: float = 60.0, **kwargs) -> None:
        super().__init__(**kwargs)
        if restart_duration <= 0:
            raise ConfigurationError("restart_duration must be positive")
        self.restart_duration = restart_duration

    def applicable(self, system: SCPSystem, target: str) -> bool:
        """Refuse when the target is already restarting or is the last container up."""
        component = system.component(target)
        # Restarting a component that is already restarting helps nobody.
        if component.restarting_until is not None:
            return False
        # Don't take the last healthy container down.
        peers_up = [
            c
            for c in system.containers
            if c.name != target and c.restarting_until is None
        ]
        return bool(peers_up) or component.tier.value != "service-logic"

    def execute(self, system: SCPSystem, target: str) -> ActionOutcome:
        """Force a short restart of the target (downtime = restart_duration)."""
        system.restart_component(target, self.restart_duration)
        return self._outcome(
            system,
            target,
            success=True,
            downtime=self.restart_duration,
            forced=True,
        )


class RecursiveMicroreboot(Action):
    """Escalating restart: component -> tier -> whole system.

    Each level restarts a progressively larger scope with progressively
    longer downtime; escalation happens when the previous level did not
    clear the degradation (leaked memory / corruption remain because they
    live outside the restarted scope).
    """

    name = "recursive-microreboot"
    category = ActionCategory.DOWNTIME_MINIMIZATION
    cost = 2.0
    complexity = 2.5
    success_probability = 0.98

    def __init__(
        self,
        level_durations: tuple[float, ...] = (20.0, 60.0, 300.0),
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not level_durations:
            raise ConfigurationError("need at least one escalation level")
        self.level_durations = level_durations
        self.escalations = 0

    def execute(self, system: SCPSystem, target: str) -> ActionOutcome:
        component = system.component(target)
        # Level 0: microreboot the service processes only -- instant-ish,
        # clears corruption and hung workers but not the container's heap.
        level = 0
        component.corruption = 0.0
        component.restore_capacity()
        if component.leaked_mb > 0.05 * component.memory_mb:
            # Level 1: restart the whole container (clears all its state).
            if len(self.level_durations) > 1:
                level = 1
                self.escalations += 1
                system.restart_component(target, self.level_durations[1])
            # Level 2: peers are also degraded -> restart the tier.
            peers_degraded = [
                c
                for c in system.containers
                if c.name != target
                and (c.leaked_mb > 0.05 * c.memory_mb or c.corruption > 0.5)
            ]
            if peers_degraded and len(self.level_durations) > 2:
                level = 2
                self.escalations += 1
                for peer in peers_degraded:
                    if peer.restarting_until is None:
                        system.restart_component(peer.name, self.level_durations[2])
        return self._outcome(
            system,
            target,
            success=True,
            escalation_level=level,
            downtime=self.level_durations[level] if level > 0 else 0.0,
        )
