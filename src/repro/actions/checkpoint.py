"""Prepared repair: checkpointing and the TTR decomposition (Fig. 8).

Time-to-repair after a failure is "time needed to get a fault-free system
by hardware repair or reconfiguration, plus the time needed to redo lost
computations" (roll-backward).  Prediction-driven preparation attacks both
terms:

- the spare can be booted *before* the failure ("think of a cold spare"),
- a checkpoint can be saved close to the failure, shrinking recomputation
  -- unless the state may already be corrupted, in which case the
  checkpoint must not be trusted (the fault-isolation caveat of Sect. 4.3).

:class:`RepairTimeModel` computes the two TTR terms for the classical and
the prepared scheme -- the quantities behind Fig. 8 and the ``k`` factor of
Eq. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.actions.base import Action, ActionCategory, ActionOutcome
from repro.errors import ConfigurationError
from repro.telecom.system import SCPSystem


@dataclass(frozen=True)
class Checkpoint:
    """A saved consistent state."""

    time: float
    trusted: bool = True
    tag: str = ""


class CheckpointStore:
    """Keeps checkpoints of one component/application in time order."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.capacity = capacity
        self._checkpoints: list[Checkpoint] = []

    def save(self, time: float, trusted: bool = True, tag: str = "") -> Checkpoint:
        """Store a checkpoint taken at ``time`` (evicting the oldest when full)."""
        checkpoint = Checkpoint(time=time, trusted=trusted, tag=tag)
        self._checkpoints.append(checkpoint)
        if len(self._checkpoints) > self.capacity:
            self._checkpoints.pop(0)
        return checkpoint

    def latest_trusted(self, before: float | None = None) -> Checkpoint | None:
        """Most recent trusted checkpoint (optionally strictly before a time)."""
        for checkpoint in reversed(self._checkpoints):
            if not checkpoint.trusted:
                continue
            if before is not None and checkpoint.time >= before:
                continue
            return checkpoint
        return None

    def __len__(self) -> int:
        return len(self._checkpoints)


@dataclass(frozen=True)
class RepairBreakdown:
    """The two TTR terms of Fig. 8."""

    reconfiguration: float
    recomputation: float

    @property
    def total(self) -> float:
        """Total time-to-repair: reconfiguration plus recomputation."""
        return self.reconfiguration + self.recomputation


@dataclass
class RepairTimeModel:
    """TTR for classical vs prediction-prepared recovery.

    Parameters
    ----------
    reconfiguration_time:
        Time to obtain a fault-free system reactively (boot spare, switch
        versions, re-route) -- Fig. 8's "Failure -> Fault-free" span.
    prepared_reconfiguration_time:
        Same when the spare was booted on the failure warning.
    recompute_factor:
        Seconds of recomputation per second of lost computation (<= 1 when
        replay is faster than original execution).
    """

    reconfiguration_time: float = 240.0
    prepared_reconfiguration_time: float = 40.0
    recompute_factor: float = 0.8

    def classical(self, checkpoint_age: float) -> RepairBreakdown:
        """TTR with periodic checkpointing and no preparation."""
        return RepairBreakdown(
            reconfiguration=self.reconfiguration_time,
            recomputation=self.recompute_factor * max(checkpoint_age, 0.0),
        )

    def prepared(self, checkpoint_age: float) -> RepairBreakdown:
        """TTR when the failure was predicted and preparation ran."""
        return RepairBreakdown(
            reconfiguration=self.prepared_reconfiguration_time,
            recomputation=self.recompute_factor * max(checkpoint_age, 0.0),
        )

    def improvement_factor(
        self, classical_checkpoint_age: float, prepared_checkpoint_age: float
    ) -> float:
        """The Eq. 6 factor ``k = MTTR / MTTR_prepared``."""
        classical = self.classical(classical_checkpoint_age).total
        prepared = self.prepared(prepared_checkpoint_age).total
        if prepared <= 0:
            raise ConfigurationError("prepared TTR must be positive")
        return classical / prepared


class PreparedRepairAction(Action):
    """Prepare recovery for a predicted failure (downtime minimization).

    On a failure warning: boot the spare (so reconfiguration is short) and
    save a checkpoint *if the state can still be trusted* -- checkpoints of
    possibly-corrupted state are recorded as untrusted and skipped at
    recovery, exactly the caveat the paper raises.
    """

    name = "prepared-repair"
    category = ActionCategory.DOWNTIME_MINIMIZATION
    cost = 1.0
    complexity = 2.0
    success_probability = 0.9

    def __init__(
        self,
        store: CheckpointStore | None = None,
        model: RepairTimeModel | None = None,
        corruption_trust_limit: float = 0.2,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.store = store or CheckpointStore()
        self.model = model or RepairTimeModel()
        self.corruption_trust_limit = corruption_trust_limit
        self.spare_ready_at: float | None = None

    def execute(self, system: SCPSystem, target: str) -> ActionOutcome:
        """Prepare for the predicted failure: checkpoint (if trusted) and boot the spare."""
        now = system.engine.now
        component = system.component(target)
        trusted = component.corruption <= self.corruption_trust_limit
        self.store.save(now, trusted=trusted, tag=f"warning:{target}")
        self.spare_ready_at = now + self.model.prepared_reconfiguration_time
        return self._outcome(
            system,
            target,
            success=True,
            checkpoint_trusted=trusted,
            spare_ready_at=self.spare_ready_at,
        )

    def repair(self, system: SCPSystem, target: str, failure_time: float) -> RepairBreakdown:
        """Perform the (prepared or classical) repair after a failure.

        Returns the TTR breakdown actually incurred and restarts the
        component for that duration.
        """
        checkpoint = self.store.latest_trusted(before=failure_time)
        checkpoint_age = failure_time - checkpoint.time if checkpoint else failure_time
        prepared = (
            self.spare_ready_at is not None and self.spare_ready_at <= failure_time
        )
        breakdown = (
            self.model.prepared(checkpoint_age)
            if prepared
            else self.model.classical(checkpoint_age)
        )
        system.restart_component(target, breakdown.total)
        self.spare_ready_at = None
        return breakdown
