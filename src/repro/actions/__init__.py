"""Prediction-driven countermeasures (paper Sect. 4, Fig. 7).

Two goals, five action classes:

- **Downtime avoidance**: :class:`~repro.actions.cleanup.StateCleanupAction`,
  :class:`~repro.actions.failover.PreventiveFailoverAction`,
  :class:`~repro.actions.load.LowerLoadAction`;
- **Downtime minimization**:
  :class:`~repro.actions.checkpoint.PreparedRepairAction` (checkpointing /
  prepared recovery) and
  :class:`~repro.actions.restart.PreventiveRestartAction` (rejuvenation,
  with :class:`~repro.actions.restart.RecursiveMicroreboot` escalation).

:mod:`~repro.actions.selection` implements the objective function trading
cost, prediction confidence, success probability and complexity;
:mod:`~repro.actions.scheduler` defers execution to low-utilization
moments.
"""

from repro.actions.base import (
    Action,
    ActionCategory,
    ActionOutcome,
)
from repro.actions.checkpoint import (
    Checkpoint,
    CheckpointStore,
    PreparedRepairAction,
    RepairTimeModel,
)
from repro.actions.cleanup import StateCleanupAction
from repro.actions.failover import PreventiveFailoverAction
from repro.actions.load import LowerLoadAction
from repro.actions.restart import PreventiveRestartAction, RecursiveMicroreboot
from repro.actions.scheduler import ActionScheduler
from repro.actions.selection import ActionSelector, SelectionContext

__all__ = [
    "Action",
    "ActionCategory",
    "ActionOutcome",
    "Checkpoint",
    "CheckpointStore",
    "PreparedRepairAction",
    "RepairTimeModel",
    "StateCleanupAction",
    "PreventiveFailoverAction",
    "LowerLoadAction",
    "PreventiveRestartAction",
    "RecursiveMicroreboot",
    "ActionScheduler",
    "ActionSelector",
    "SelectionContext",
]
