"""Lowering the load (downtime avoidance).

"Lowering the load is a common way to prevent failures.  For example,
webservers reject connection requests in order not to become overloaded.
Within proactive fault management, the number of allowed connections is
adaptive and would depend on the assessed risk of failure."

The admitted fraction is therefore a function of the failure-warning
confidence: the more certain the predictor, the harder the throttle.
"""

from __future__ import annotations

from repro.actions.base import Action, ActionCategory, ActionOutcome
from repro.telecom.system import SCPSystem


class LowerLoadAction(Action):
    """Risk-adaptive admission control on the whole SCP."""

    name = "lower-load"
    category = ActionCategory.DOWNTIME_AVOIDANCE
    cost = 2.0  # rejected requests are lost business
    complexity = 0.3
    success_probability = 0.7

    def __init__(self, min_admission: float = 0.4, **kwargs) -> None:
        super().__init__(**kwargs)
        self.min_admission = min_admission
        self.last_confidence = 1.0

    def admission_for(self, confidence: float) -> float:
        """Map warning confidence in [0, 1] to an admitted fraction.

        No warning (confidence 0) -> admit everything; full confidence ->
        throttle down to ``min_admission``.
        """
        confidence = min(max(confidence, 0.0), 1.0)
        return 1.0 - confidence * (1.0 - self.min_admission)

    def set_confidence(self, confidence: float) -> None:
        """Record the warning confidence the next execution will throttle by."""
        self.last_confidence = confidence

    def applicable(self, system: SCPSystem, target: str) -> bool:
        """Admission control applies to the system as a whole, always."""
        return True

    def execute(self, system: SCPSystem, target: str) -> ActionOutcome:
        """Apply the confidence-scaled admission fraction to the SCP."""
        fraction = self.admission_for(self.last_confidence)
        system.set_admission_fraction(fraction)
        return self._outcome(
            system,
            target,
            success=True,
            admission_fraction=fraction,
            confidence=self.last_confidence,
        )


class RestoreLoadAction(Action):
    """Lift the throttle once the danger has passed."""

    name = "restore-load"
    category = ActionCategory.DOWNTIME_AVOIDANCE
    cost = 0.0
    complexity = 0.1
    success_probability = 1.0

    def execute(self, system: SCPSystem, target: str) -> ActionOutcome:
        system.set_admission_fraction(1.0)
        return self._outcome(system, target, success=True)
