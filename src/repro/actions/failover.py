"""Preventive failover (downtime avoidance).

"Preventive failover techniques perform a preventive switch to some spare
hardware or software unit.  Several variants exist, one of which is
failure prediction-driven load balancing accomplishing gradual 'failover'
from a failure-prone to failure-free component."

The implementation does exactly the gradual variant: it shifts the
failure-prone container's load-balancer weight onto the healthiest peer.
"""

from __future__ import annotations

from repro.actions.base import Action, ActionCategory, ActionOutcome
from repro.telecom.system import SCPSystem


class PreventiveFailoverAction(Action):
    """Gradual load migration away from a failure-prone container."""

    name = "preventive-failover"
    category = ActionCategory.DOWNTIME_AVOIDANCE
    cost = 1.0
    complexity = 1.5
    success_probability = 0.8

    def __init__(self, fraction: float = 1.0, **kwargs) -> None:
        super().__init__(**kwargs)
        self.fraction = fraction

    def _best_peer(self, system: SCPSystem, target: str):
        peers = [
            c
            for c in system.containers
            if c.name != target and c.restarting_until is None
        ]
        if not peers:
            return None
        # Healthiest = lowest utilization with ample free memory.
        return min(peers, key=lambda c: (c.utilization, -c.memory_free_mb))

    def applicable(self, system: SCPSystem, target: str) -> bool:
        """Needs remaining weight on the target and a live peer to take it."""
        if target not in system.weights or system.weights[target] <= 0:
            return False
        return self._best_peer(system, target) is not None

    def execute(self, system: SCPSystem, target: str) -> ActionOutcome:
        """Shift the configured weight fraction to the healthiest peer."""
        peer = self._best_peer(system, target)
        if peer is None:
            return self._outcome(system, target, success=False, reason="no spare peer")
        moved = system.weights[target] * self.fraction
        system.migrate_load(target, peer.name, self.fraction)
        # Migration succeeds if the peer has headroom for the extra load.
        success = peer.utilization < 0.75
        return self._outcome(
            system,
            target,
            success=bool(success),
            moved_weight=moved,
            peer=peer.name,
        )


class RestoreBalanceAction(Action):
    """Undo failovers: reset all load-balancer weights to uniform.

    Used after the failure-prone component has been repaired so capacity
    is not left idle.
    """

    name = "restore-balance"
    category = ActionCategory.DOWNTIME_AVOIDANCE
    cost = 0.1
    complexity = 0.2
    success_probability = 1.0

    def execute(self, system: SCPSystem, target: str) -> ActionOutcome:
        for name in system.weights:
            system.set_weight(name, 1.0)
        return self._outcome(system, target, success=True)
