"""Action selection: the objective function of the MEA "Act" step.

"There might be several actions available, such that the most effective
method needs to be selected.  Effectiveness of actions is evaluated based
on an objective function taking cost of actions, confidence in the
prediction, probability of success and complexity of actions into
account."  The same scheme underlies FT-Pro (Li & Lan 2006), which uses a
predictor's error rates together with cost and expected downtime to choose
among migrate / checkpoint / do nothing.

Expected utility of action ``a`` given warning confidence ``c`` and the
criticality ``k`` of the threatened service::

    U(a) = k * c * P_success(a) * benefit  -  cost(a)  -  w_cx * complexity(a)

Doing nothing has utility 0; an action is only taken when some U(a) > 0,
which is exactly how false alarms with low confidence end up ignored.
``k`` defaults to 1 (every target equally critical — the historical
behaviour); a criticality-aware deployment scales the expected benefit by
how much the threatened service matters, so the same confidence clears
the actuation bar sooner for critical services and later for expendable
ones (the arbitration layer's criticality-weighted risk, Sect. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.actions.base import Action
from repro.errors import ConfigurationError
from repro.telecom.system import SCPSystem


@dataclass(frozen=True)
class SelectionContext:
    """What the selector knows when a warning arrives."""

    confidence: float  # warning confidence in [0, 1]
    target: str  # suspected component
    failure_cost: float = 10.0  # cost of letting the failure happen
    complexity_weight: float = 0.2
    criticality: float = 1.0  # how much the threatened service matters

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ConfigurationError("confidence must be in [0, 1]")
        if self.failure_cost < 0:
            raise ConfigurationError("failure_cost must be >= 0")
        if not 0.0 <= self.criticality <= 1.0:
            raise ConfigurationError("criticality must be in [0, 1]")


@dataclass
class ScoredAction:
    """An action with its computed expected utility."""

    action: Action
    utility: float
    applicable: bool


@dataclass
class ActionSelector:
    """Ranks a repertoire of actions by expected utility."""

    repertoire: list[Action] = field(default_factory=list)

    def add(self, action: Action) -> "ActionSelector":
        """Append an action to the repertoire (chainable)."""
        self.repertoire.append(action)
        return self

    def utility(self, action: Action, context: SelectionContext) -> float:
        """The objective function value for one action."""
        benefit = (
            context.criticality
            * context.confidence
            * action.success_probability
            * context.failure_cost
        )
        return (
            benefit
            - action.cost
            - context.complexity_weight * action.complexity
        )

    def rank(
        self,
        system: SCPSystem,
        context: SelectionContext,
        exclude: set[str] | None = None,
    ) -> list[ScoredAction]:
        """All actions scored, applicable ones first, best utility first.

        Actions whose name is in ``exclude`` (e.g. because their circuit
        breaker is open) are left out entirely.
        """
        exclude = exclude or set()
        scored = [
            ScoredAction(
                action=action,
                utility=self.utility(action, context),
                applicable=action.applicable(system, context.target),
            )
            for action in self.repertoire
            if action.name not in exclude
        ]
        scored.sort(key=lambda s: (not s.applicable, -s.utility))
        return scored

    def select(
        self,
        system: SCPSystem,
        context: SelectionContext,
        exclude: set[str] | None = None,
    ) -> Action | None:
        """The most effective applicable action, or None for "do nothing".

        None is returned when no applicable action has positive expected
        utility -- acting would cost more than the risk it removes.
        """
        for scored in self.rank(system, context, exclude=exclude):
            if scored.applicable and scored.utility > 0:
                return scored.action
        return None
