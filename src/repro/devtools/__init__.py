"""Developer tooling that ships with the library.

``repro.devtools`` holds tools that guard the *code*, the way
``repro.resilience`` guards the running system: proactive checks that
catch faults before they become failures.  Currently:

- ``repro.devtools.lint`` -- "pfmlint", an AST-based static-analysis
  pass enforcing the repository's determinism and dependability
  invariants (seeded RNG discipline, no wall-clock in sim-time paths,
  picklable fleet callables, ...).
"""
