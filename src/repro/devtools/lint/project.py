"""The project-wide semantic model behind pfmlint's inter-procedural rules.

The per-file engine (:mod:`repro.devtools.lint.engine`) sees one module
at a time, so it can only flag faults that are syntactically local.  The
repo's hardest invariants are not local: a simulator step that calls a
helper in another module which calls ``time.perf_counter()`` is exactly
as wall-clock-coupled as a direct call, but no single file shows it.

This module closes that gap in two stages:

1. :func:`build_module_summary` extracts a compact, JSON-serializable
   **summary** of one module -- its imports (with top-level/lazy
   distinction), name bindings, classes and bases, and per-function
   facts (direct calls, wall-clock and unseeded-RNG sources, values
   that cannot cross a pickle boundary, unconditional deprecation
   warnings).  Summaries are pure data, so the content-addressed cache
   (:mod:`repro.devtools.lint.cache`) stores them alongside per-file
   findings and a warm run never re-parses an unchanged file.
2. :class:`ProjectModel` assembles all summaries into an **import
   graph** and a conservative **call graph**, and offers the
   reachability queries the PFM010--PFM014 rules are written against.

Soundness limits (documented, deliberate -- see docs/static-analysis.md):

- Call edges are resolved by *name*, through import bindings, same-module
  definitions, one level of re-export chasing, ``self.method`` within a
  class hierarchy, and locals assigned from a constructor visible in the
  same function.  Dynamic dispatch through arbitrary attributes,
  ``getattr``, callables stored in containers, and monkey-patching are
  invisible; the graph *under*-approximates those and never invents
  edges that cannot be named.
- Only ``def``-reachable code is modelled; module-level statements are
  folded into a pseudo-function ``<module>``.
- Nested functions are folded into their enclosing top-level function or
  method: a closure's calls are attributed to the function that created
  it, which over-approximates (the closure may never run) but keeps
  taint conservative.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.devtools.lint.rules import dotted_name

#: Bumped whenever the summary schema or extraction logic changes, so
#: cached entries from older analyzers can never be mistaken for fresh.
ANALYZER_VERSION = 3

#: Wall-clock call names (mirrors PFM002, shared by PFM011).
WALL_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)
DATETIME_CALLS = ("now", "utcnow", "today")

#: np.random attributes that construct generators rather than draw.
RNG_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: Keyword arguments at pool sinks documented to stay in the parent.
PARENT_SIDE_KWARGS = frozenset({"progress"})


def is_wall_call(name: str) -> bool:
    """Whether a dotted call name reads the host wall clock."""
    if name in WALL_CALLS:
        return True
    parts = name.split(".")
    return parts[-1] in DATETIME_CALLS and any(
        p in ("datetime", "date") for p in parts[:-1]
    )


def is_unseeded_rng_call(name: str, call: ast.Call, imports_random: bool) -> bool:
    """Whether a call draws from global/unseeded random state.

    Covers the legacy ``np.random.<draw>`` module API, stdlib
    ``random.<draw>`` (when the module is imported), and a bare
    ``default_rng()`` with no seed -- each produces a stream no master
    seed controls.
    """
    parts = name.split(".")
    if (
        len(parts) == 3
        and parts[0] in ("np", "numpy")
        and parts[1] == "random"
        and parts[2] not in RNG_CONSTRUCTORS
    ):
        return True
    if (
        imports_random
        and len(parts) == 2
        and parts[0] == "random"
        and parts[1] != "Random"
    ):
        return True
    if parts[-1] == "default_rng" and not call.args and not call.keywords:
        return True
    return False


def is_pool_sink(name: str) -> bool:
    """Whether a dotted call name is a process-boundary seam (PFM006/013)."""
    parts = name.split(".")
    if parts[-1] == "run_fleet":
        return True
    if parts[-1] == "submit" and len(parts) > 1:
        return True
    if parts[-1] == "map" and len(parts) > 1:
        base = parts[-2].lower()
        return "pool" in base or "executor" in base
    return False


def module_name_for_path(file_path) -> str | None:
    """Dotted module name, by climbing ``__init__.py`` package markers.

    ``src/repro/fleet/spec.py`` -> ``repro.fleet.spec`` because ``fleet``
    and ``repro`` carry ``__init__.py`` and ``src`` does not.  A
    free-standing ``script.py`` is its own top-level module name, and an
    ``__init__.py`` names (at least) its own directory.
    """
    import os

    path = os.path.abspath(str(file_path))
    if not path.endswith(".py"):
        return None
    parts: list[str] = []
    base = os.path.basename(path)[:-3]
    if base != "__init__":
        parts.append(base)
    directory = os.path.dirname(path)
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        parts.append(os.path.basename(directory))
        parent = os.path.dirname(directory)
        if parent == directory:
            break
        directory = parent
    if not parts:
        # __init__.py (or bare .py) outside any package: not importable.
        return None
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Per-module summary extraction (phase 1, cacheable)
# ----------------------------------------------------------------------


def _resolve_relative(module: str | None, is_package: bool, level: int,
                      target: str | None) -> str | None:
    """Absolute module for a ``from ... import`` with ``level`` dots."""
    if level == 0:
        return target
    if module is None:
        return None
    base = module.split(".") if is_package else module.split(".")[:-1]
    if level - 1 > len(base):
        return None
    if level > 1:
        base = base[: len(base) - (level - 1)]
    prefix = ".".join(base)
    if target:
        return f"{prefix}.{target}" if prefix else target
    return prefix or None


class _FunctionFacts:
    """Mutable collector for one top-level function or method."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno
        self.calls: list[tuple[str, int]] = []
        self.wall: list[tuple[str, int]] = []
        self.rng: list[tuple[str, int]] = []
        self.sinks: list[dict] = []
        self.unpicklable_locals: list[tuple[str, int]] = []
        self.ctor_locals: list[tuple[str, str, int]] = []
        self.fit_calls: list[dict] = []
        self.returns_unpicklable = False
        self.warns_deprecation = False

    def to_dict(self) -> dict:
        return {
            "lineno": self.lineno,
            "calls": [list(c) for c in self.calls],
            "wall": [list(c) for c in self.wall],
            "rng": [list(c) for c in self.rng],
            "sinks": self.sinks,
            "unpicklable_locals": [list(c) for c in self.unpicklable_locals],
            "ctor_locals": [list(c) for c in self.ctor_locals],
            "fit_calls": self.fit_calls,
            "returns_unpicklable": self.returns_unpicklable,
            "warns_deprecation": self.warns_deprecation,
        }


def _is_deprecation_warn(call: ast.Call) -> bool:
    """A ``warnings.warn(..., DeprecationWarning, ...)`` call."""
    name = dotted_name(call.func)
    if name is None or name.split(".")[-1] != "warn":
        return False
    candidates: list[ast.expr] = list(call.args[1:2])
    candidates += [kw.value for kw in call.keywords if kw.arg == "category"]
    for cand in candidates:
        cand_name = dotted_name(cand)
        if cand_name and cand_name.split(".")[-1] == "DeprecationWarning":
            return True
    return False


def build_module_summary(
    tree: ast.Module,
    module: str | None,
    path: str,
    suppressions: dict[int, set[str]] | None = None,
) -> dict:
    """Extract the JSON-serializable semantic summary of one module.

    ``suppressions`` (line -> suppressed rule ids, from
    :func:`repro.devtools.lint.engine.parse_suppressions`) sanctions
    impure *sources*: a wall-clock call on a line carrying a PFM002 or
    PFM011 suppression does not taint its callers, because the
    suppression already declares it deliberate wall accounting.  Same
    for RNG sources with PFM001/PFM012.
    """
    suppressions = suppressions or {}
    is_package = path.replace("\\", "/").endswith("__init__.py")

    def sanctioned(lineno: int, rules: tuple[str, ...]) -> bool:
        on_line = suppressions.get(lineno, set())
        return "ALL" in on_line or any(r in on_line for r in rules)

    imports: list[dict] = []
    bindings: dict[str, str] = {}
    imports_random = False

    # Imports inside function bodies are lazy (cycle-breaking idiom):
    # recorded with toplevel=False so the layer check ignores them while
    # call resolution still sees the bindings they create.
    lazy_import_ids: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    lazy_import_ids.add(id(sub))

    for node in ast.walk(tree):
        toplevel = id(node) not in lazy_import_ids
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    imports_random = True
                imports.append(
                    {
                        "module": alias.name,
                        "names": None,
                        "lineno": node.lineno,
                        "toplevel": toplevel,
                    }
                )
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    bindings[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(module, is_package, node.level, node.module)
            if target is None:
                continue
            names = [[a.name, a.asname or a.name] for a in node.names]
            imports.append(
                {
                    "module": target,
                    "names": names,
                    "lineno": node.lineno,
                    "toplevel": toplevel,
                }
            )
            for a in node.names:
                if a.name != "*":
                    bindings[a.asname or a.name] = f"{target}.{a.name}"

    functions: dict[str, _FunctionFacts] = {}
    classes: dict[str, dict] = {}
    module_unpicklable: list[str] = []

    def collect_body(facts: _FunctionFacts, body: list[ast.stmt],
                     local_unpicklable: set[str], nested_defs: set[str]) -> None:
        """Walk statements, folding nested defs into ``facts``."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_defs.add(stmt.name)
                collect_body(facts, stmt.body, local_unpicklable, nested_defs)
                continue
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if isinstance(stmt.value, ast.Lambda):
                    facts.returns_unpicklable = True
                elif isinstance(stmt.value, ast.Name) and (
                    stmt.value.id in local_unpicklable
                    or stmt.value.id in nested_defs
                ):
                    facts.returns_unpicklable = True
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    value = stmt.value
                    if isinstance(value, ast.Lambda):
                        local_unpicklable.add(target.id)
                        facts.unpicklable_locals.append(
                            (target.id, stmt.lineno)
                        )
                    elif isinstance(value, ast.Name) and (
                        value.id in local_unpicklable
                        or value.id in nested_defs
                    ):
                        local_unpicklable.add(target.id)
                        facts.unpicklable_locals.append(
                            (target.id, stmt.lineno)
                        )
                    elif isinstance(value, ast.Call):
                        callee = dotted_name(value.func)
                        if callee:
                            facts.ctor_locals.append(
                                (target.id, callee, stmt.lineno)
                            )
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                facts.calls.append((name, node.lineno))
                if is_wall_call(name) and not sanctioned(
                    node.lineno, ("PFM002", "PFM011")
                ):
                    facts.wall.append((name, node.lineno))
                if is_unseeded_rng_call(name, node, imports_random) and (
                    not sanctioned(node.lineno, ("PFM001", "PFM012"))
                ):
                    facts.rng.append((name, node.lineno))
                if _is_deprecation_warn(node) and isinstance(
                    stmt, ast.Expr
                ) and stmt.value is node:
                    facts.warns_deprecation = True
                if is_pool_sink(name):
                    facts.sinks.append(
                        {
                            "fn": name,
                            "lineno": node.lineno,
                            "args": [
                                arg.id if isinstance(arg, ast.Name) else None
                                for arg in node.args
                            ],
                            "kwargs": {
                                kw.arg: kw.value.id
                                for kw in node.keywords
                                if kw.arg is not None
                                and isinstance(kw.value, ast.Name)
                            },
                        }
                    )
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "fit"
                    and len(node.args) == 2
                ):
                    recv = dotted_name(node.func.value)
                    if recv is not None:
                        facts.fit_calls.append(
                            {"recv": recv, "npos": len(node.args),
                             "lineno": node.lineno}
                        )

    module_facts = _FunctionFacts(lineno=1)
    module_locals: set[str] = set()
    module_nested: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            facts = _FunctionFacts(lineno=stmt.lineno)
            collect_body(facts, stmt.body, set(), set())
            functions[stmt.name] = facts
        elif isinstance(stmt, ast.ClassDef):
            methods: dict[str, int] = {}
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    facts = _FunctionFacts(lineno=member.lineno)
                    collect_body(facts, member.body, set(), set())
                    functions[f"{stmt.name}.{member.name}"] = facts
                    methods[member.name] = member.lineno
            bases = []
            for base in stmt.bases:
                base_name = dotted_name(base)
                if base_name:
                    bases.append(base_name)
            classes[stmt.name] = {
                "lineno": stmt.lineno,
                "bases": bases,
                "methods": methods,
            }
        else:
            # Module-level statements fold into the "<module>" pseudo-fn.
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    stmt.value, ast.Lambda
                ):
                    module_unpicklable.append(target.id)
            collect_body(module_facts, [stmt], module_locals, module_nested)
    functions["<module>"] = module_facts

    return {
        "module": module,
        "path": path,
        "is_package": is_package,
        "imports": imports,
        "bindings": bindings,
        "functions": {
            name: facts.to_dict() for name, facts in sorted(functions.items())
        },
        "classes": dict(sorted(classes.items())),
        "module_unpicklable": sorted(set(module_unpicklable)),
    }


# ----------------------------------------------------------------------
# The assembled project model (phase 2)
# ----------------------------------------------------------------------


@dataclass
class CallSite:
    """One resolved call edge, anchored at the caller's source line."""

    caller: str
    callee: str
    lineno: int


@dataclass
class ImportChain:
    """A shortest module chain ``start -> ... -> target`` with the line
    of the first hop's import statement (where the finding anchors)."""

    modules: list[str]
    lineno: int

    def render(self) -> str:
        return " -> ".join(self.modules)


@dataclass
class ProjectModel:
    """Import graph + call graph over every analyzed module."""

    modules: dict[str, dict] = field(default_factory=dict)
    layers: object | None = None  # LayerConfig, attached by the engine

    # -- construction --------------------------------------------------

    def add(self, summary: dict) -> None:
        module = summary.get("module")
        if module:
            self.modules[module] = summary

    def finalize(self) -> None:
        """Build derived indexes; call after all summaries are added."""
        self._import_edges: dict[str, list[tuple[str, int]]] = {}
        for module in sorted(self.modules):
            summary = self.modules[module]
            edges: dict[str, int] = {}
            for imp in summary["imports"]:
                if not imp["toplevel"]:
                    continue
                for target in self._concrete_targets(imp):
                    if target != module and target not in edges:
                        edges[target] = imp["lineno"]
            self._import_edges[module] = sorted(edges.items())

        # Class ancestry (transitive, name-resolved across modules).
        self._ancestors: dict[str, set[str]] = {}
        for module in sorted(self.modules):
            for cls in sorted(self.modules[module]["classes"]):
                self._resolve_ancestors(f"{module}::{cls}")

        # Resolved call graph.
        self._call_edges: dict[str, list[CallSite]] = {}
        self._reverse_edges: dict[str, list[CallSite]] = {}
        for fkey in self.function_keys():
            module, qualname = fkey.split("::", 1)
            facts = self.modules[module]["functions"][qualname]
            sites: list[CallSite] = []
            seen: set[tuple[str, int]] = set()
            for name, lineno in facts["calls"]:
                callee = self.resolve_call(module, qualname, name)
                if callee is None or callee == fkey:
                    continue
                if (callee, lineno) in seen:
                    continue
                seen.add((callee, lineno))
                sites.append(CallSite(fkey, callee, lineno))
            sites.sort(key=lambda s: (s.lineno, s.callee))
            self._call_edges[fkey] = sites
            for site in sites:
                self._reverse_edges.setdefault(site.callee, []).append(site)
        for callers in self._reverse_edges.values():
            callers.sort(key=lambda s: (s.caller, s.lineno))

    def _concrete_targets(self, imp: dict) -> list[str]:
        """Model modules an import record actually touches.

        ``from repro.fleet import spec`` imports the submodule
        ``repro.fleet.spec`` when one exists, the package attribute
        otherwise; plain ``import a.b.c`` depends on ``a.b.c`` (its
        deepest known prefix if the leaf is outside the model).  Parent
        packages are *not* edges: importing any submodule executes
        every enclosing ``__init__`` at runtime regardless, so counting
        them would make the root package -- the interface layer that
        re-exports everything -- a dependency of all its own children.
        """
        targets: list[str] = []
        base = imp["module"]
        if imp["names"] is None:
            prefix_parts = base.split(".")
            for i in range(len(prefix_parts), 0, -1):
                prefix = ".".join(prefix_parts[:i])
                if prefix in self.modules:
                    targets.append(prefix)
                    break
        else:
            if base in self.modules:
                targets.append(base)
            for name, _alias in imp["names"]:
                sub = f"{base}.{name}"
                if sub in self.modules:
                    targets.append(sub)
        return targets

    # -- module-level queries ------------------------------------------

    def import_edges(self, module: str) -> list[tuple[str, int]]:
        """Sorted ``(imported_module, lineno)`` top-level edges."""
        return self._import_edges.get(module, [])

    def import_chain(
        self, start: str, targets: set[str]
    ) -> ImportChain | None:
        """Shortest top-level import chain from ``start`` into ``targets``.

        BFS in sorted edge order, so the returned chain is deterministic
        for a given graph.
        """
        if start in targets:
            return ImportChain([start], 0)
        parent: dict[str, str] = {start: ""}
        first_line: dict[str, int] = {}
        queue = [start]
        while queue:
            current = queue.pop(0)
            for nxt, lineno in self.import_edges(current):
                if nxt in parent:
                    continue
                parent[nxt] = current
                first_line[nxt] = lineno
                if nxt in targets:
                    chain = [nxt]
                    while chain[-1] != start:
                        chain.append(parent[chain[-1]])
                    chain.reverse()
                    return ImportChain(chain, first_line[chain[1]])
                queue.append(nxt)
        return None

    # -- symbol resolution ---------------------------------------------

    def _split_symbol(self, dotted: str) -> tuple[str, str] | None:
        """``pkg.mod.Class.method`` -> (module, qualname), longest module
        prefix wins."""
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            if module in self.modules:
                return module, ".".join(parts[i:])
        return None

    def resolve_symbol(self, module: str, dotted: str, _depth: int = 0):
        """Resolve a dotted name used in ``module`` to a project symbol.

        Returns ``("function", fkey)``, ``("class", ckey)`` or ``None``.
        Chases one import binding plus up to 8 re-export hops.
        """
        if _depth > 8 or module not in self.modules:
            return None
        summary = self.modules[module]
        head, _, rest = dotted.partition(".")
        bound = summary["bindings"].get(head)
        if bound is not None:
            full = f"{bound}.{rest}" if rest else bound
        elif head in summary["functions"] or head in summary["classes"]:
            full = f"{module}.{dotted}"
        else:
            return None
        split = self._split_symbol(full)
        if split is None:
            return None
        target_module, qualname = split
        if qualname == "":
            return None
        target = self.modules[target_module]
        if qualname in target["classes"]:
            return ("class", f"{target_module}::{qualname}")
        if qualname in target["functions"]:
            return ("function", f"{target_module}::{qualname}")
        head2, _, rest2 = qualname.partition(".")
        if head2 in target["classes"] and rest2:
            if rest2 in target["classes"][head2]["methods"]:
                return ("function", f"{target_module}::{head2}.{rest2}")
            # inherited method: look it up the ancestry
            method = self.resolve_method(f"{target_module}::{head2}", rest2)
            if method:
                return ("function", method)
            return None
        if head2 in target["bindings"]:
            # re-export (e.g. package __init__): chase it
            return self.resolve_symbol(target_module, qualname, _depth + 1)
        return None

    def _resolve_ancestors(self, ckey: str) -> set[str]:
        if ckey in self._ancestors:
            return self._ancestors[ckey]
        self._ancestors[ckey] = set()  # cycle guard
        module, cls = ckey.split("::", 1)
        ancestors: set[str] = set()
        for base in self.modules[module]["classes"][cls]["bases"]:
            resolved = self.resolve_symbol(module, base)
            if resolved and resolved[0] == "class":
                ancestors.add(resolved[1])
                ancestors |= self._resolve_ancestors(resolved[1])
        self._ancestors[ckey] = ancestors
        return ancestors

    def ancestors(self, ckey: str) -> set[str]:
        """Transitive name-resolved base classes of ``module::Class``."""
        return self._ancestors.get(ckey, set())

    def resolve_method(self, ckey: str, method: str) -> str | None:
        """``module::Class`` + method name -> function key, walking the
        class then its ancestors in deterministic (sorted) order."""
        module, cls = ckey.split("::", 1)
        if method in self.modules[module]["classes"][cls]["methods"]:
            return f"{module}::{cls}.{method}"
        for ancestor in sorted(self.ancestors(ckey)):
            amod, acls = ancestor.split("::", 1)
            if method in self.modules[amod]["classes"][acls]["methods"]:
                return f"{amod}::{acls}.{method}"
        return None

    def resolve_call(
        self, module: str, caller_qualname: str, name: str
    ) -> str | None:
        """Resolve one raw call name inside a function to a function key."""
        head, _, rest = name.partition(".")
        if head == "self" and "." in caller_qualname and rest:
            cls = caller_qualname.split(".")[0]
            method, _, trailing = rest.partition(".")
            if trailing:
                return None
            return self.resolve_method(f"{module}::{cls}", method)
        # locals constructed in this function: var = ClassName(...); var.m()
        if rest:
            facts = self.modules[module]["functions"].get(caller_qualname)
            if facts:
                method, _, trailing = rest.partition(".")
                if not trailing:
                    for var, ctor, _lineno in facts["ctor_locals"]:
                        if var != head:
                            continue
                        resolved = self.resolve_symbol(module, ctor)
                        if resolved and resolved[0] == "class":
                            return self.resolve_method(resolved[1], method)
        resolved = self.resolve_symbol(module, name)
        if resolved and resolved[0] == "function":
            return resolved[1]
        if resolved and resolved[0] == "class":
            # Calling a class == running its constructor.
            return self.resolve_method(resolved[1], "__init__")
        return None

    # -- call-graph queries --------------------------------------------

    def function_keys(self) -> list[str]:
        """Every ``module::qualname`` in sorted order."""
        keys = []
        for module in sorted(self.modules):
            for qualname in sorted(self.modules[module]["functions"]):
                keys.append(f"{module}::{qualname}")
        return keys

    def calls_from(self, fkey: str) -> list[CallSite]:
        return self._call_edges.get(fkey, [])

    def function_facts(self, fkey: str) -> dict:
        module, qualname = fkey.split("::", 1)
        return self.modules[module]["functions"][qualname]

    def path_of(self, fkey_or_module: str) -> str:
        module = fkey_or_module.split("::", 1)[0]
        return self.modules[module]["path"]

    def taint_chains(self, source_field: str) -> dict[str, tuple]:
        """Backward reachability from impure sources over the call graph.

        ``source_field`` selects the per-function source list (``"wall"``
        or ``"rng"``).  Returns ``{function_key: (next_fkey | None,
        call_lineno, source_name)}`` for every function from which a
        source is reachable: ``next_fkey`` is the next hop toward the
        source (``None`` when the function contains the source call
        itself), ``call_lineno`` anchors the hop in the caller, and
        ``source_name`` is the impure call at the end of the chain.

        Deterministic: BFS layer by layer with sorted tie-breaking, so
        the chosen shortest chain never depends on dict order.
        """
        chains: dict[str, tuple] = {}
        frontier: list[str] = []
        for fkey in self.function_keys():
            sources = self.function_facts(fkey)[source_field]
            if sources:
                name, lineno = min(
                    ((n, ln) for n, ln in sources), key=lambda c: (c[1], c[0])
                )
                chains[fkey] = (None, lineno, name)
                frontier.append(fkey)
        while frontier:
            next_frontier: list[str] = []
            for fkey in sorted(frontier):
                source_name = chains[fkey][2]
                for site in self._reverse_edges.get(fkey, []):
                    if site.caller in chains:
                        continue
                    chains[site.caller] = (fkey, site.lineno, source_name)
                    next_frontier.append(site.caller)
            frontier = next_frontier
        return chains

    def render_chain(self, fkey: str, chains: dict[str, tuple]) -> str:
        """``mod::f -> mod2::g -> time.time()`` for a tainted function."""
        hops = [fkey]
        current = fkey
        while True:
            nxt, _lineno, source = chains[current]
            if nxt is None:
                hops.append(f"{source}()")
                break
            hops.append(nxt)
            current = nxt
        return " -> ".join(hops)


def build_project_model(summaries: list[dict]) -> ProjectModel:
    """Assemble and finalize a :class:`ProjectModel` from summaries."""
    model = ProjectModel()
    for summary in summaries:
        model.add(summary)
    model.finalize()
    return model
