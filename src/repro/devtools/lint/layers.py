"""The declared layer DAG that PFM010 checks the import graph against.

The paper's thesis is that dependability is an *architectural* property;
the concrete architectural contract in this repo is a layering: telemetry
never imports the control loop it observes (observation must not
perturb), prediction never reaches the controller that consumes its
scores, the fleet orchestrates but is never imported by the layers it
runs.  Those rules only stay true if something checks them -- this
module loads the contract as **data** so the DAG reviews like
configuration, not like linter code.

The checked-in contract lives in ``pfmlint-layers.json`` at the repo
root (``--layers`` overrides the path); when the file is absent the
embedded :data:`DEFAULT_LAYER_DATA` -- kept byte-identical to the
checked-in file -- applies, so ``lint_paths`` works from any directory.

Format::

    {
      "version": 1,
      "layers": [
        {"name": "foundation", "modules": ["repro.errors"], "may_depend_on": []},
        {"name": "telemetry", "modules": ["repro.telemetry"],
         "may_depend_on": ["foundation"]},
        ...
      ]
    }

- ``modules`` are dotted prefixes matched on package boundaries; the
  **longest** matching prefix assigns the layer, so
  ``repro.resilience.campaign`` can sit above ``repro.resilience``.
- ``may_depend_on`` lists layer names; the effective allowance is the
  transitive closure (allowing ``core`` implies everything ``core`` may
  itself depend on), so the declared file stays minimal.
- The declared layer graph must itself be acyclic -- a cycle in the
  contract means there is no layering to enforce, and loading raises
  :class:`LayerConfigError`.
- Modules matching no prefix are unconstrained (and invisible as
  *targets*): the contract covers exactly what it names.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

#: Default layer filename, looked up in the working directory.
DEFAULT_LAYERS_FILE = "pfmlint-layers.json"

LAYERS_VERSION = 1

#: The embedded contract for this repository (see module docstring);
#: kept in lockstep with the checked-in ``pfmlint-layers.json`` by
#: ``tests/devtools/test_layers.py``.
DEFAULT_LAYER_DATA: dict = {
    "version": 1,
    "layers": [
        {
            "name": "foundation",
            "modules": [
                "repro.errors",
                "repro.rng",
                "repro.version",
                "repro.reporting",
            ],
            "may_depend_on": [],
        },
        {
            "name": "telemetry",
            "modules": ["repro.telemetry"],
            "may_depend_on": ["foundation"],
        },
        {
            "name": "simulator",
            "modules": ["repro.simulator"],
            "may_depend_on": ["foundation"],
        },
        {
            "name": "markov",
            "modules": ["repro.markov"],
            "may_depend_on": ["foundation"],
        },
        {
            "name": "system",
            "modules": [
                "repro.telecom",
                "repro.faults",
                "repro.monitoring",
                "repro.actions",
            ],
            "may_depend_on": ["foundation", "simulator", "telemetry"],
        },
        {
            "name": "prediction",
            "modules": ["repro.prediction"],
            "may_depend_on": ["foundation", "markov", "system", "telemetry"],
        },
        {
            "name": "reliability",
            "modules": ["repro.reliability"],
            "may_depend_on": ["foundation", "markov", "prediction"],
        },
        {
            "name": "resilience",
            "modules": ["repro.resilience"],
            "may_depend_on": ["foundation", "telemetry", "system"],
        },
        {
            "name": "fleet",
            "modules": ["repro.fleet"],
            "may_depend_on": [
                "foundation",
                "telemetry",
                "system",
                "resilience",
            ],
        },
        {
            "name": "core",
            "modules": ["repro.core"],
            "may_depend_on": [
                "foundation",
                "telemetry",
                "simulator",
                "markov",
                "system",
                "prediction",
                "reliability",
                "resilience",
                "fleet",
            ],
        },
        {
            "name": "campaign",
            "modules": ["repro.resilience.campaign"],
            "may_depend_on": ["core"],
        },
        {
            "name": "interface",
            "modules": ["repro", "repro.cli", "repro.devtools"],
            "may_depend_on": ["campaign", "core"],
        },
    ],
}


class LayerConfigError(ValueError):
    """The layer file is malformed or its declared graph has a cycle."""


@dataclass(frozen=True)
class LayerConfig:
    """A validated layer contract with closure-expanded allowances."""

    names: tuple[str, ...]
    prefixes: tuple[tuple[str, str], ...]  # (module_prefix, layer) sorted
    allowed: dict  # layer -> frozenset of transitively allowed layers
    source: str  # where the contract came from (path or "<default>")

    def layer_of(self, module: str) -> str | None:
        """Longest-prefix layer assignment on dotted boundaries."""
        best: str | None = None
        best_len = -1
        for prefix, layer in self.prefixes:
            if module == prefix or module.startswith(prefix + "."):
                if len(prefix) > best_len:
                    best, best_len = layer, len(prefix)
        return best

    def may_depend(self, layer: str, target: str) -> bool:
        return target == layer or target in self.allowed[layer]


def _close_over(declared: dict[str, set[str]]) -> dict[str, frozenset]:
    """Transitive closure of the declared layer DAG; rejects cycles."""
    closed: dict[str, frozenset] = {}

    def visit(layer: str, trail: tuple[str, ...]) -> frozenset:
        if layer in closed:
            return closed[layer]
        if layer in trail:
            cycle = " -> ".join(trail + (layer,))
            raise LayerConfigError(f"layer dependency cycle: {cycle}")
        acc: set[str] = set()
        for dep in sorted(declared[layer]):
            acc.add(dep)
            acc |= visit(dep, trail + (layer,))
        closed[layer] = frozenset(acc)
        return closed[layer]

    for layer in sorted(declared):
        visit(layer, ())
    return closed


def parse_layer_data(data: dict, source: str = "<data>") -> LayerConfig:
    """Validate raw layer JSON into a :class:`LayerConfig`."""
    if data.get("version") != LAYERS_VERSION:
        raise LayerConfigError(
            f"unsupported layers version {data.get('version')!r} in {source}"
        )
    entries = data.get("layers")
    if not isinstance(entries, list) or not entries:
        raise LayerConfigError(f"{source}: 'layers' must be a non-empty list")
    names: list[str] = []
    prefixes: list[tuple[str, str]] = []
    declared: dict[str, set[str]] = {}
    for entry in entries:
        name = entry.get("name")
        if not name or name in declared:
            raise LayerConfigError(
                f"{source}: missing or duplicate layer name {name!r}"
            )
        modules = entry.get("modules") or []
        if not modules:
            raise LayerConfigError(f"{source}: layer {name!r} lists no modules")
        names.append(name)
        declared[name] = set(entry.get("may_depend_on") or [])
        for prefix in modules:
            prefixes.append((prefix, name))
    for layer, deps in sorted(declared.items()):
        unknown = sorted(deps - set(names))
        if unknown:
            raise LayerConfigError(
                f"{source}: layer {layer!r} depends on unknown {unknown}"
            )
    seen_prefixes: set[str] = set()
    for prefix, _layer in prefixes:
        if prefix in seen_prefixes:
            raise LayerConfigError(
                f"{source}: module prefix {prefix!r} assigned twice"
            )
        seen_prefixes.add(prefix)
    return LayerConfig(
        names=tuple(names),
        prefixes=tuple(sorted(prefixes)),
        allowed=_close_over(declared),
        source=source,
    )


def load_layers(path: str | None = None) -> LayerConfig:
    """Load the layer contract from ``path``/CWD, else the embedded default.

    An explicitly named file must exist; the conventional
    ``pfmlint-layers.json`` falls back to :data:`DEFAULT_LAYER_DATA`
    when absent.
    """
    explicit = path is not None
    path = path or DEFAULT_LAYERS_FILE
    if not os.path.exists(path):
        if explicit:
            raise LayerConfigError(f"layers file not found: {path}")
        return parse_layer_data(DEFAULT_LAYER_DATA, "<default>")
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise LayerConfigError(f"{path}: not valid JSON ({exc})") from exc
    return parse_layer_data(data, path)
