"""The pfmlint rule set: this repository's determinism invariants as code.

Every rule is a small AST pass registered in :data:`REGISTRY`.  The rules
encode invariants the test suite can only probe dynamically -- byte-equal
serial/parallel fleets, reproducible BENCH documents, picklable RunSpecs
-- as static checks that fire at the offending line.

Add a rule by subclassing :class:`Rule` and decorating with
:func:`register`; the docstring becomes the rule's documentation and is
asserted non-empty by the meta-tests.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.devtools.lint.findings import Finding, ModuleContext

#: Rule id -> rule class, in registration (= id) order.
REGISTRY: dict[str, type["Rule"]] = {}


def register(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to :data:`REGISTRY` (ids unique)."""
    if cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list["Rule"]:
    """Fresh instances of every registered rule, in id order."""
    return [REGISTRY[rule_id]() for rule_id in sorted(REGISTRY)]


class Rule:
    """Base class: one invariant, checked per module.

    Subclasses set :attr:`id` (``PFM###``), :attr:`title`, and
    :attr:`severity`, and implement :meth:`check` yielding
    :class:`Finding` objects.  The class docstring is the user-facing
    rule documentation (shown by ``--list-rules``).

    :attr:`version` is the rule's *semantic* version: bump it whenever
    the rule tightens (new patterns caught, scope widened).  The version
    participates in finding fingerprints and in the analysis-cache
    engine signature, so a bump atomically invalidates both the rule's
    baseline entries and every cached per-file result -- a stale
    ``pfmlint-baseline.json`` entry can never mask a finding the
    stricter rule would now report.
    """

    id: str = ""
    title: str = ""
    severity: str = "error"
    version: int = 1
    #: True for project-phase rules (see ``project_rules.ProjectRule``).
    project: bool = False

    def check(self, module: ModuleContext) -> Iterable[Finding]:
        raise NotImplementedError

    @classmethod
    def doc(cls) -> str:
        """First docstring paragraph: the one-line rule summary."""
        text = (cls.__doc__ or "").strip()
        return text.split("\n\n")[0].replace("\n", " ")


# ----------------------------------------------------------------------
# AST helpers shared by the rules
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_default_rng_call(node: ast.AST) -> bool:
    """A ``default_rng(...)`` call whose arguments are all literals."""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None or name.split(".")[-1] != "default_rng":
        return False
    args_ok = all(isinstance(arg, ast.Constant) for arg in node.args)
    return args_ok and not node.keywords


def _walk_with_function_stack(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
    """Yield ``(node, enclosing_function_names)`` pairs, outermost first."""

    def visit(node: ast.AST, stack: tuple[str, ...]) -> Iterator:
        for child in ast.iter_child_nodes(node):
            yield child, stack
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from visit(child, stack + (child.name,))
            else:
                yield from visit(child, stack)

    yield from visit(tree, ())


# ----------------------------------------------------------------------
# PFM001 -- RNG discipline
# ----------------------------------------------------------------------


@register
class LegacyRandomRule(Rule):
    """Unseeded or legacy RNG use breaks run reproducibility.

    Flags the legacy ``np.random.<fn>`` module API (global, unseeded
    state shared across the whole process) and hard-coded
    ``default_rng(<literal>)`` fallbacks -- ``rng or default_rng(0)``
    expressions and call defaults -- in library code.  Two fleet shards
    that both fall back to seed zero silently share one stream, which is
    exactly the fault the fleet's master-seed derivation exists to
    prevent.  Require an explicit generator, derive one from the owning
    spec's master seed, or route an intentional default through
    :func:`repro.rng.ensure_rng`.
    """

    id = "PFM001"
    title = "unseeded or legacy RNG"

    #: np.random attributes that are constructors, not stream draws.
    ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "BitGenerator",
            "SeedSequence",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        imports_random = any(
            isinstance(node, ast.Import)
            and any(alias.name == "random" for alias in node.names)
            for node in module.tree.body
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None:
                    parts = name.split(".")
                    if (
                        len(parts) == 3
                        and parts[0] in ("np", "numpy")
                        and parts[1] == "random"
                        and parts[2] not in self.ALLOWED
                    ):
                        yield module.finding(
                            self.id,
                            node,
                            f"legacy global numpy RNG '{name}'; draw from an "
                            "explicit np.random.Generator instead",
                        )
                    elif (
                        imports_random
                        and len(parts) == 2
                        and parts[0] == "random"
                        # random.Random(seed) constructs an independent,
                        # explicitly-seeded instance -- that is the fix,
                        # not the fault.
                        and parts[1] != "Random"
                    ):
                        yield module.finding(
                            self.id,
                            node,
                            f"stdlib global RNG '{name}'; draw from an "
                            "explicit np.random.Generator instead",
                        )
            if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
                for value in node.values[1:]:
                    if _is_default_rng_call(value):
                        yield module.finding(
                            self.id,
                            value,
                            "hard-coded default_rng fallback; require an "
                            "explicit rng or use repro.rng.ensure_rng",
                        )
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_default_rng_call(default):
                        yield module.finding(
                            self.id,
                            default,
                            "default_rng(...) as a parameter default shares "
                            "one hard-coded stream across callers; require "
                            "an explicit rng",
                        )


# ----------------------------------------------------------------------
# PFM002 -- wall-clock in sim-time paths
# ----------------------------------------------------------------------


@register
class WallClockRule(Rule):
    """Wall-clock reads inside simulated-time code paths.

    The simulator, the MEA cycle, and the sim-time half of telemetry all
    advance on the DES clock; a ``time.time()`` / ``perf_counter()`` /
    ``datetime.now()`` call there couples results to the host machine
    and breaks byte-identical serial/parallel fleet runs.  Scoped to
    ``repro/simulator/``, ``repro/core/mea.py`` and ``repro/telemetry/``;
    intentional wall-clock accounting (e.g. the wall half of a span's
    dual accounting) carries an inline suppression with a reason.
    """

    id = "PFM002"
    title = "wall-clock in sim-time path"

    #: Path fragments (posix) delimiting the sim-time scope.
    SCOPES = ("repro/simulator/", "repro/core/mea", "repro/telemetry/")

    WALL_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
        }
    )
    DATETIME_CALLS = ("now", "utcnow", "today")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        path = module.path.replace("\\", "/")
        if not any(scope in path for scope in self.SCOPES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            is_wall = name in self.WALL_CALLS
            parts = name.split(".")
            is_datetime = (
                parts[-1] in self.DATETIME_CALLS
                and any(p in ("datetime", "date") for p in parts[:-1])
            )
            if is_wall or is_datetime:
                yield module.finding(
                    self.id,
                    node,
                    f"wall-clock call '{name}' in a sim-time module; use "
                    "the engine clock (engine.now), or suppress with a "
                    "reason if this is deliberate wall accounting",
                )


# ----------------------------------------------------------------------
# PFM003 -- float equality
# ----------------------------------------------------------------------


@register
class FloatEqualityRule(Rule):
    """``==`` / ``!=`` against a float literal.

    Exact float comparison is representation-dependent: a value that went
    through one extra rounding (e.g. the vectorized vs reference HSMM
    path) fails the comparison although the computation is equivalent.
    Use ``math.isclose`` / ``np.isclose``, compare against an integer
    sentinel, or suppress with a reason where exact equality is the
    point (e.g. detecting a byte-identical stuck gauge reading).
    """

    id = "PFM003"
    title = "float literal equality"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(
                node.ops, operands[:-1], operands[1:], strict=True
            ):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (left, right):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, float
                    ):
                        yield module.finding(
                            self.id,
                            node,
                            f"exact comparison against float literal "
                            f"{side.value!r}; use math.isclose/np.isclose "
                            "or an integer sentinel",
                        )
                        break


# ----------------------------------------------------------------------
# PFM004 -- unordered iteration
# ----------------------------------------------------------------------


@register
class UnorderedIterationRule(Rule):
    """Iteration over a set in ordered context without ``sorted()``.

    Set iteration order depends on insertion history and hash
    randomization; when it feeds a ``for`` loop, a comprehension, or a
    ``list``/``tuple``/``join`` conversion, the downstream document
    (``to_json``, ledger rows, report tables) is no longer
    deterministic.  Wrap the set in ``sorted(...)`` -- the aggregator's
    byte-identical serial/parallel guarantee depends on it.
    """

    id = "PFM004"
    title = "unordered set iteration"

    ORDERED_SINKS = frozenset({"list", "tuple", "enumerate"})

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in ("set", "frozenset")
        return False

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        def flag(node: ast.AST) -> Finding:
            return module.finding(
                self.id,
                node,
                "iterating a set in an ordered context; wrap it in "
                "sorted(...) so downstream output stays deterministic",
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and self._is_set_expr(node.iter):
                yield flag(node.iter)
            if isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for generator in node.generators:
                    # A set comprehension's own result is unordered anyway;
                    # only ordered collectors care about generator order.
                    if not isinstance(node, ast.SetComp) and self._is_set_expr(
                        generator.iter
                    ):
                        yield flag(generator.iter)
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                is_join = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                )
                if (
                    (name in self.ORDERED_SINKS or is_join)
                    and node.args
                    and self._is_set_expr(node.args[0])
                ):
                    yield flag(node.args[0])


# ----------------------------------------------------------------------
# PFM005 -- mutable default arguments
# ----------------------------------------------------------------------


@register
class MutableDefaultRule(Rule):
    """Mutable default argument shared across calls.

    A ``list``/``dict``/``set`` default is evaluated once at ``def``
    time, so every call mutating it leaks state into the next --
    historically how one shard's warning episodes bled into another's.
    Default to ``None`` and construct inside the function body.
    """

    id = "PFM005"
    title = "mutable default argument"

    MUTABLE_CALLS = frozenset(
        {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                mutable = isinstance(
                    default,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp),
                )
                if isinstance(default, ast.Call):
                    name = dotted_name(default.func)
                    if name is not None:
                        mutable = name.split(".")[-1] in self.MUTABLE_CALLS
                if mutable:
                    yield module.finding(
                        self.id,
                        default,
                        f"mutable default argument in {node.name}(); use "
                        "None and construct per call",
                    )


# ----------------------------------------------------------------------
# PFM006 -- unpicklable callables crossing process boundaries
# ----------------------------------------------------------------------


@register
class UnpicklableCallableRule(Rule):
    """Lambda or nested function handed to a process-pool seam.

    ``ProcessPoolExecutor.submit`` / ``.map`` and ``run_fleet`` pickle
    their callables; lambdas and functions defined inside another
    function are not picklable, so the process backend dies (or worse:
    works only on fork platforms, silently diverging from spawn).  Pass
    a module-level function instead.  ``progress=`` callbacks run in the
    parent and are exempt.
    """

    id = "PFM006"
    title = "unpicklable callable at process boundary"

    #: Keyword arguments documented to stay in the parent process.
    PARENT_SIDE_KWARGS = frozenset({"progress"})

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> set[str]:
        nested: set[str] = set()
        for node, stack in _walk_with_function_stack(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and stack:
                nested.add(node.name)
        return nested

    @classmethod
    def _is_pool_sink(cls, call: ast.Call) -> bool:
        name = dotted_name(call.func)
        if name is None:
            return False
        parts = name.split(".")
        if parts[-1] == "run_fleet":
            return True
        if parts[-1] == "submit" and len(parts) > 1:
            return True
        if parts[-1] == "map" and len(parts) > 1:
            base = parts[-2].lower()
            return "pool" in base or "executor" in base
        return False

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        nested = self._nested_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and self._is_pool_sink(node)):
                continue
            name = dotted_name(node.func) or ""
            is_submit_like = name.split(".")[-1] in ("submit", "map")
            candidates: list[tuple[ast.AST, str | None]] = [
                (arg, None) for arg in node.args
            ]
            candidates += [(kw.value, kw.arg) for kw in node.keywords]
            for value, kwarg in candidates:
                if kwarg in self.PARENT_SIDE_KWARGS:
                    continue
                if isinstance(value, ast.Lambda):
                    yield module.finding(
                        self.id,
                        value,
                        f"lambda passed to '{name}' cannot be pickled "
                        "across the process boundary; use a module-level "
                        "function",
                    )
                elif (
                    is_submit_like
                    and isinstance(value, ast.Name)
                    and value.id in nested
                ):
                    yield module.finding(
                        self.id,
                        value,
                        f"nested function '{value.id}' passed to '{name}' "
                        "cannot be pickled across the process boundary; "
                        "move it to module level",
                    )


# ----------------------------------------------------------------------
# PFM007 -- frozen-spec mutation
# ----------------------------------------------------------------------


@register
class FrozenSpecMutationRule(Rule):
    """Mutating frozen-spec fields outside ``dataclasses.replace``.

    ``RunSpec`` (and every ``@dataclass(frozen=True)``) is hashable and
    ledger-keyed by value; writing a field through
    ``object.__setattr__`` or plain attribute assignment desynchronizes
    the spec from its ledger key and corrupts resume.  Use
    ``spec.replace(...)`` / ``dataclasses.replace``.  Constructors
    (``__init__`` / ``__post_init__`` / ``__setstate__``) are exempt.
    """

    id = "PFM007"
    title = "frozen spec mutated in place"

    #: Methods allowed to call object.__setattr__ on self.
    CONSTRUCTOR_METHODS = frozenset(
        {"__init__", "__post_init__", "__new__", "__setstate__"}
    )
    #: Frozen types recognised even when defined in another module.
    KNOWN_FROZEN = frozenset({"RunSpec"})

    @staticmethod
    def _frozen_dataclasses(tree: ast.Module) -> set[str]:
        frozen: set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for decorator in node.decorator_list:
                if isinstance(decorator, ast.Call) and dotted_name(
                    decorator.func
                ) in ("dataclass", "dataclasses.dataclass"):
                    for kw in decorator.keywords:
                        if (
                            kw.arg == "frozen"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is True
                        ):
                            frozen.add(node.name)
        return frozen

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        frozen_types = self.KNOWN_FROZEN | self._frozen_dataclasses(module.tree)

        for node, stack in _walk_with_function_stack(module.tree):
            if isinstance(node, ast.Call):
                if dotted_name(node.func) == "object.__setattr__" and (
                    not stack or stack[-1] not in self.CONSTRUCTOR_METHODS
                ):
                    yield module.finding(
                        self.id,
                        node,
                        "object.__setattr__ outside a constructor bypasses "
                        "the frozen contract; use dataclasses.replace",
                    )

        # Per-function: names bound from FrozenType(...) then written to.
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            frozen_names: set[str] = set()
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Call
                ):
                    callee = dotted_name(stmt.value.func)
                    if callee and callee.split(".")[-1] in frozen_types:
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                frozen_names.add(target.id)
                targets: list[ast.AST] = []
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                elif isinstance(stmt, ast.AugAssign):
                    targets = [stmt.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in frozen_names
                    ):
                        yield module.finding(
                            self.id,
                            stmt,
                            f"assignment to field of frozen spec "
                            f"'{target.value.id}'; use .replace(...)",
                        )


# ----------------------------------------------------------------------
# PFM008 -- __all__ drift
# ----------------------------------------------------------------------


@register
class AllDriftRule(Rule):
    """``__all__`` out of sync with the module's actual public surface.

    The curated ``__all__`` lists are API documentation the tests pin;
    drift means an export that raises ``AttributeError`` on access or a
    public name that silently bypasses the curated surface.  Flags
    duplicate entries, names listed but never bound (unless the module
    lazy-loads through a module-level ``__getattr__``), and public
    top-level functions/classes missing from the list.
    """

    id = "PFM008"
    title = "__all__ drift"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        tree = module.tree
        all_node: ast.AST | None = None
        exported: list[str] = []
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(value, (ast.List, ast.Tuple)) and all(
                        isinstance(e, ast.Constant) and isinstance(e.value, str)
                        for e in value.elts
                    ):
                        all_node = stmt
                        exported = [e.value for e in value.elts]
        if all_node is None:
            return

        bound: set[str] = set()
        has_getattr = False
        star_import = False
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(stmt.name)
                if stmt.name == "__getattr__":
                    has_getattr = True
            elif isinstance(stmt, ast.ClassDef):
                bound.add(stmt.name)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    if alias.name == "*":
                        star_import = True
                    else:
                        bound.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                stmt_targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in stmt_targets:
                    for name_node in ast.walk(target):
                        if isinstance(name_node, ast.Name):
                            bound.add(name_node.id)

        seen: set[str] = set()
        for name in exported:
            if name in seen:
                yield module.finding(
                    self.id, all_node, f"duplicate __all__ entry {name!r}"
                )
            seen.add(name)
            if (
                name not in bound
                and not has_getattr
                and not star_import
            ):
                yield module.finding(
                    self.id,
                    all_node,
                    f"__all__ exports {name!r} but the module never binds "
                    "it (and has no lazy __getattr__)",
                )

        for stmt in tree.body:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = stmt.name
                if not name.startswith("_") and name not in seen:
                    yield module.finding(
                        self.id,
                        stmt,
                        f"public name {name!r} is not listed in __all__",
                    )


# ----------------------------------------------------------------------
# PFM009 -- swallowed exceptions
# ----------------------------------------------------------------------


@register
class SwallowedExceptionRule(Rule):
    """A broad ``except`` that silently discards the exception.

    A handler for ``Exception`` / ``BaseException`` / bare ``except``
    whose body neither re-raises, nor calls anything (no logging, no
    counter, no fallback computation), nor binds a value is a silent
    failure: exactly the *undetected error* state the paper's taxonomy
    warns turns into an unattributable downstream failure.  In a fleet
    worker it also destroys the failure-classification seam -- the
    supervisor cannot retry or quarantine a fault it never observes.

    Swallowing is occasionally the right call (a best-effort cache
    probe on a path that must never raise); say so with an inline
    ``# pfmlint: disable=PFM009 -- reason`` so the decision is visible
    and auditable instead of implicit.
    """

    id = "PFM009"
    title = "swallowed exception"

    #: Handler types broad enough to eat faults that were not anticipated.
    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True  # bare except
        names: list[ast.expr]
        if isinstance(handler.type, ast.Tuple):
            names = list(handler.type.elts)
        else:
            names = [handler.type]
        for node in names:
            name = dotted_name(node)
            if name is not None and name.split(".")[-1] in self._BROAD:
                return True
        return False

    def _handles(self, handler: ast.ExceptHandler) -> bool:
        """Whether the body observably reacts to the exception."""
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(
                    node,
                    (
                        ast.Raise,
                        ast.Call,
                        ast.Assign,
                        ast.AugAssign,
                        ast.AnnAssign,
                        ast.Return,
                        ast.Yield,
                        ast.YieldFrom,
                    ),
                ):
                    return True
        return False

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            if self._handles(node):
                continue
            caught = (
                "bare except"
                if node.type is None
                else f"except {ast.unparse(node.type)}"
            )
            yield module.finding(
                self.id,
                node,
                f"{caught} swallows the exception silently (no raise, call, "
                "or assignment); record it, re-raise it, or suppress this "
                "line with a reason",
            )
