"""Human-readable and machine-readable pfmlint reports."""

from __future__ import annotations

import json

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.rules import REGISTRY


def text_report(
    new: list[Finding],
    baselined: list[Finding],
    files_checked: int,
    suppressed: int,
) -> str:
    """The terminal report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in new:
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    summary = (
        f"pfmlint: {len(new)} finding(s) in {files_checked} file(s)"
        f" ({len(baselined)} baselined, {suppressed} suppressed inline)"
    )
    lines.append(summary)
    return "\n".join(lines)


def json_report(
    new: list[Finding],
    baselined: list[Finding],
    files_checked: int,
    suppressed: int,
) -> str:
    """The JSON document published as a CI artifact."""
    doc = {
        "tool": "pfmlint",
        "summary": {
            "files_checked": files_checked,
            "new_findings": len(new),
            "baselined_findings": len(baselined),
            "suppressed_inline": suppressed,
        },
        "rules": {
            rule_id: {
                "title": rule_cls.title,
                "severity": rule_cls.severity,
                "version": rule_cls.version,
                "project": rule_cls.project,
                "doc": rule_cls.doc(),
            }
            for rule_id, rule_cls in sorted(REGISTRY.items())
        },
        "findings": [f.to_json_dict() for f in new],
        "baselined": [f.to_json_dict() for f in baselined],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def sarif_report(new: list[Finding], baselined: list[Finding]) -> str:
    """A SARIF 2.1.0 document (GitHub code-scanning upload format).

    New findings become plain results; baselined findings are included
    with an ``external`` suppression so code scanning shows them as
    dismissed rather than losing them entirely.  Output is fully
    deterministic: rules and results are emitted in sorted order and
    the JSON is dumped with sorted keys.
    """
    rule_ids = sorted(REGISTRY)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}

    def result(finding: Finding, suppressed: bool) -> dict:
        severity = getattr(REGISTRY.get(finding.rule), "severity", "error")
        doc: dict = {
            "ruleId": finding.rule,
            "level": severity if severity in ("error", "warning") else "note",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "ROOTPATH",
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": max(finding.col, 1),
                            "snippet": {"text": finding.snippet},
                        },
                    }
                }
            ],
            "partialFingerprints": {"pfmlint/v1": finding.fingerprint()},
        }
        if finding.rule in rule_index:
            doc["ruleIndex"] = rule_index[finding.rule]
        if suppressed:
            doc["suppressions"] = [
                {"kind": "external", "justification": "pfmlint baseline"}
            ]
        return doc

    results = [result(f, False) for f in sorted(new)]
    results += [result(f, True) for f in sorted(baselined)]
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "pfmlint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": [
                            {
                                "id": rule_id,
                                "name": REGISTRY[rule_id].title or rule_id,
                                "shortDescription": {
                                    "text": REGISTRY[rule_id].title or rule_id
                                },
                                "fullDescription": {
                                    "text": REGISTRY[rule_id].doc()
                                },
                                "defaultConfiguration": {
                                    "level": REGISTRY[rule_id].severity
                                },
                                "properties": {
                                    "version": REGISTRY[rule_id].version,
                                    "project": REGISTRY[rule_id].project,
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def list_rules_text() -> str:
    """The ``--list-rules`` catalogue."""
    lines = []
    for rule_id, rule_cls in sorted(REGISTRY.items()):
        kind = "project" if rule_cls.project else "file"
        lines.append(
            f"{rule_id}  [{rule_cls.severity}] [{kind}, v{rule_cls.version}]"
            f"  {rule_cls.title}"
        )
        lines.append(f"    {rule_cls.doc()}")
    return "\n".join(lines)
