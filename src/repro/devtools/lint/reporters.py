"""Human-readable and machine-readable pfmlint reports."""

from __future__ import annotations

import json

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.rules import REGISTRY


def text_report(
    new: list[Finding],
    baselined: list[Finding],
    files_checked: int,
    suppressed: int,
) -> str:
    """The terminal report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in new:
        lines.append(f"{finding.location()}: {finding.rule} {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    summary = (
        f"pfmlint: {len(new)} finding(s) in {files_checked} file(s)"
        f" ({len(baselined)} baselined, {suppressed} suppressed inline)"
    )
    lines.append(summary)
    return "\n".join(lines)


def json_report(
    new: list[Finding],
    baselined: list[Finding],
    files_checked: int,
    suppressed: int,
) -> str:
    """The JSON document published as a CI artifact."""
    doc = {
        "tool": "pfmlint",
        "summary": {
            "files_checked": files_checked,
            "new_findings": len(new),
            "baselined_findings": len(baselined),
            "suppressed_inline": suppressed,
        },
        "rules": {
            rule_id: {
                "title": rule_cls.title,
                "severity": rule_cls.severity,
                "doc": rule_cls.doc(),
            }
            for rule_id, rule_cls in sorted(REGISTRY.items())
        },
        "findings": [f.to_json_dict() for f in new],
        "baselined": [f.to_json_dict() for f in baselined],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def list_rules_text() -> str:
    """The ``--list-rules`` catalogue."""
    lines = []
    for rule_id, rule_cls in sorted(REGISTRY.items()):
        lines.append(f"{rule_id}  [{rule_cls.severity}]  {rule_cls.title}")
        lines.append(f"    {rule_cls.doc()}")
    return "\n".join(lines)
