"""The inter-procedural pfmlint rules: PFM010 -- PFM014.

These rules run in the engine's *project phase*, against the assembled
:class:`~repro.devtools.lint.project.ProjectModel`, and express the
invariants a per-file pass cannot see: the layer DAG, transitive
wall-clock and RNG taint, unpicklable values flowing through
assignments, and internal use of deprecation-shimmed call forms.

Each rule subclasses :class:`ProjectRule` and implements
:meth:`~ProjectRule.check_project`; findings anchor at a concrete
``(file, line)`` so the usual inline ``# pfmlint: disable=...``
suppressions and the fingerprint baseline apply unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.project import (
    PARENT_SIDE_KWARGS,
    ProjectModel,
)
from repro.devtools.lint.rules import Rule, register


class ProjectRule(Rule):
    """A rule that needs the whole project, not one module.

    ``check`` (the per-module hook) is a no-op; the engine calls
    :meth:`check_project` once per run with the finalized model.
    Findings still carry per-file anchors, so suppressions and the
    baseline behave exactly as for per-file rules.
    """

    project = True

    def check(self, module) -> Iterable[Finding]:  # pragma: no cover - trivial
        return ()

    def check_project(self, model: ProjectModel) -> Iterable[Finding]:
        raise NotImplementedError

    @staticmethod
    def _finding(
        model: ProjectModel, rule: str, module: str, lineno: int, message: str
    ) -> Finding:
        """Anchor a finding at ``module``'s file, quoting the source line."""
        path = model.path_of(module)
        snippet = ""
        lines = model.modules[module].get("_lines")
        if lines and 1 <= lineno <= len(lines):
            snippet = lines[lineno - 1].strip()
        return Finding(
            path=path, line=lineno, col=1, rule=rule,
            message=message, snippet=snippet,
        )


def _module_in_scope(module: str, scopes: tuple[str, ...]) -> bool:
    """Dotted-prefix scope matching (``repro.core.mea`` matches itself)."""
    return any(
        module == scope or module.startswith(scope + ".") for scope in scopes
    )


# ----------------------------------------------------------------------
# PFM010 -- layering violations against the declared DAG
# ----------------------------------------------------------------------


@register
class LayeringRule(ProjectRule):
    """Module reaches a layer its own layer may not depend on.

    The layer DAG (``pfmlint-layers.json``, see docs/static-analysis.md)
    declares which layers may depend on which: telemetry must never
    import core/fleet/actions (observation must not perturb), prediction
    must never reach the controller, the fleet orchestrates layers that
    never import it back.  This rule walks the *top-level* import graph
    -- function-scoped lazy imports are the sanctioned cycle-breaking
    idiom and do not count -- and reports any module whose transitive
    imports land in a forbidden layer, with the offending import chain.
    One finding per (module, forbidden layer), anchored at the import
    statement that starts the shortest chain.
    """

    id = "PFM010"
    title = "layer DAG violation"
    version = 1

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        layers = model.layers
        if layers is None:
            return
        # Pre-group modules by layer for reachability targeting.
        layer_modules: dict[str, set[str]] = {}
        for module in sorted(model.modules):
            layer = layers.layer_of(module)
            if layer is not None:
                layer_modules.setdefault(layer, set()).add(module)

        for module in sorted(model.modules):
            layer = layers.layer_of(module)
            if layer is None:
                continue
            forbidden_layers = [
                name
                for name in layers.names
                if name != layer and not layers.may_depend(layer, name)
            ]
            for target_layer in forbidden_layers:
                targets = layer_modules.get(target_layer, set())
                if not targets:
                    continue
                chain = model.import_chain(module, targets)
                if chain is None or len(chain.modules) < 2:
                    continue
                yield self._finding(
                    model,
                    self.id,
                    module,
                    chain.lineno,
                    f"layer '{layer}' must not depend on layer "
                    f"'{target_layer}' but {module} reaches "
                    f"{chain.modules[-1]} via {chain.render()}; break the "
                    "chain or amend pfmlint-layers.json",
                )


# ----------------------------------------------------------------------
# PFM011 / PFM012 -- transitive taint over the call graph
# ----------------------------------------------------------------------


class _TaintRule(ProjectRule):
    """Shared machinery: flag scope functions whose call chains reach an
    impure source *through at least one call edge* (direct calls are the
    corresponding per-file rule's jurisdiction)."""

    SCOPES: tuple[str, ...] = ()
    SOURCE_FIELD = ""
    WHAT = ""
    FIX = ""

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        chains = model.taint_chains(self.SOURCE_FIELD)
        for fkey in model.function_keys():
            if fkey not in chains:
                continue
            module, qualname = fkey.split("::", 1)
            if not _module_in_scope(module, self.SCOPES):
                continue
            next_hop, lineno, source = chains[fkey]
            if next_hop is None:
                continue  # direct call: PFM001/PFM002 territory
            if _module_in_scope(next_hop.split("::", 1)[0], self.SCOPES) and (
                chains[next_hop][0] is not None
            ):
                # The callee is itself an in-scope transitive offender:
                # one finding at the deepest in-scope frame is enough.
                continue
            yield self._finding(
                model,
                self.id,
                module,
                lineno,
                f"{qualname} is on a {self.WHAT} path but transitively "
                f"calls '{source}' via {model.render_chain(fkey, chains)}; "
                f"{self.FIX}",
            )


@register
class SimTimeTaintRule(_TaintRule):
    """Sim-time code transitively reaches a wall-clock read.

    The inter-procedural generalization of PFM002: a simulator step, MEA
    cycle, or sim-time telemetry function that calls a helper (possibly
    in another module) which ends in ``time.time()`` /
    ``perf_counter()`` / ``datetime.now()`` is exactly as host-coupled
    as a direct call, and breaks byte-identical serial/parallel fleet
    runs just as surely.  Sources whose own line carries a PFM002/PFM011
    suppression (deliberate wall accounting, e.g. the wall half of a
    span) do not taint their callers.  Fires once per offending in-scope
    function, at the call that starts the impure chain.
    """

    id = "PFM011"
    title = "transitive wall-clock in sim-time path"
    version = 1

    SCOPES = ("repro.simulator", "repro.core.mea", "repro.telemetry")
    SOURCE_FIELD = "wall"
    WHAT = "sim-time"
    FIX = (
        "thread the engine clock through, or suppress the source line "
        "with a reason if this is deliberate wall accounting"
    )


@register
class RngTaintRule(_TaintRule):
    """Deterministic-scope code transitively reaches unseeded RNG.

    The inter-procedural generalization of PFM001: the simulator, the
    controller/MEA core, and the fleet must be bit-reproducible given a
    master seed, yet a helper chain ending in the legacy ``np.random``
    module API, stdlib ``random.<draw>``, or a bare ``default_rng()``
    (no seed) silently injects host entropy.  Sources whose line
    carries a PFM001/PFM012 suppression are considered sanctioned.
    Fires once per offending in-scope function, at the call that starts
    the chain.
    """

    id = "PFM012"
    title = "transitive unseeded RNG in deterministic path"
    version = 1

    SCOPES = ("repro.simulator", "repro.core", "repro.fleet")
    SOURCE_FIELD = "rng"
    WHAT = "deterministic"
    FIX = (
        "pass an explicit seeded Generator down the chain (derive it "
        "from the owning spec's master seed)"
    )


# ----------------------------------------------------------------------
# PFM013 -- unpicklable values flowing into process-pool seams
# ----------------------------------------------------------------------


@register
class UnpicklableFlowRule(ProjectRule):
    """Unpicklable value reaches a process-pool seam through assignments.

    The inter-procedural generalization of PFM006: a lambda bound to a
    local or module-level name, an alias of such a name, or the return
    value of a function that returns a lambda/nested function is just as
    unpicklable when it finally reaches ``run_fleet`` /
    ``Executor.submit`` / ``pool.map`` -- but the seam line itself looks
    innocent.  Tracks those flows through intermediate assignments
    (including across modules via imports and through calls to
    lambda-returning functions) and fires at the seam call.  ``progress=``
    callbacks run in the parent and are exempt, mirroring PFM006.
    """

    id = "PFM013"
    title = "unpicklable value flows into process seam"
    version = 1

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        for fkey in model.function_keys():
            module, qualname = fkey.split("::", 1)
            facts = model.function_facts(fkey)
            if not facts["sinks"]:
                continue
            summary = model.modules[module]
            tainted: dict[str, str] = {}
            for name in summary["module_unpicklable"]:
                tainted[name] = "a module-level lambda"
            for var, lineno in facts["unpicklable_locals"]:
                tainted[var] = f"a lambda/nested function (line {lineno})"
            for var, ctor, lineno in facts["ctor_locals"]:
                resolved = model.resolve_symbol(module, ctor)
                if resolved and resolved[0] == "function":
                    target = model.function_facts(resolved[1])
                    if target["returns_unpicklable"]:
                        tainted[var] = (
                            f"the return of {resolved[1].replace('::', '.')} "
                            f"which returns a lambda/nested function "
                            f"(assigned line {lineno})"
                        )
            # names imported from another module's unpicklable bindings
            for name, bound in sorted(summary["bindings"].items()):
                split = model._split_symbol(bound)
                if split is None:
                    continue
                target_module, attr = split
                if attr in model.modules[target_module]["module_unpicklable"]:
                    tainted[name] = (
                        f"a module-level lambda imported from {target_module}"
                    )
            if not tainted:
                continue
            for sink in facts["sinks"]:
                passed: list[tuple[str, str]] = []
                for arg in sink["args"]:
                    if arg is not None and arg in tainted:
                        passed.append((arg, tainted[arg]))
                for kwarg, value in sorted(sink["kwargs"].items()):
                    if kwarg in PARENT_SIDE_KWARGS:
                        continue
                    if value in tainted:
                        passed.append((value, tainted[value]))
                for arg, origin in passed:
                    yield self._finding(
                        model,
                        self.id,
                        module,
                        sink["lineno"],
                        f"'{arg}' passed to '{sink['fn']}' is {origin} and "
                        "cannot cross the process boundary; use a "
                        "module-level function or a picklable callable "
                        "object",
                    )


# ----------------------------------------------------------------------
# PFM014 -- internal use of deprecation-shimmed legacy call forms
# ----------------------------------------------------------------------


@register
class LegacyCallFormRule(ProjectRule):
    """Internal code still uses a deprecation-shimmed legacy call form.

    The unified predictor protocol (``fit(TrainingData)`` /
    ``score_batch``) keeps legacy call forms alive behind
    ``DeprecationWarning`` shims for external users; *internal* use of a
    shim hides the migration debt and -- under the test suite's
    ``error::DeprecationWarning:repro`` filter -- fails at runtime.
    Fires on (a) calls to functions that unconditionally issue a
    ``DeprecationWarning`` (e.g. ``replicate_closed_loop``) from any
    other module, (b) the legacy two-argument ``fit(x, y)`` /
    ``fit(failure, nonfailure)`` call form on a locally constructed
    predictor, and (c) subclasses of the predictor bases that override
    ``fit`` itself instead of the ``fit_samples`` / ``fit_sequences``
    hooks.
    """

    id = "PFM014"
    title = "deprecation-shimmed legacy call form"
    version = 1

    #: Unified-protocol base classes whose subclasses must not override
    #: ``fit`` nor be fed the legacy two-argument call form.
    PREDICTOR_BASES = (
        "repro.prediction.base.SymptomPredictor",
        "repro.prediction.base.EventPredictor",
    )

    def _predictor_base_keys(self, model: ProjectModel) -> set[str]:
        keys: set[str] = set()
        for dotted in self.PREDICTOR_BASES:
            split = model._split_symbol(dotted)
            if split is None:
                continue
            module, qualname = split
            if qualname in model.modules[module]["classes"]:
                keys.add(f"{module}::{qualname}")
        return keys

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        base_keys = self._predictor_base_keys(model)
        base_modules = {key.split("::", 1)[0] for key in base_keys}

        def is_predictor(ckey: str) -> bool:
            return bool(base_keys & (model.ancestors(ckey) | {ckey}))

        for fkey in model.function_keys():
            module, qualname = fkey.split("::", 1)
            facts = model.function_facts(fkey)

            # (a) calls to unconditionally-deprecated functions
            for site in model.calls_from(fkey):
                target_module = site.callee.split("::", 1)[0]
                if target_module == module:
                    continue  # shim infrastructure calling its own
                target = model.function_facts(site.callee)
                if target["warns_deprecation"]:
                    yield self._finding(
                        model,
                        self.id,
                        module,
                        site.lineno,
                        f"call to deprecation-shimmed "
                        f"'{site.callee.replace('::', '.')}' from internal "
                        "code; migrate to the replacement it warns about",
                    )

            # (b) legacy two-argument fit on a known predictor instance
            for fit in facts["fit_calls"]:
                recv = fit["recv"]
                ckey: str | None = None
                for var, ctor, _lineno in facts["ctor_locals"]:
                    if var == recv:
                        resolved = model.resolve_symbol(module, ctor)
                        if resolved and resolved[0] == "class":
                            ckey = resolved[1]
                        break
                else:
                    resolved = model.resolve_symbol(module, recv)
                    if resolved and resolved[0] == "class":
                        ckey = resolved[1]
                if ckey is not None and is_predictor(ckey):
                    yield self._finding(
                        model,
                        self.id,
                        module,
                        fit["lineno"],
                        f"legacy two-argument fit(...) on "
                        f"{ckey.replace('::', '.')}; pass one TrainingData "
                        "bundle (fit(TrainingData.from_samples(x, y)) / "
                        ".from_sequences(...)) or call fit_samples/"
                        "fit_sequences directly",
                    )

        # (c) predictor subclasses overriding fit() itself
        for module in sorted(model.modules):
            if module in base_modules:
                continue  # the protocol module defines the shims
            for cls, info in sorted(model.modules[module]["classes"].items()):
                ckey = f"{module}::{cls}"
                if "fit" not in info["methods"]:
                    continue
                if base_keys & model.ancestors(ckey):
                    yield self._finding(
                        model,
                        self.id,
                        module,
                        info["methods"]["fit"],
                        f"{cls} overrides fit() on a unified-protocol "
                        "predictor base; override fit_samples/fit_sequences "
                        "instead (the base fit() shims and warns)",
                    )
