"""pfmlint: determinism & dependability static analysis for the PFM stack.

An AST-based linter enforcing the repository's reproducibility
invariants -- the properties that make fleet runs byte-identical across
backends and BENCH documents reproducible.  Per-file rules:

========  ==========================================================
PFM001    unseeded / legacy RNG (global ``np.random`` API, hard-coded
          ``default_rng`` fallbacks in library code)
PFM002    wall-clock reads inside sim-time paths (simulator, MEA,
          telemetry sim spans)
PFM003    ``==`` / ``!=`` against float literals
PFM004    iteration over unordered sets feeding ordered output
PFM005    mutable default arguments
PFM006    unpicklable callables crossing process-pool boundaries
PFM007    frozen-spec field mutation outside ``dataclasses.replace``
PFM008    ``__all__`` drift versus the module's real public surface
PFM009    broad exception handlers swallowing fleet-fatal errors
========  ==========================================================

Project rules run over a whole-project import/call graph
(:mod:`~repro.devtools.lint.project`):

========  ==========================================================
PFM010    layering violations against the declared layer contract
          (``pfmlint-layers.json``)
PFM011    sim-time taint: sim-scoped functions transitively reaching
          wall-clock reads through helpers
PFM012    transitive unseeded-RNG reachability through helpers
PFM013    unpicklable values flowing into process-pool seams through
          intermediate assignments
PFM014    internal use of deprecation-shimmed legacy predictor forms
========  ==========================================================

Runs are incremental (content-addressed per-file cache) and can fan the
per-file phase out over worker processes (``--jobs``) with findings
byte-identical to a serial run.  Run it with ``python -m
repro.devtools.lint src`` (or ``repro.cli lint``); see
``docs/static-analysis.md`` for the rule catalogue, layer-contract
format, suppression syntax and baseline workflow.
"""

from repro.devtools.lint.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.devtools.lint.cache import (
    DEFAULT_CACHE_DIR,
    LintCache,
    engine_signature,
    source_digest,
)
from repro.devtools.lint.engine import (
    LintResult,
    git_changed_files,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from repro.devtools.lint.findings import Finding, ModuleContext
from repro.devtools.lint.layers import (
    DEFAULT_LAYERS_FILE,
    LayerConfig,
    LayerConfigError,
    load_layers,
)
from repro.devtools.lint.project import (
    ANALYZER_VERSION,
    ProjectModel,
    build_module_summary,
    build_project_model,
    module_name_for_path,
)
from repro.devtools.lint.project_rules import ProjectRule
from repro.devtools.lint.reporters import json_report, sarif_report, text_report
from repro.devtools.lint.rules import REGISTRY, Rule, all_rules, register

__all__ = [
    "ANALYZER_VERSION",
    "DEFAULT_BASELINE",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_LAYERS_FILE",
    "Finding",
    "LayerConfig",
    "LayerConfigError",
    "LintCache",
    "LintResult",
    "ModuleContext",
    "ProjectModel",
    "ProjectRule",
    "REGISTRY",
    "Rule",
    "all_rules",
    "build_module_summary",
    "build_project_model",
    "engine_signature",
    "git_changed_files",
    "json_report",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "load_layers",
    "module_name_for_path",
    "parse_suppressions",
    "register",
    "sarif_report",
    "source_digest",
    "split_baselined",
    "text_report",
    "write_baseline",
]
