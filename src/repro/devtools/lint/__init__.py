"""pfmlint: determinism & dependability static analysis for the PFM stack.

An AST-based linter enforcing the repository's reproducibility
invariants -- the properties that make fleet runs byte-identical across
backends and BENCH documents reproducible:

========  ==========================================================
PFM001    unseeded / legacy RNG (global ``np.random`` API, hard-coded
          ``default_rng`` fallbacks in library code)
PFM002    wall-clock reads inside sim-time paths (simulator, MEA,
          telemetry sim spans)
PFM003    ``==`` / ``!=`` against float literals
PFM004    iteration over unordered sets feeding ordered output
PFM005    mutable default arguments
PFM006    unpicklable callables crossing process-pool boundaries
PFM007    frozen-spec field mutation outside ``dataclasses.replace``
PFM008    ``__all__`` drift versus the module's real public surface
========  ==========================================================

Run it with ``python -m repro.devtools.lint src`` (or ``repro.cli
lint``); see ``docs/static-analysis.md`` for the rule catalogue,
suppression syntax and baseline workflow.
"""

from repro.devtools.lint.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.devtools.lint.engine import (
    LintResult,
    lint_paths,
    lint_source,
    parse_suppressions,
)
from repro.devtools.lint.findings import Finding, ModuleContext
from repro.devtools.lint.rules import REGISTRY, Rule, all_rules, register

__all__ = [
    "DEFAULT_BASELINE",
    "Finding",
    "LintResult",
    "ModuleContext",
    "REGISTRY",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_suppressions",
    "register",
    "split_baselined",
    "write_baseline",
]
