"""The committed findings baseline.

A baseline is a JSON document pinning pre-existing findings by
fingerprint so a newly introduced rule can gate CI immediately without
blocking on legacy code.  The workflow:

1. ``python -m repro.devtools.lint src --write-baseline`` records every
   current finding (each entry keeps its message and snippet so the
   file reviews like a TODO list).
2. CI runs ``python -m repro.devtools.lint src``; findings whose
   fingerprint appears in the baseline are reported as *baselined* and
   do not fail the run.  New findings do.
3. Fixing a baselined finding and re-writing the baseline shrinks the
   file -- the diff shows the debt being paid down.

Fingerprints ignore line numbers (see
:meth:`repro.devtools.lint.findings.Finding.fingerprint`), so unrelated
edits never invalidate the baseline.  Duplicate fingerprints are counted:
a baseline entry absorbs exactly as many findings as were recorded.

Since version 2 each entry also records the ``rule_version`` it was
written against, and the rule version is folded into the fingerprint
itself -- so bumping a rule's version (tightening it) orphans its old
baseline entries instead of letting them silently absorb the stricter
rule's findings.  Version-1 baselines are rejected outright: their
fingerprints predate rule versioning and cannot be trusted to match.
"""

from __future__ import annotations

import json
import os
from collections import Counter

from repro.devtools.lint.findings import Finding

#: Default baseline filename, looked up in the working directory.
DEFAULT_BASELINE = "pfmlint-baseline.json"

BASELINE_VERSION = 2


def load_baseline(path: str) -> Counter:
    """Fingerprint multiset from a baseline file (empty if absent)."""
    if not os.path.exists(path):
        return Counter()
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {doc.get('version')!r} in {path}"
        )
    return Counter(entry["fingerprint"] for entry in doc.get("findings", []))


def write_baseline(path: str, findings: list[Finding]) -> int:
    """Write the baseline document for ``findings``; returns entry count."""
    entries = [
        {
            "rule": f.rule,
            "rule_version": f.rule_version,
            "path": f.path,
            "snippet": f.snippet,
            "message": f.message,
            "fingerprint": f.fingerprint(),
        }
        for f in sorted(findings)
    ]
    doc = {
        "version": BASELINE_VERSION,
        "tool": "pfmlint",
        "findings": entries,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(entries)


def split_baselined(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into ``(new, baselined)`` against the baseline.

    Each baseline fingerprint absorbs at most its recorded count, so a
    *second* copy of a baselined defect still fails the gate.
    """
    budget = Counter(baseline)
    new: list[Finding] = []
    baselined: list[Finding] = []
    for finding in findings:
        fingerprint = finding.fingerprint()
        if budget[fingerprint] > 0:
            budget[fingerprint] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    return new, baselined
