"""pfmlint command line: ``python -m repro.devtools.lint [paths ...]``.

Exit codes are stable API: 0 clean (or everything baselined), 1 new
findings, 2 usage error (argparse) or configuration error (bad layer
file, unknown rule id).  ``repro.cli lint`` is a thin alias of this
entry point.
"""

from __future__ import annotations

import argparse
import sys

from repro.devtools.lint.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.devtools.lint.cache import DEFAULT_CACHE_DIR
from repro.devtools.lint.engine import lint_paths
from repro.devtools.lint.layers import LayerConfigError
from repro.devtools.lint.reporters import (
    json_report,
    list_rules_text,
    sarif_report,
    text_report,
)
from repro.devtools.lint.rules import REGISTRY, all_rules

#: Exit codes (stable API, asserted by tests).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pfmlint",
        description=(
            "Determinism & dependability static analysis for the PFM stack"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE}; missing = empty)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="stdout report format (default: text)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="shorthand for --format json (kept for compatibility)",
    )
    parser.add_argument(
        "--output", default=None, help="also write the JSON report to this file"
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="also write a SARIF 2.1.0 report to this file",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="analyze files in N worker processes (default: 1, serial; "
        "findings are byte-identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"analysis cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed analysis cache",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip the inter-procedural project phase (PFM010+)",
    )
    parser.add_argument(
        "--layers",
        default=None,
        metavar="FILE",
        help="layer contract file for PFM010 (default: pfmlint-layers.json "
        "in the working directory, else the built-in contract)",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report findings only for git-changed files (full analysis "
        "still runs so project rules see the whole graph)",
    )
    parser.add_argument(
        "--changed-base",
        default=None,
        metavar="REF",
        help="with --changed-only, also diff against this ref "
        "(merge-base semantics, e.g. origin/main)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def _selected_rules(select: str | None, parser: argparse.ArgumentParser):
    if select is None:
        return all_rules()
    wanted = [part.strip().upper() for part in select.split(",") if part.strip()]
    unknown = [rule_id for rule_id in wanted if rule_id not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown rule id(s) {unknown}; known: {sorted(REGISTRY)}"
        )
    return [REGISTRY[rule_id]() for rule_id in wanted]


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules_text())
        return EXIT_CLEAN

    rules = _selected_rules(args.select, parser)
    try:
        result = lint_paths(
            list(args.paths),
            rules,
            jobs=max(args.jobs, 1),
            cache_dir=None if args.no_cache else args.cache_dir,
            project=not args.no_project,
            layers=args.layers,
            changed_only=args.changed_only,
            changed_base=args.changed_base,
        )
    except LayerConfigError as exc:
        print(f"pfmlint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        count = write_baseline(args.baseline, result.findings)
        print(f"pfmlint: wrote {count} finding(s) to {args.baseline}")
        return EXIT_CLEAN

    try:
        baseline = load_baseline(args.baseline) if not args.no_baseline else None
    except ValueError as exc:
        print(f"pfmlint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    new, baselined = split_baselined(result.findings, baseline or {})

    report = json_report(new, baselined, result.files_checked, result.suppressed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(sarif_report(new, baselined) + "\n")

    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(report)
    elif fmt == "sarif":
        print(sarif_report(new, baselined))
    else:
        print(
            text_report(new, baselined, result.files_checked, result.suppressed)
        )
        if result.changed_files is not None:
            print(
                f"pfmlint: --changed-only limited the report to "
                f"{result.changed_files} changed file(s)"
            )
    return EXIT_FINDINGS if new else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
