"""pfmlint command line: ``python -m repro.devtools.lint [paths ...]``.

Exit codes: 0 clean (or everything baselined), 1 new findings, 2 usage
error.  ``repro.cli lint`` is a thin alias of this entry point.
"""

from __future__ import annotations

import argparse
import sys

from repro.devtools.lint.baseline import (
    DEFAULT_BASELINE,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.devtools.lint.engine import lint_paths
from repro.devtools.lint.reporters import json_report, list_rules_text, text_report
from repro.devtools.lint.rules import REGISTRY, all_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pfmlint",
        description=(
            "Determinism & dependability static analysis for the PFM stack"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE}; missing = empty)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the JSON report to stdout"
    )
    parser.add_argument(
        "--output", default=None, help="also write the JSON report to this file"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def _selected_rules(select: str | None, parser: argparse.ArgumentParser):
    if select is None:
        return all_rules()
    wanted = [part.strip().upper() for part in select.split(",") if part.strip()]
    unknown = [rule_id for rule_id in wanted if rule_id not in REGISTRY]
    if unknown:
        parser.error(
            f"unknown rule id(s) {unknown}; known: {sorted(REGISTRY)}"
        )
    return [REGISTRY[rule_id]() for rule_id in wanted]


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules_text())
        return 0

    rules = _selected_rules(args.select, parser)
    result = lint_paths(list(args.paths), rules)

    if args.write_baseline:
        count = write_baseline(args.baseline, result.findings)
        print(f"pfmlint: wrote {count} finding(s) to {args.baseline}")
        return 0

    baseline = load_baseline(args.baseline) if not args.no_baseline else None
    new, baselined = split_baselined(result.findings, baseline or {})

    report = json_report(new, baselined, result.files_checked, result.suppressed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
    if args.json:
        print(report)
    else:
        print(
            text_report(new, baselined, result.files_checked, result.suppressed)
        )
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
