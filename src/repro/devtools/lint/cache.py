"""Content-addressed per-file analysis cache (the warm-lint fast path).

Same shape as :mod:`repro.fleet.artifacts`: entries are addressed by
content digest, written atomically (temp file + ``os.replace``), and a
corrupt or torn entry is treated as a miss -- the worst case is
re-analyzing one file, never a wrong report.

An entry's key is ``sha256(path, source)`` x the **engine signature**
-- a digest of the analyzer version and the selected rules with their
per-rule versions.  Editing a file, bumping any selected rule's
``version``, changing the selection, or upgrading the summary extractor
each produce a different key, so a stale entry can never satisfy a
fresh lookup; there is no invalidation logic to get wrong.  The display
path is folded into the content digest because entries embed it
(finding locations, the summary's module name).

Stored per entry: the file's per-file findings, inline-suppression
count, the suppression line map, and the module summary the project
phase consumes.  Project-phase findings are *not* cached -- they depend
on every file at once and recomputing them from warm summaries is the
cheap part of a run.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

from repro.devtools.lint.findings import Finding

#: Default cache directory, resolved against the working directory.
DEFAULT_CACHE_DIR = ".pfmlint-cache"

#: Bumped when the entry layout itself changes.
CACHE_VERSION = 1


def source_digest(source: str) -> str:
    """sha256 of the module source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def file_digest(display_path: str, source: str) -> str:
    """sha256 over (path, source) -- the per-file cache key.

    The path participates because cached findings and module summaries
    embed it: two files with byte-identical contents (an empty
    ``__init__.py``, a copy-pasted stub) must not share an entry, or
    one file's cached findings would be reported against the other.
    """
    payload = f"{display_path}\x00{source}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def engine_signature(analyzer_version: int, rules) -> str:
    """Digest of everything besides the source that shapes an entry.

    ``rules`` is the selected rule list; each contributes its id and
    ``version``, so tightening one rule invalidates exactly every entry
    (the per-file phase always re-runs, findings re-fingerprint).
    """
    payload = json.dumps(
        {
            "cache": CACHE_VERSION,
            "analyzer": analyzer_version,
            "rules": sorted((rule.id, rule.version) for rule in rules),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class LintCache:
    """One directory of ``<source_sha>-<engine_sig>.json`` entries."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.hits = 0
        self.misses = 0

    def entry_path(self, src_sha: str, signature: str) -> str:
        return os.path.join(self.root, f"{src_sha[:40]}-{signature}.json")

    def load(self, src_sha: str, signature: str) -> dict | None:
        """The cached analysis for this (source, engine) pair, or None."""
        path = self.entry_path(src_sha, signature)
        try:
            with open(path, encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            return None
        if entry.get("cache_version") != CACHE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def save(self, src_sha: str, signature: str, entry: dict) -> None:
        """Atomically publish one entry; failures are non-fatal."""
        os.makedirs(self.root, exist_ok=True)
        entry = dict(entry)
        entry["cache_version"] = CACHE_VERSION
        path = self.entry_path(src_sha, signature)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(tmp_path, path)
        except OSError:
            # Best-effort cache: an unwritable entry only costs warmth.
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)


def findings_to_entry(findings: list[Finding]) -> list[dict]:
    """Serialize per-file findings for an entry."""
    return [f.to_json_dict() for f in findings]


def findings_from_entry(rows: list[dict]) -> list[Finding]:
    """Rebuild :class:`Finding` objects from a cached entry."""
    return [
        Finding(
            path=row["path"],
            line=row["line"],
            col=row["col"],
            rule=row["rule"],
            message=row["message"],
            snippet=row.get("snippet", ""),
            rule_version=row.get("rule_version", 1),
        )
        for row in rows
    ]
