"""The pfmlint engine: discover, analyze (cached, parallel), assemble.

Inline suppression syntax (same line as the finding)::

    value = raw != 0.0  # pfmlint: disable=PFM003 -- exact-zero sentinel

Multiple rules separate with commas; ``disable=all`` silences every rule
on that line.  Text after the rule list (conventionally introduced with
``--``) is the human-readable justification and is ignored by the
parser, but reviewers should treat a suppression without one as a bug.

Since the inter-procedural rewrite the engine runs in two phases:

1. **Per-file phase** -- parse each module, run the per-file rules, and
   extract the :mod:`~repro.devtools.lint.project` summary.  Results are
   stored in a content-addressed cache keyed by ``sha256(path, source)``
   and the engine signature (analyzer version + selected rule versions), so
   a warm run re-analyzes only edited files.  With ``jobs > 1`` cache
   misses fan out over the fleet's executor seam
   (:func:`repro.fleet.executors.create_executor`); results are
   reassembled in sorted path order, so parallel findings are
   byte-identical to serial ones.
2. **Project phase** -- assemble every summary into a
   :class:`~repro.devtools.lint.project.ProjectModel`, attach the layer
   contract, and run the project rules (PFM010--PFM014).  This phase is
   cheap and always runs fresh; it is what a warm ``--changed-only`` run
   spends its time on.

``--changed-only`` restricts *reported* findings to files git considers
changed (working tree + optionally ``--changed-base REF``); the project
graph still covers every file, via warm cache entries, so an edit that
breaks an invariant *elsewhere* is attributed to the edited file's
chain when the chain starts there.
"""

from __future__ import annotations

import ast
import os
import re
import subprocess
from dataclasses import dataclass, field, replace

from repro.devtools.lint import project_rules  # noqa: F401 -- registers PFM010-014
from repro.devtools.lint.cache import (
    DEFAULT_CACHE_DIR,
    LintCache,
    engine_signature,
    file_digest,
    findings_from_entry,
    findings_to_entry,
)
from repro.devtools.lint.findings import Finding, ModuleContext
from repro.devtools.lint.layers import LayerConfig, load_layers
from repro.devtools.lint.project import (
    ANALYZER_VERSION,
    build_module_summary,
    build_project_model,
    module_name_for_path,
)
from repro.devtools.lint.rules import REGISTRY, Rule, all_rules

#: Rule id reserved for files the engine cannot parse at all.
PARSE_ERROR_RULE = "PFM000"

_SUPPRESS_RE = re.compile(
    r"#\s*pfmlint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".venv", "node_modules", ".eggs", ".pfmlint-cache"}
)


@dataclass
class LintResult:
    """Outcome of one lint run, before baseline filtering."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Files git reported as changed when ``--changed-only`` applied;
    #: None for a full run (including the git-unavailable fallback).
    changed_files: int | None = None


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line number -> rule ids suppressed on that line."""
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            suppressions[lineno] = {r.upper() for r in rules if r}
    return suppressions


def file_rules(rules: list[Rule]) -> list[Rule]:
    """The per-file subset of a rule selection."""
    return [rule for rule in rules if not rule.project]


def project_rule_list(rules: list[Rule]) -> list[Rule]:
    """The project-phase subset of a rule selection."""
    return [rule for rule in rules if rule.project]


def _apply_suppressions(
    findings: list[Finding], suppressions: dict[int, set[str]]
) -> tuple[list[Finding], int]:
    """Drop findings whose line carries a matching inline suppression."""
    kept: list[Finding] = []
    n_suppressed = 0
    for finding in findings:
        on_line = suppressions.get(finding.line, set())
        if finding.rule in on_line or "ALL" in on_line:
            n_suppressed += 1
        else:
            kept.append(finding)
    return kept, n_suppressed


def lint_source(
    source: str,
    path: str,
    rules: list[Rule] | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source text (per-file rules only).

    Returns ``(findings, n_suppressed)``; ``path`` is used for scoped
    rules (e.g. PFM002) and reporting, the file itself is never read.
    Project rules need the whole project and are skipped here -- use
    :func:`lint_paths` for PFM010+.
    """
    rules = all_rules() if rules is None else rules
    entry = analyze_source(source, path, module=None, rules=rules)
    return findings_from_entry(entry["findings"]), entry["suppressed"]


def analyze_source(
    source: str,
    path: str,
    module: str | None,
    rules: list[Rule],
) -> dict:
    """Phase-1 analysis of one module: per-file findings + summary.

    Returns the JSON-serializable cache entry shape::

        {"findings": [...], "suppressed": n,
         "suppressions": {"<line>": [rule ids]}, "summary": {...} | None}
    """
    suppressions = parse_suppressions(source)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {exc.msg}",
            snippet=(exc.text or "").strip(),
        )
        return {
            "findings": findings_to_entry([finding]),
            "suppressed": 0,
            "suppressions": {},
            "summary": None,
        }

    module_ctx = ModuleContext(path=path, source=source, tree=tree)
    findings: list[Finding] = []
    for rule in file_rules(rules):
        for finding in rule.check(module_ctx):
            findings.append(replace(finding, rule_version=rule.version))
    findings, n_suppressed = _apply_suppressions(findings, suppressions)
    findings.sort()
    summary = build_module_summary(tree, module, path, suppressions)
    return {
        "findings": findings_to_entry(findings),
        "suppressed": n_suppressed,
        "suppressions": {
            str(line): sorted(ids) for line, ids in sorted(suppressions.items())
        },
        "summary": summary,
    }


def _analyze_file_task(
    file_path: str, display_path: str, module: str | None, rule_ids: list[str]
) -> tuple[str, dict]:
    """Picklable worker: analyze one file by path (runs in pool workers)."""
    rules = [REGISTRY[rule_id]() for rule_id in rule_ids]
    with open(file_path, encoding="utf-8") as handle:
        source = handle.read()
    return display_path, analyze_source(source, display_path, module, rules)


def iter_python_files(paths: list[str]) -> list[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    return sorted(set(files))


def _display_path(file_path: str) -> str:
    """Posix-style path, relative to CWD when possible (stable baselines)."""
    path = file_path
    try:
        rel = os.path.relpath(file_path)
        if not rel.startswith(".."):
            path = rel
    except ValueError:  # different drive on Windows
        pass
    return path.replace(os.sep, "/")


# ----------------------------------------------------------------------
# Git integration for --changed-only
# ----------------------------------------------------------------------


def git_changed_files(base: str | None = None) -> set[str] | None:
    """Display paths of changed ``.py`` files, or None if git is unusable.

    Always includes working-tree and index changes (``git status
    --porcelain``); with ``base``, additionally everything that differs
    from ``base...HEAD`` (merge-base semantics, falling back to a plain
    two-dot diff for shallow clones) -- the PR-mode contract.
    """
    def run(args: list[str]) -> list[str] | None:
        try:
            proc = subprocess.run(
                ["git", *args], capture_output=True, text=True, check=False
            )
        except OSError:
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout.splitlines()

    top = run(["rev-parse", "--show-toplevel"])
    if not top:
        return None
    root = top[0].strip()

    rel_paths: set[str] = set()
    status = run(["status", "--porcelain"])
    if status is None:
        return None
    for line in status:
        if len(line) < 4:
            continue
        entry = line[3:]
        if " -> " in entry:
            entry = entry.split(" -> ", 1)[1]
        rel_paths.add(entry.strip().strip('"'))
    if base:
        diff = run(["diff", "--name-only", f"{base}...HEAD"])
        if diff is None:
            diff = run(["diff", "--name-only", base])
        if diff is None:
            return None
        rel_paths.update(line.strip() for line in diff if line.strip())

    changed: set[str] = set()
    for rel in rel_paths:
        if rel.endswith(".py"):
            changed.add(_display_path(os.path.join(root, rel)))
    return changed


# ----------------------------------------------------------------------
# The orchestrated run
# ----------------------------------------------------------------------


def lint_paths(
    paths: list[str],
    rules: list[Rule] | None = None,
    *,
    jobs: int = 1,
    cache_dir: str | None = DEFAULT_CACHE_DIR,
    project: bool = True,
    layers: LayerConfig | str | None = None,
    changed_only: bool = False,
    changed_base: str | None = None,
) -> LintResult:
    """Lint every Python file under ``paths`` (both phases).

    ``cache_dir=None`` disables the analysis cache; ``jobs > 1`` runs
    the per-file phase in a process pool (findings byte-identical to
    serial); ``project=False`` skips the inter-procedural phase;
    ``layers`` is a :class:`LayerConfig`, a path to one, or None for
    the conventional lookup; ``changed_only`` filters reported findings
    to git-changed files (vs ``changed_base`` when given).
    """
    rules = all_rules() if rules is None else rules
    result = LintResult()

    files = iter_python_files(paths)
    signature = engine_signature(ANALYZER_VERSION, rules)
    cache = LintCache(cache_dir) if cache_dir else None

    # Per-file metadata, all keyed/ordered by display path.
    meta: dict[str, tuple[str, str, str | None]] = {}
    for file_path in files:
        display = _display_path(file_path)
        with open(file_path, encoding="utf-8") as handle:
            source = handle.read()
        meta[display] = (file_path, source, module_name_for_path(file_path))

    entries: dict[str, dict] = {}
    misses: list[str] = []
    for display in sorted(meta):
        _file_path, source, _module = meta[display]
        if cache is not None:
            entry = cache.load(file_digest(display, source), signature)
            if entry is not None:
                entries[display] = entry
                continue
        misses.append(display)

    rule_ids = [rule.id for rule in rules]
    if misses and jobs > 1:
        # Lazy import: the executor seam lives two layers up and is only
        # needed for parallel runs (keeps `repro lint` start-up light).
        from repro.fleet.executors import create_executor

        executor = create_executor("process", jobs)
        try:
            futures = [
                executor.submit(
                    _analyze_file_task,
                    meta[display][0],
                    display,
                    meta[display][2],
                    rule_ids,
                )
                for display in misses
            ]
            for future in executor.as_completed():
                display, entry = future.result()
                entries[display] = entry
        finally:
            executor.shutdown()
    else:
        for display in misses:
            file_path, source, module = meta[display]
            entries[display] = analyze_source(source, display, module, rules)

    if cache is not None:
        result.cache_misses = len(misses)
        result.cache_hits = len(files) - len(misses)
        for display in misses:
            cache.save(
                file_digest(display, meta[display][1]), signature, entries[display]
            )

    # Assemble per-file results in sorted path order: byte-identical
    # regardless of cache state or worker completion order.
    findings: list[Finding] = []
    for display in sorted(entries):
        entry = entries[display]
        findings.extend(findings_from_entry(entry["findings"]))
        result.suppressed += entry["suppressed"]
        result.files_checked += 1

    # Project phase: assemble the model, run PFM010+.
    proj_rules = project_rule_list(rules)
    if project and proj_rules:
        summaries = []
        for display in sorted(entries):
            summary = entries[display]["summary"]
            if summary is not None and summary.get("module"):
                summary["_lines"] = meta[display][1].splitlines()
                summaries.append(summary)
        model = build_project_model(summaries)
        if isinstance(layers, LayerConfig):
            model.layers = layers
        else:
            model.layers = load_layers(layers)
        suppression_maps = {
            display: {
                int(line): set(ids)
                for line, ids in entries[display]["suppressions"].items()
            }
            for display in entries
        }
        for rule in proj_rules:
            rule_findings = [
                replace(f, rule_version=rule.version)
                for f in rule.check_project(model)
            ]
            for finding in sorted(rule_findings):
                on_line = suppression_maps.get(finding.path, {}).get(
                    finding.line, set()
                )
                if finding.rule in on_line or "ALL" in on_line:
                    result.suppressed += 1
                else:
                    findings.append(finding)

    if changed_only:
        changed = git_changed_files(changed_base)
        if changed is not None:
            findings = [f for f in findings if f.path in changed]
            result.changed_files = len(changed & set(entries))

    findings.sort()
    result.findings = findings
    return result
