"""The pfmlint engine: discover files, run rules, honour suppressions.

Inline suppression syntax (same line as the finding)::

    value = raw != 0.0  # pfmlint: disable=PFM003 -- exact-zero sentinel

Multiple rules separate with commas; ``disable=all`` silences every rule
on that line.  Text after the rule list (conventionally introduced with
``--``) is the human-readable justification and is ignored by the
parser, but reviewers should treat a suppression without one as a bug.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field

from repro.devtools.lint.findings import Finding, ModuleContext
from repro.devtools.lint.rules import Rule, all_rules

#: Rule id reserved for files the engine cannot parse at all.
PARSE_ERROR_RULE = "PFM000"

_SUPPRESS_RE = re.compile(
    r"#\s*pfmlint:\s*disable=([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules", ".eggs"})


@dataclass
class LintResult:
    """Outcome of one lint run, before baseline filtering."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map 1-based line number -> rule ids suppressed on that line."""
    suppressions: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            suppressions[lineno] = {r.upper() for r in rules if r}
    return suppressions


def lint_source(
    source: str,
    path: str,
    rules: list[Rule] | None = None,
) -> tuple[list[Finding], int]:
    """Lint one module's source text.

    Returns ``(findings, n_suppressed)``; ``path`` is used for scoped
    rules (e.g. PFM002) and reporting, the file itself is never read.
    """
    rules = all_rules() if rules is None else rules
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 0) + 1 if exc.offset is not None else 1,
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {exc.msg}",
            snippet=(exc.text or "").strip(),
        )
        return [finding], 0

    module = ModuleContext(path=path, source=source, tree=tree)
    suppressions = parse_suppressions(source)
    findings: list[Finding] = []
    n_suppressed = 0
    for rule in rules:
        for finding in rule.check(module):
            suppressed_here = suppressions.get(finding.line, set())
            if finding.rule in suppressed_here or "ALL" in suppressed_here:
                n_suppressed += 1
            else:
                findings.append(finding)
    findings.sort()
    return findings, n_suppressed


def iter_python_files(paths: list[str]) -> list[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    return sorted(set(files))


def _display_path(file_path: str) -> str:
    """Posix-style path, relative to CWD when possible (stable baselines)."""
    path = file_path
    try:
        rel = os.path.relpath(file_path)
        if not rel.startswith(".."):
            path = rel
    except ValueError:  # different drive on Windows
        pass
    return path.replace(os.sep, "/")


def lint_paths(
    paths: list[str],
    rules: list[Rule] | None = None,
) -> LintResult:
    """Lint every Python file under ``paths``."""
    rules = all_rules() if rules is None else rules
    result = LintResult()
    for file_path in iter_python_files(paths):
        with open(file_path, encoding="utf-8") as handle:
            source = handle.read()
        findings, suppressed = lint_source(
            source, _display_path(file_path), rules
        )
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.files_checked += 1
    result.findings.sort()
    return result
