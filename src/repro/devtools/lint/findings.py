"""Finding records and the per-module analysis context.

A :class:`Finding` is one violation at one source location.  Its
:meth:`~Finding.fingerprint` deliberately excludes the line number, so a
baselined finding keeps matching after unrelated edits move it around --
only the rule (at its current version), the file, and the offending
source text identify it.  The rule *version* is part of the identity on
purpose: tightening a rule bumps its ``version``, which changes every
fingerprint it emits and therefore invalidates its baseline entries --
a stale baseline can never absorb a finding produced by a stricter
check than the one that recorded it.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    snippet: str = ""
    rule_version: int = 1

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline.

        Two findings share a fingerprint iff they are the same rule *at
        the same rule version*, in the same file, on identical
        (whitespace-normalized) source text.  Duplicates are legal; the
        baseline counts them.
        """
        normalized = " ".join(self.snippet.split())
        payload = f"{self.rule}:v{self.rule_version}|{self.path}|{normalized}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        """``path:line:col`` -- the clickable prefix of a report line."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_json_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "rule_version": self.rule_version,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


@dataclass
class ModuleContext:
    """Everything a rule needs to analyse one module."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def snippet(self, node: ast.AST) -> str:
        """The stripped source line a node starts on (best effort)."""
        lineno = getattr(node, "lineno", 0)
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a Finding anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
            snippet=self.snippet(node),
        )
