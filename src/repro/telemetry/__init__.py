"""Sim-time telemetry: the PFM stack observing itself.

The paper's thesis is that runtime monitoring enables proactive fault
management; this package turns that monitoring on the PFM stack itself.
One :class:`TelemetryHub` per run carries

- an **event bus** keyed by simulated time (warning episodes, breaker
  transitions, sanitizer substitutions, step failures, ...),
- a **metrics registry** (counters, gauges, reservoir histograms),
- **spans** with dual wall-clock / simulated-time accounting, and
- an online :class:`RollingQualityTracker` streaming the Sect. 3.3
  precision / recall / FPR metrics as live gauges.

Everything defaults to the disabled :data:`NULL_HUB`, whose operations
are shared-singleton no-ops -- instrumented hot paths cost nothing when
telemetry is off.  Exporters produce a JSONL event trace, a Prometheus
text snapshot, and a human-readable run summary.
"""

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.exporters import (
    export_jsonl,
    prometheus_text,
    read_jsonl,
    run_summary,
    scrub_wall_fields,
    span_profile,
)
from repro.telemetry.hub import NULL_HUB, TelemetryHub
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.rolling import RollingQualityTracker
from repro.telemetry.sinks import JSONLSink, MemorySink, NullSink
from repro.telemetry.spans import NULL_SPAN, Span
from repro.telemetry.tracing import (
    SupervisorRecorder,
    TraceContext,
    announce_shard_hub,
    derive_span_id,
    derive_trace_id,
    export_chrome_trace,
    merge_fleet_trace,
    read_merged_trace,
    read_trace_file,
    write_shard_trace,
)

__all__ = [
    "TelemetryEvent",
    "TelemetryHub",
    "NULL_HUB",
    "NULL_SPAN",
    "Span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RollingQualityTracker",
    "NullSink",
    "MemorySink",
    "JSONLSink",
    "export_jsonl",
    "read_jsonl",
    "prometheus_text",
    "run_summary",
    "scrub_wall_fields",
    "span_profile",
    "TraceContext",
    "SupervisorRecorder",
    "derive_trace_id",
    "derive_span_id",
    "announce_shard_hub",
    "write_shard_trace",
    "merge_fleet_trace",
    "read_trace_file",
    "read_merged_trace",
    "export_chrome_trace",
]
