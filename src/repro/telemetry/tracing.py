"""Fleet-wide distributed tracing: context propagation, sidecars, merge.

PR 3 made one *process* translucent (:class:`~repro.telemetry.hub.
TelemetryHub`); this module makes the *fleet* translucent.  A fleet run
owns one **trace directory** and one **trace id**, and every party writes
its own lane into that directory:

- each worker serializes the full span/event stream of every shard it
  executes to a per-shard JSONL **sidecar** (``shards/<key>.jsonl``,
  written atomically: temp file + ``os.replace``, the same discipline as
  the artifact store — a worker hard-killed mid-write leaves only a temp
  file behind, and the retried attempt publishes a complete sidecar);
- the supervisor loop records its recovery work (worker restarts,
  retries, quarantines, chaos arming) as first-class events in a
  ``supervisor.jsonl`` lane, clocked by a deterministic logical step
  counter (the supervisor has no simulated clock);
- the chaos harness drops one tiny record per injected fault into
  ``chaos/`` *before* the fault fires, so even a worker that dies by
  ``os._exit`` leaves its injection visible on the timeline.

:func:`merge_fleet_trace` folds every lane into one deterministic
``fleet_trace.jsonl`` ordered by ``(sim_time, lane key, seq)``, and
:func:`export_chrome_trace` renders the merged timeline as a
Chrome/Perfetto trace-event JSON with one "process" lane per shard plus
one for the supervisor.

**Context propagation** is by value, not by ambient magic: the runner
derives the fleet ``trace_id`` from the sorted spec keys (no wall clock,
no randomness), each shard's parent span id is hash-derived from
``(trace_id, spec key)`` by :func:`derive_span_id` — computed
identically parent-side (supervisor commit events) and worker-side
(sidecar headers), so the two lanes link up without shipping ids across
the pool — and the whole :class:`TraceContext` rides the worker
initializer exactly like the chaos config does.

The non-negotiable, extended from PR 3's observation-must-not-perturb
invariant: tracing enabled vs disabled leaves fleet aggregates
byte-identical (``benchmarks/test_bench_fleet_trace.py`` proves it).
Tracing reads results, never feeds anything back.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.telemetry.hub import TelemetryHub

#: Schema tag inside every sidecar header so future layouts can be
#: detected, not guessed (mirrors the ledger's LEDGER_VERSION).
TRACE_VERSION = 1

#: Layout inside a trace directory.
SHARDS_DIR = "shards"
CHAOS_DIR = "chaos"
SUPERVISOR_FILE = "supervisor.jsonl"
MERGED_FILE = "fleet_trace.jsonl"
CHROME_FILE = "fleet_trace.chrome.json"

#: The supervisor's lane name in merged timelines and Perfetto exports.
SUPERVISOR_LANE = "supervisor"

#: Supervisor event names (the recovery-timeline vocabulary).
FLEET_RUN_START = "fleet.run_start"
FLEET_RUN_END = "fleet.run_end"
FLEET_SHARD_COMMITTED = "fleet.shard_committed"
FLEET_SHARD_FAILED = "fleet.shard_failed"
FLEET_RETRY = "fleet.retry"
FLEET_WORKER_RESTART = "fleet.worker_restart"
FLEET_QUARANTINE = "fleet.quarantine"
FLEET_CHAOS_ARMED = "fleet.chaos_armed"

#: Chaos-injection event prefix (``chaos.crash`` / ``chaos.slow`` / ...).
CHAOS_EVENT_PREFIX = "chaos."

_UNSAFE_NAME = re.compile(r"[^A-Za-z0-9._-]")


def safe_lane_name(spec_key: str) -> str:
    """A filesystem-safe sidecar file stem for one spec key.

    Spec keys end in a content digest, so character substitution cannot
    collide two distinct keys.
    """
    return _UNSAFE_NAME.sub("_", spec_key)


def derive_trace_id(spec_keys) -> str:
    """The fleet trace id: a pure function of the sorted grid keys.

    No wall clock and no randomness — re-running the same grid yields
    the same trace id, which is what lets golden tests compare whole
    trace directories byte for byte.
    """
    digest = hashlib.sha256("\n".join(sorted(spec_keys)).encode("utf-8"))
    return f"fleet-{digest.hexdigest()[:16]}"


def derive_span_id(trace_id: str, spec_key: str) -> int:
    """The parent span id of one shard, derived from content.

    Both sides of the process boundary compute this independently — the
    supervisor when it emits the shard's commit event, the worker when
    it stamps the sidecar header — so the trace context needs no
    per-shard id plumbing to keep the lanes linked.
    """
    payload = f"span:{trace_id}:{spec_key}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "little")


@dataclass(frozen=True)
class TraceContext:
    """Everything a worker needs to write its lane of a fleet trace.

    Frozen and picklable (plain strings and a bool), so it ships through
    the pool initializer exactly like :class:`~repro.faults.chaos.
    ChaosConfig` does.  ``deterministic`` selects the byte-stable export
    mode: wall-clock fields zeroed, sim-time retained (see
    :func:`repro.telemetry.exporters.scrub_wall_fields`).
    """

    trace_id: str
    root: str
    deterministic: bool = False

    def __post_init__(self) -> None:
        if not self.trace_id:
            raise ConfigurationError("trace_id must be a non-empty string")
        if not self.root:
            raise ConfigurationError("trace root must be a non-empty path")

    @property
    def shards_dir(self) -> str:
        return os.path.join(self.root, SHARDS_DIR)

    @property
    def chaos_dir(self) -> str:
        return os.path.join(self.root, CHAOS_DIR)

    @property
    def supervisor_path(self) -> str:
        return os.path.join(self.root, SUPERVISOR_FILE)

    @property
    def merged_path(self) -> str:
        return os.path.join(self.root, MERGED_FILE)

    @property
    def chrome_path(self) -> str:
        return os.path.join(self.root, CHROME_FILE)

    def shard_trace_path(self, spec_key: str) -> str:
        return os.path.join(self.shards_dir, f"{safe_lane_name(spec_key)}.jsonl")


# ----------------------------------------------------------------------
# Per-process trace runtime (installed by the fleet worker initializer)
# ----------------------------------------------------------------------

_ACTIVE: TraceContext | None = None

#: Hubs announced by the currently-executing shard (``None`` = no shard
#: capture in progress).  Scenario runners call :func:`announce_shard_hub`
#: with whatever hub they build; :func:`repro.fleet.shards.execute_spec`
#: brackets the runner with begin/end and writes the sidecar.
_SHARD_HUBS: list[TelemetryHub] | None = None


def install_trace(context: TraceContext) -> TraceContext:
    """Arm fleet tracing in this process; returns the installed context."""
    global _ACTIVE
    _ACTIVE = context
    return context


def active_trace() -> TraceContext | None:
    """The trace context armed in this process, if any."""
    return _ACTIVE


def clear_trace() -> None:
    """Disarm fleet tracing in this process."""
    global _ACTIVE
    _ACTIVE = None


def begin_shard_capture() -> None:
    """Start collecting the hubs the next scenario runner announces."""
    global _SHARD_HUBS
    _SHARD_HUBS = []


def end_shard_capture() -> list[TelemetryHub]:
    """Stop collecting and return the announced hubs (may be empty)."""
    global _SHARD_HUBS
    hubs = _SHARD_HUBS or []
    _SHARD_HUBS = None
    return hubs


def announce_shard_hub(hub) -> None:
    """Scenario runners report the hub they built for the current shard.

    A no-op outside a capture window (plain non-fleet runs) and for
    disabled hubs (``NULL_HUB``), so call sites need no tracing-enabled
    check of their own.
    """
    if _SHARD_HUBS is not None and hub is not None and getattr(hub, "enabled", False):
        _SHARD_HUBS.append(hub)


# ----------------------------------------------------------------------
# Sidecar writing (worker side)
# ----------------------------------------------------------------------


def _atomic_write_lines(path: str, lines: list[str]) -> str:
    """Write ``lines`` to ``path`` via temp file + ``os.replace``.

    Same discipline as :meth:`repro.fleet.artifacts.ArtifactStore.save`:
    a reader never sees a half-written file, and a hard-killed writer
    leaves only a temp file (ignored by every reader here).
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + ("\n" if lines else ""))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def _event_records(hubs, deterministic: bool) -> list[dict]:
    """Flatten hub event streams into seq-stamped JSON-ready records.

    ``seq`` is the emission index across the announced hubs, the
    tie-breaker of the merge order ``(sim_time, lane key, seq)``.  Sim
    time never decreases within a hub, so emission order is already
    time-sorted and seq preserves it exactly.
    """
    from repro.telemetry.exporters import scrub_wall_fields

    records: list[dict] = []
    for hub in hubs:
        for event in hub.events:
            doc = event.to_dict()
            if deterministic:
                doc = scrub_wall_fields(doc)
            doc["seq"] = len(records)
            records.append(doc)
    return records


def _trace_header(
    context: TraceContext,
    lane: str,
    n_events: int,
    parent_span_id: int | None,
    attempt: int,
) -> str:
    meta = {
        "trace_meta": {
            "version": TRACE_VERSION,
            "trace_id": context.trace_id,
            "lane": lane,
            "parent_span_id": parent_span_id,
            "attempt": attempt,
            "events": n_events,
            "deterministic": context.deterministic,
        }
    }
    return json.dumps(meta, sort_keys=True)


def write_shard_trace(
    context: TraceContext, spec_key: str, hubs, attempt: int = 1
) -> str:
    """Publish one shard's full span/event stream as its sidecar.

    Called in the worker after the shard completed.  A shard without an
    enabled hub (``telemetry=False`` specs) still gets a header-only
    sidecar, so the merged timeline enumerates every executed shard.
    The header carries the attempt number; the event lines do not, so a
    retried shard's event lines byte-match the first attempt's (golden
    comparisons skip the header).
    """
    records = _event_records(list(hubs), context.deterministic)
    lines = [
        _trace_header(
            context,
            spec_key,
            len(records),
            derive_span_id(context.trace_id, spec_key),
            attempt,
        )
    ]
    lines += [json.dumps(doc, sort_keys=True, default=repr) for doc in records]
    return _atomic_write_lines(context.shard_trace_path(spec_key), lines)


def record_chaos_event(
    context: TraceContext, spec_key: str, attempt: int, channel: str
) -> str:
    """Drop one injected-fault record into the trace's chaos lane.

    One tiny file per decision, written atomically *before* the fault
    fires — the only way an ``os._exit`` worker kill can remain visible
    on the merged timeline.  File names are content-derived, so a
    re-executed decision overwrites its own record instead of
    duplicating it.
    """
    doc = {
        "event": f"{CHAOS_EVENT_PREFIX}{channel}",
        "key": spec_key,
        "attempt": attempt,
    }
    path = os.path.join(
        context.chaos_dir,
        f"{safe_lane_name(spec_key)}.a{attempt}.{channel}.json",
    )
    return _atomic_write_lines(path, [json.dumps(doc, sort_keys=True)])


# ----------------------------------------------------------------------
# The supervisor lane (parent side)
# ----------------------------------------------------------------------


class SupervisorRecorder:
    """The fleet runner's own telemetry lane.

    Wraps a :class:`TelemetryHub` whose clock is a deterministic logical
    step counter — the supervisor runs in wall time, which the trace
    contract excludes, so its events are ordered by *what happened in
    which order*, never by how long anything took.
    """

    def __init__(self, context: TraceContext) -> None:
        self.context = context
        self._step = 0
        self.hub = TelemetryHub()
        self.hub.bind_clock(lambda: float(self._step))

    def event(self, name: str, **fields) -> None:
        """Record one supervisor event at the next logical step."""
        self.hub.emit(name, **fields)
        self._step += 1

    def shard_committed(self, spec_key: str, **fields) -> None:
        """One shard's result landed (in deterministic key order)."""
        self.event(
            FLEET_SHARD_COMMITTED,
            key=spec_key,
            span_id=derive_span_id(self.context.trace_id, spec_key),
            **fields,
        )

    def finalize(self) -> str:
        """Write the supervisor sidecar; returns its path."""
        records = _event_records([self.hub], self.context.deterministic)
        lines = [
            _trace_header(
                self.context, SUPERVISOR_LANE, len(records), None, 1
            )
        ]
        lines += [
            json.dumps(doc, sort_keys=True, default=repr) for doc in records
        ]
        return _atomic_write_lines(self.context.supervisor_path, lines)


# ----------------------------------------------------------------------
# Reading and merging (parent side, after the run)
# ----------------------------------------------------------------------


def read_trace_file(path: str) -> tuple[dict, list[dict]]:
    """One sidecar back as ``(header meta, event records)``."""
    meta: dict = {}
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if "trace_meta" in doc:
                meta = doc["trace_meta"]
            else:
                records.append(doc)
    return meta, records


def _lane_files(root: str) -> list[str]:
    """The shard sidecars under ``root``, sorted (tmp leftovers ignored)."""
    shards_dir = os.path.join(root, SHARDS_DIR)
    if not os.path.isdir(shards_dir):
        return []
    return [
        os.path.join(shards_dir, name)
        for name in sorted(os.listdir(shards_dir))
        if name.endswith(".jsonl")
    ]


def _chaos_records(root: str) -> list[dict]:
    """The chaos lane: one record per injected-fault file, sorted."""
    chaos_dir = os.path.join(root, CHAOS_DIR)
    if not os.path.isdir(chaos_dir):
        return []
    records: list[dict] = []
    for name in sorted(os.listdir(chaos_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(chaos_dir, name), "r", encoding="utf-8") as handle:
            records.append(json.loads(handle.read()))
    return records


#: Chaos records slot into the supervisor lane after its own events.
_CHAOS_SEQ_BASE = 1_000_000


def merge_fleet_trace(context: TraceContext | str) -> dict:
    """Fold every lane into one deterministic fleet timeline.

    Reads the shard sidecars, the supervisor sidecar and the chaos
    records under the trace directory and writes ``fleet_trace.jsonl``:
    one record per line, each stamped with its ``lane``, ordered by
    ``(sim_time, lane key, seq)`` with the supervisor lane sorting
    first.  The order is a pure function of the lane contents, so two
    runs that produced the same sidecars produce the same merged file.

    Returns a summary dict (``path``, ``events``, ``shards``,
    ``supervisor_events``, ``chaos_events``, ``trace_id``).
    """
    root = context.root if isinstance(context, TraceContext) else str(context)
    merged: list[tuple[float, str, int, dict]] = []

    shard_lanes = 0
    for path in _lane_files(root):
        meta, records = read_trace_file(path)
        lane = meta.get("lane") or os.path.splitext(os.path.basename(path))[0]
        shard_lanes += 1
        for doc in records:
            doc = dict(doc)
            doc["lane"] = lane
            merged.append((float(doc.get("t", 0.0)), lane, int(doc["seq"]), doc))

    supervisor_events = 0
    trace_id = context.trace_id if isinstance(context, TraceContext) else None
    supervisor_path = os.path.join(root, SUPERVISOR_FILE)
    if os.path.exists(supervisor_path):
        meta, records = read_trace_file(supervisor_path)
        trace_id = meta.get("trace_id", trace_id)
        supervisor_events = len(records)
        for doc in records:
            doc = dict(doc)
            doc["lane"] = SUPERVISOR_LANE
            # The supervisor lane sorts before every shard lane ("" <
            # any spec key), keeping recovery context ahead of the work
            # it recovered at equal timestamps.
            merged.append((float(doc.get("t", 0.0)), "", int(doc["seq"]), doc))

    chaos = _chaos_records(root)
    for index, doc in enumerate(chaos):
        doc = dict(doc)
        doc.setdefault("t", 0.0)
        doc["seq"] = _CHAOS_SEQ_BASE + index
        doc["lane"] = SUPERVISOR_LANE
        merged.append((float(doc["t"]), "", int(doc["seq"]), doc))

    merged.sort(key=lambda item: (item[0], item[1], item[2]))
    lines = [json.dumps(doc, sort_keys=True) for _, _, _, doc in merged]
    path = os.path.join(root, MERGED_FILE)
    _atomic_write_lines(path, lines)
    return {
        "path": path,
        "trace_id": trace_id,
        "events": len(merged),
        "shards": shard_lanes,
        "supervisor_events": supervisor_events,
        "chaos_events": len(chaos),
    }


def read_merged_trace(root: str) -> list[dict]:
    """The merged timeline's records, in timeline order."""
    path = os.path.join(root, MERGED_FILE)
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Chrome/Perfetto trace-event export
# ----------------------------------------------------------------------


def export_chrome_trace(
    context: TraceContext | str, path: str | None = None
) -> int:
    """Render the merged timeline as Chrome trace-event JSON.

    One "process" lane per shard (pid assigned in sorted lane order,
    starting at 1) plus pid 0 for the supervisor, so Perfetto /
    ``chrome://tracing`` shows the fleet the way the runner saw it:
    spans as complete (``"X"``) slices on their shard's lane, plain
    events as instants, supervisor recovery events spread along a
    logical-step axis.  Timestamps are *simulated* microseconds (the
    trace contract keeps wall clock out of exported artifacts).

    Returns the number of trace events written (metadata included).
    Merges the lanes first if ``fleet_trace.jsonl`` does not exist yet.
    """
    root = context.root if isinstance(context, TraceContext) else str(context)
    if not os.path.exists(os.path.join(root, MERGED_FILE)):
        merge_fleet_trace(context)
    records = read_merged_trace(root)

    lanes = sorted({doc["lane"] for doc in records} - {SUPERVISOR_LANE})
    pids = {SUPERVISOR_LANE: 0}
    pids.update({lane: index + 1 for index, lane in enumerate(lanes)})

    trace_events: list[dict] = []
    for lane in [SUPERVISOR_LANE, *lanes]:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pids[lane],
                "tid": 0,
                "args": {"name": lane},
            }
        )
    for doc in records:
        pid = pids[doc["lane"]]
        if doc.get("event") == "span":
            trace_events.append(
                {
                    "name": str(doc.get("name", "span")),
                    "ph": "X",
                    "pid": pid,
                    "tid": 0,
                    "ts": float(doc.get("sim_start", doc.get("t", 0.0))) * 1e6,
                    "dur": float(doc.get("sim_duration", 0.0)) * 1e6,
                    "args": {
                        key: value
                        for key, value in doc.items()
                        if key not in ("lane", "event")
                    },
                }
            )
        else:
            trace_events.append(
                {
                    "name": str(doc.get("event", "event")),
                    "ph": "i",
                    "pid": pid,
                    "tid": 0,
                    "ts": float(doc.get("t", 0.0)) * 1e6,
                    "s": "t",
                    "args": {
                        key: value
                        for key, value in doc.items()
                        if key not in ("lane", "event", "t")
                    },
                }
            )

    out_path = path or os.path.join(root, CHROME_FILE)
    payload = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"lanes": len(pids)},
    }
    _atomic_write_lines(
        out_path, [json.dumps(payload, sort_keys=True, default=repr)]
    )
    return len(trace_events)
