"""The telemetry hub: one sim-time-aware event bus + metrics + spans.

The hub is the single object instrumented code talks to.  It owns

- a **clock** (bound to the DES engine's ``now`` by whoever wires the
  run, so every event and span is keyed by *simulated* time),
- the **metrics registry** (counters / gauges / histograms),
- the **span stack** (nested sim+wall timing records), and
- the **sinks** events are published to.

Instrumentation must cost nothing when nobody is listening, so the
module-level :data:`NULL_HUB` (``enabled=False``, :class:`NullSink`) is
the default everywhere: ``emit`` returns immediately, ``span`` returns
the shared :data:`~repro.telemetry.spans.NULL_SPAN`, and the instrument
accessors return the shared no-op instrument -- the disabled hot path
performs no allocation and no I/O.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.telemetry.events import SPAN, TelemetryEvent
from repro.telemetry.metrics import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.sinks import NULL_SINK, MemorySink
from repro.telemetry.spans import ERROR, NULL_SPAN, Span


def _zero_clock() -> float:
    """Default clock before binding (module-level so hubs pickle)."""
    return 0.0


class _SpanContext:
    """Context manager that opens a span on enter and closes it on exit."""

    __slots__ = ("hub", "name", "attributes", "span")

    def __init__(self, hub: "TelemetryHub", name: str, attributes: dict) -> None:
        self.hub = hub
        self.name = name
        self.attributes = attributes
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self.hub._open_span(self.name, self.attributes)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None and self.span.status == "ok":
            self.span.status = ERROR
            self.span.annotate(error_type=exc_type.__name__)
        self.hub._close_span(self.span)
        return False


class TelemetryHub:
    """Event bus, metrics registry and span tracker for one run.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current *simulated* time.
        Usually bound after construction via :meth:`bind_clock` once the
        simulation engine exists.
    sink:
        Where events go.  Defaults to a fresh :class:`MemorySink` for
        enabled hubs (so exporters can read the run back) and the shared
        :class:`NullSink` for disabled ones.
    enabled:
        A disabled hub is a pure no-op; see :data:`NULL_HUB`.
    keep_spans:
        Whether finished spans are retained on :attr:`finished_spans`
        (the profiling exporters read them; disable for unbounded runs).
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        sink=None,
        enabled: bool = True,
        keep_spans: bool = True,
        reservoir_size: int = 256,
    ) -> None:
        self.enabled = enabled
        self.clock: Callable[[], float] = clock or _zero_clock
        self._clock_bound = clock is not None
        if sink is None:
            sink = MemorySink() if enabled else NULL_SINK
        self.sinks = [sink]
        self.registry = MetricsRegistry(reservoir_size=reservoir_size)
        self.keep_spans = keep_spans
        self.finished_spans: list[Span] = []
        self._span_stack: list[Span] = []
        self._next_span_id = 1

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated clock (idempotent; no-op when disabled).

        The first binding wins so one hub observing one engine cannot be
        silently re-pointed by a second controller sharing it.
        """
        if not self.enabled or self._clock_bound:
            return
        self.clock = clock
        self._clock_bound = True

    def add_sink(self, sink) -> None:
        """Publish events to an additional sink."""
        self.sinks.append(sink)

    @property
    def now(self) -> float:
        """Current simulated time as the hub sees it."""
        return self.clock()

    @property
    def events(self) -> list[TelemetryEvent]:
        """Events captured by the first memory sink (empty otherwise)."""
        for sink in self.sinks:
            if isinstance(sink, MemorySink):
                return sink.events
        return []

    # ------------------------------------------------------------------
    # Event bus
    # ------------------------------------------------------------------

    def emit(self, name: str, **fields: Any) -> None:
        """Publish one event at the current simulated time."""
        if not self.enabled:
            return
        if self._span_stack:
            fields.setdefault("span_id", self._span_stack[-1].span_id)
        event = TelemetryEvent(time=self.clock(), name=name, fields=fields)
        for sink in self.sinks:
            sink.write(event)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels) -> Histogram:
        if not self.enabled:
            return NULL_INSTRUMENT  # type: ignore[return-value]
        return self.registry.histogram(name, **labels)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a nested span: ``with hub.span("mea.cycle") as s: ...``."""
        if not self.enabled:
            return NULL_SPAN
        return _SpanContext(self, name, attributes)

    @property
    def current_span(self) -> Span | None:
        """The innermost open span, if any."""
        return self._span_stack[-1] if self._span_stack else None

    def _open_span(self, name: str, attributes: dict) -> Span:
        parent = self._span_stack[-1] if self._span_stack else None
        span = Span(
            name=name,
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent else None,
            sim_start=self.clock(),
            # pfmlint suppression: this is the *wall* half of the span's
            # dual sim/wall accounting; results never depend on it.
            wall_start=time.perf_counter(),  # pfmlint: disable=PFM002
            attributes=dict(attributes),
        )
        self._next_span_id += 1
        self._span_stack.append(span)
        return span

    def _close_span(self, span: Span) -> None:
        span.sim_end = self.clock()
        span.wall_end = time.perf_counter()  # pfmlint: disable=PFM002 -- wall half
        # Close any dangling children first (a step that escaped via an
        # exception still yields well-formed nesting).
        while self._span_stack and self._span_stack[-1] is not span:
            self._span_stack.pop()
        if self._span_stack:
            self._span_stack.pop()
        if self.keep_spans:
            self.finished_spans.append(span)
        self.registry.histogram("span_wall_seconds", span=span.name).observe(
            span.wall_duration
        )
        self.registry.histogram("span_sim_seconds", span=span.name).observe(
            span.sim_duration
        )
        event = TelemetryEvent(
            time=span.sim_end, name=SPAN, fields=span.to_fields()
        )
        for sink in self.sinks:
            sink.write(event)

    def spans_named(self, name: str) -> list[Span]:
        """Finished spans with the given name, in completion order."""
        return [span for span in self.finished_spans if span.name == name]


#: The global disabled hub: the default `telemetry` value everywhere.
NULL_HUB = TelemetryHub(enabled=False, sink=NULL_SINK, keep_spans=False)
