"""Spans: nested timing records over both clocks.

A span brackets one unit of work -- an MEA cycle, one monitor step, a
batched HSMM scoring call -- and records it against *two* clocks at once:

- **simulated time** (the DES engine's clock): how long the step took in
  the modeled world (declared latencies, backoff delays), and
- **wall-clock time** (``time.perf_counter``): how long the Python
  actually ran, which is what profiling the hot paths cares about.

Spans nest: the hub keeps a stack, so a ``mea.monitor`` span opened while
``mea.cycle`` is active records the cycle span as its parent.  Finished
spans are published to the event bus as ``span`` events and fed into the
``span_wall_seconds`` / ``span_sim_seconds`` histograms, which is where
the in-situ wall-vs-sim accounting for the HSMM hot path comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Span completion statuses.
OK = "ok"
ERROR = "error"
TIMEOUT = "timeout"


@dataclass
class Span:
    """One timed unit of work (mutable until closed by its context)."""

    name: str
    span_id: int
    parent_id: int | None
    sim_start: float
    wall_start: float
    attributes: dict[str, Any] = field(default_factory=dict)
    status: str = OK
    sim_end: float | None = None
    wall_end: float | None = None

    @property
    def finished(self) -> bool:
        return self.sim_end is not None

    @property
    def sim_duration(self) -> float:
        """Elapsed simulated seconds (0.0 until finished)."""
        return (self.sim_end - self.sim_start) if self.finished else 0.0

    @property
    def wall_duration(self) -> float:
        """Elapsed wall-clock seconds (0.0 until finished)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    def annotate(self, **attributes: Any) -> "Span":
        """Attach attributes to the span (chains for with-statements)."""
        self.attributes.update(attributes)
        return self

    def to_fields(self) -> dict[str, Any]:
        """The flat field dict the ``span`` event carries."""
        fields: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "sim_start": self.sim_start,
            "sim_duration": self.sim_duration,
            "wall_ms": self.wall_duration * 1e3,
            "status": self.status,
        }
        if self.attributes:
            fields["attrs"] = dict(self.attributes)
        return fields


class NullSpan:
    """The shared do-nothing span handed out by disabled hubs.

    Supports the same surface instrumented code touches (``annotate``,
    ``status`` assignment) so call sites need no enabled-check of their
    own, and is reused across all calls -- the disabled hot path never
    allocates.
    """

    __slots__ = ()

    status = OK

    def annotate(self, **attributes: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def __setattr__(self, name: str, value: Any) -> None:
        # Silently accept `span.status = ...` from instrumented code.
        pass


#: Module-level singleton: ``hub.span(...)`` on a disabled hub returns
#: this exact object every time.
NULL_SPAN = NullSpan()
