"""Exporters: turn one run's telemetry into shareable artifacts.

Three formats, matching the three consumers:

- :func:`export_jsonl` -- the machine-readable *event trace*: one JSON
  object per line, ordered by simulated time.  This is what dashboards
  and the reconciliation tests consume.
- :func:`prometheus_text` -- a Prometheus text-format (exposition 0.0.4)
  snapshot of the metrics registry, for scraping-shaped pipelines.
- :func:`run_summary` -- the human-readable run report: counters, gauges,
  histogram quantiles, and the per-span wall-vs-simulated-time profile.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable

from repro.telemetry.events import TelemetryEvent
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

_QUANTILES = (0.5, 0.9, 0.99)


def scrub_wall_fields(record: dict) -> dict:
    """A copy of ``record`` with every wall-clock field zeroed.

    Span records interleave ``wall_ms`` (and any future ``wall_*``
    sibling) into otherwise fully deterministic event streams, so two
    identical runs produce different trace bytes.  Zeroing — rather than
    dropping — keeps the record shape stable so readers need no schema
    branch; simulated-time fields are untouched.
    """
    return {
        key: 0.0 if "wall" in key else value for key, value in record.items()
    }


def export_jsonl(
    source: TelemetryHub | Iterable[TelemetryEvent],
    path: str | Path,
    deterministic: bool = False,
) -> int:
    """Write the event trace as JSON lines ordered by simulated time.

    With ``deterministic=True`` wall-clock fields are zeroed via
    :func:`scrub_wall_fields`, making the exported bytes a pure function
    of the run's simulated behaviour — the mode golden tests and the
    fleet trace sidecars compare byte-for-byte.

    Returns the number of lines written.
    """
    events = source.events if isinstance(source, TelemetryHub) else list(source)
    ordered = sorted(events, key=lambda e: e.time)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in ordered:
            doc = event.to_dict()
            if deterministic:
                doc = scrub_wall_fields(doc)
            handle.write(json.dumps(doc, sort_keys=True) + "\n")
    return len(ordered)


def read_jsonl(path: str | Path) -> list[dict]:
    """Load a JSONL trace back into dicts (test/analysis helper)."""
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    return [json.loads(line) for line in lines if line.strip()]


def _format_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if value != int(value) else str(int(value))


def _label_text(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + inner + "}"


def prometheus_text(source: TelemetryHub | MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    registry = source.registry if isinstance(source, TelemetryHub) else source
    lines: list[str] = []
    for name, metrics in registry.families().items():
        kind = metrics[0]
        if isinstance(kind, Counter):
            lines.append(f"# TYPE {name} counter")
            for metric in metrics:
                lines.append(
                    f"{name}{_label_text(metric.labels)} "
                    f"{_format_value(metric.value)}"
                )
        elif isinstance(kind, Gauge):
            lines.append(f"# TYPE {name} gauge")
            for metric in metrics:
                lines.append(
                    f"{name}{_label_text(metric.labels)} "
                    f"{_format_value(metric.value)}"
                )
        elif isinstance(kind, Histogram):
            lines.append(f"# TYPE {name} summary")
            for metric in metrics:
                for q in _QUANTILES:
                    lines.append(
                        f"{name}{_label_text(metric.labels, (('quantile', str(q)),))}"
                        f" {_format_value(metric.quantile(q))}"
                    )
                lines.append(
                    f"{name}_sum{_label_text(metric.labels)} "
                    f"{_format_value(metric.total)}"
                )
                lines.append(
                    f"{name}_count{_label_text(metric.labels)} {metric.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def span_profile(hub: TelemetryHub) -> dict[str, dict[str, float]]:
    """Per-span-name totals: call count, wall seconds, simulated seconds.

    This is the wall-vs-sim accounting that keeps hot-path speedups
    (e.g. the vectorized HSMM scorer) measurable in-situ: a span whose
    wall share grows while its simulated share stays flat is a Python
    hot spot, not a modeled delay.
    """
    profile: dict[str, dict[str, float]] = {}
    for span in hub.finished_spans:
        row = profile.setdefault(
            span.name,
            {"count": 0, "wall_seconds": 0.0, "sim_seconds": 0.0, "errors": 0},
        )
        row["count"] += 1
        row["wall_seconds"] += span.wall_duration
        row["sim_seconds"] += span.sim_duration
        if span.status != "ok":
            row["errors"] += 1
    return profile


def run_summary(hub: TelemetryHub, title: str = "telemetry run") -> str:
    """Human-readable report over one hub's metrics, spans and events."""
    lines = [f"=== {title} ==="]
    lines.append(f"events: {len(hub.events)}  spans: {len(hub.finished_spans)}")

    counters = [m for m in hub.registry if isinstance(m, Counter)]
    gauges = [
        m for m in hub.registry if isinstance(m, Gauge) and not math.isnan(m.value)
    ]
    histograms = [
        m
        for m in hub.registry
        if isinstance(m, Histogram) and not m.name.startswith("span_")
    ]

    if counters:
        lines.append("-- counters --")
        for metric in counters:
            lines.append(
                f"  {metric.name}{_label_text(metric.labels)} = "
                f"{_format_value(metric.value)}"
            )
    if gauges:
        lines.append("-- gauges --")
        for metric in gauges:
            lines.append(
                f"  {metric.name}{_label_text(metric.labels)} = {metric.value:.4f}"
            )
    if histograms:
        lines.append("-- histograms --")
        for metric in histograms:
            lines.append(
                f"  {metric.name}{_label_text(metric.labels)}: "
                f"count={metric.count} mean={metric.mean:.4f} "
                f"p50={metric.quantile(0.5):.4f} p99={metric.quantile(0.99):.4f}"
            )

    profile = span_profile(hub)
    if profile:
        lines.append("-- span profile (wall vs simulated) --")
        lines.append(
            f"  {'span':<28s} {'count':>6s} {'wall_s':>9s} {'sim_s':>11s} "
            f"{'errors':>6s}"
        )
        for name in sorted(
            profile, key=lambda n: profile[n]["wall_seconds"], reverse=True
        ):
            row = profile[name]
            lines.append(
                f"  {name:<28s} {int(row['count']):>6d} "
                f"{row['wall_seconds']:>9.3f} {row['sim_seconds']:>11.1f} "
                f"{int(row['errors']):>6d}"
            )
    return "\n".join(lines)
