"""Online prediction-quality tracking: Sect. 3.3 metrics as live gauges.

The paper evaluates predictors post-hoc (precision / recall / FPR over a
whole test set); at runtime the same question -- "is the predictor still
any good?" -- needs an *online* answer.  The tracker turns the
controller's evaluation stream into rolling contingency counts:

- every evaluation is recorded as a pending prediction ``(t, warning)``,
- once the simulated clock passes ``t + horizon`` the ground truth for
  that prediction is fully known (a failure did or did not start within
  ``[t, t + horizon]`` -- the controller's Table 1 semantics), so it is
  resolved into TP / FP / TN / FN,
- resolved outcomes enter a bounded rolling window; precision, recall
  and false-positive rate over the window are pushed to gauges
  (``pfm_online_precision`` / ``_recall`` / ``_fpr``) on every resolve.

With an unbounded window and a final :meth:`flush`, the tracker's counts
equal the controller's post-hoc ``outcome_matrix()`` exactly -- the live
gauges are the same metric, just available mid-run.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Sequence

from repro.errors import ConfigurationError
from repro.telemetry.hub import NULL_HUB, TelemetryHub

_OUTCOMES = ("TP", "FP", "TN", "FN")


class RollingQualityTracker:
    """Rolling-window precision / recall / FPR over resolved predictions.

    Parameters
    ----------
    horizon:
        Ground-truth match window in simulated seconds: a prediction at
        ``t`` is a true positive when a failure starts in
        ``[t, t + horizon]`` (the controller passes ``2 * lead_time``).
    window:
        Number of most-recent resolved predictions the rolling metrics
        cover.  ``None`` means unbounded (full-run metrics).
    telemetry:
        Hub whose gauges/counters mirror the tracker state.
    """

    def __init__(
        self,
        horizon: float,
        window: int | None = 200,
        telemetry: TelemetryHub = NULL_HUB,
    ) -> None:
        if horizon <= 0:
            raise ConfigurationError("horizon must be positive")
        if window is not None and window < 1:
            raise ConfigurationError("window must be >= 1 (or None)")
        self.horizon = horizon
        self.window = window
        self.telemetry = telemetry
        self._pending: deque[tuple[float, bool]] = deque()
        self._outcomes: deque[str] = deque()
        self.counts: dict[str, int] = {key: 0 for key in _OUTCOMES}
        self.total_resolved = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def record(self, time: float, warning: bool) -> None:
        """Register one evaluation awaiting ground truth."""
        self._pending.append((float(time), bool(warning)))

    def resolve(self, now: float, failure_times: Sequence[float]) -> int:
        """Resolve every pending prediction whose truth window has closed.

        ``failure_times`` must be sorted ascending (the failure log keeps
        it that way).  Returns the number of predictions resolved.
        """
        resolved = 0
        while self._pending and self._pending[0][0] + self.horizon <= now:
            time, warning = self._pending.popleft()
            self._settle(time, warning, failure_times)
            resolved += 1
        if resolved:
            self._update_gauges()
        return resolved

    def flush(self, failure_times: Sequence[float]) -> int:
        """Resolve everything still pending (end of run: the log is final)."""
        resolved = 0
        while self._pending:
            time, warning = self._pending.popleft()
            self._settle(time, warning, failure_times)
            resolved += 1
        if resolved:
            self._update_gauges()
        return resolved

    def _settle(
        self, time: float, warning: bool, failure_times: Sequence[float]
    ) -> None:
        idx = bisect.bisect_left(failure_times, time)
        imminent = (
            idx < len(failure_times) and failure_times[idx] <= time + self.horizon
        )
        if warning:
            outcome = "TP" if imminent else "FP"
        else:
            outcome = "FN" if imminent else "TN"
        self._outcomes.append(outcome)
        self.counts[outcome] += 1
        self.total_resolved += 1
        if self.window is not None and len(self._outcomes) > self.window:
            evicted = self._outcomes.popleft()
            self.counts[evicted] -= 1
        self.telemetry.counter(
            "pfm_predictions_resolved_total", outcome=outcome
        ).inc()

    def _update_gauges(self) -> None:
        tel = self.telemetry
        tel.gauge("pfm_online_precision").set(self.precision)
        tel.gauge("pfm_online_recall").set(self.recall)
        tel.gauge("pfm_online_fpr").set(self.false_positive_rate)
        tel.gauge("pfm_online_window_size").set(float(len(self._outcomes)))

    # ------------------------------------------------------------------
    # Rolling metrics (paper Sect. 3.3 definitions)
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Predictions still awaiting ground truth."""
        return len(self._pending)

    @property
    def precision(self) -> float:
        denom = self.counts["TP"] + self.counts["FP"]
        return self.counts["TP"] / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.counts["TP"] + self.counts["FN"]
        return self.counts["TP"] / denom if denom else 0.0

    @property
    def false_positive_rate(self) -> float:
        denom = self.counts["FP"] + self.counts["TN"]
        return self.counts["FP"] / denom if denom else 0.0

    def summary(self) -> dict:
        """JSON-ready snapshot of the rolling state."""
        return {
            "window": self.window,
            "resolved": self.total_resolved,
            "pending": self.pending,
            "counts": dict(self.counts),
            "precision": self.precision,
            "recall": self.recall,
            "false_positive_rate": self.false_positive_rate,
        }
