"""The PFM metrics registry: counters, gauges, and reservoir histograms.

Prometheus-shaped metric primitives over plain Python, keyed by
``(name, labels)``.  The registry hands out the same instrument for the
same key, so instrumented code can call
``registry.counter("mea_step_failures_total", step="monitor").inc()``
from a hot loop without holding references.

Histograms keep a fixed-size uniform reservoir (Vitter's algorithm R with
a name-seeded deterministic RNG), so quantile estimates stay O(1) memory
over arbitrarily long runs and identical across repeated runs of the same
workload.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError

#: Sorted ``(key, value)`` pairs -- the hashable form of a label dict.
LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A value that goes up and down (last write wins)."""

    name: str
    labels: LabelSet = ()
    value: float = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        base = 0.0 if math.isnan(self.value) else self.value
        self.value = base + float(delta)


@dataclass
class Histogram:
    """Streaming distribution summary with reservoir quantiles.

    Tracks exact ``count`` / ``sum`` / ``min`` / ``max`` and estimates
    quantiles from a uniform sample of at most ``reservoir_size``
    observations.  The reservoir RNG is seeded from the metric name, so a
    deterministic workload yields a deterministic snapshot.
    """

    name: str
    labels: LabelSet = ()
    reservoir_size: int = 256
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    _reservoir: list[float] = field(default_factory=list)
    _rng: random.Random = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.reservoir_size < 1:
            raise ConfigurationError("reservoir_size must be >= 1")
        if self._rng is None:
            self._rng = random.Random(zlib.crc32(self.name.encode()))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Reservoir quantile estimate (linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if not self._reservoir:
            return math.nan
        ordered = sorted(self._reservoir)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class MetricsRegistry:
    """All instruments of one run, keyed by ``(name, labels)``.

    A name is bound to one instrument kind on first use; reusing it with a
    different kind is a configuration error (it would silently split the
    series in every exporter).
    """

    def __init__(self, reservoir_size: int = 256) -> None:
        self.reservoir_size = reservoir_size
        self._kinds: dict[str, type] = {}
        self._metrics: dict[tuple[str, LabelSet], object] = {}

    def _get(self, kind: type, name: str, labels: dict[str, object], **kwargs):
        bound = self._kinds.setdefault(name, kind)
        if bound is not kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {bound.__name__}"
            )
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(name=name, labels=key[1], **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(
            Histogram, name, labels, reservoir_size=self.reservoir_size
        )

    def __iter__(self) -> Iterator[object]:
        """Instruments in registration order (stable for exporters)."""
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def families(self) -> dict[str, list]:
        """Instruments grouped by metric name, preserving order."""
        grouped: dict[str, list] = {}
        for (name, _), metric in self._metrics.items():
            grouped.setdefault(name, []).append(metric)
        return grouped

    def snapshot(self) -> dict[str, object]:
        """JSON-ready dump of every instrument's current state."""
        doc: dict[str, object] = {}
        for (name, labels), metric in self._metrics.items():
            key = name if not labels else (
                name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            )
            if isinstance(metric, Histogram):
                doc[key] = {
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "p50": metric.quantile(0.5),
                    "p90": metric.quantile(0.9),
                    "p99": metric.quantile(0.99),
                }
            else:
                doc[key] = metric.value  # type: ignore[union-attr]
        return doc


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The singleton every disabled hub hands out -- no allocation per call.
NULL_INSTRUMENT = _NullInstrument()
