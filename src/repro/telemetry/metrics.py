"""The PFM metrics registry: counters, gauges, and reservoir histograms.

Prometheus-shaped metric primitives over plain Python, keyed by
``(name, labels)``.  The registry hands out the same instrument for the
same key, so instrumented code can call
``registry.counter("mea_step_failures_total", step="monitor").inc()``
from a hot loop without holding references.

Histograms keep a fixed-size uniform reservoir (Vitter's algorithm R with
a name-seeded deterministic RNG), so quantile estimates stay O(1) memory
over arbitrarily long runs and identical across repeated runs of the same
workload.
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ConfigurationError

#: Sorted ``(key, value)`` pairs -- the hashable form of a label dict.
LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """A value that goes up and down (last write wins)."""

    name: str
    labels: LabelSet = ()
    value: float = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        base = 0.0 if math.isnan(self.value) else self.value
        self.value = base + float(delta)


@dataclass
class Histogram:
    """Streaming distribution summary with reservoir quantiles.

    Tracks exact ``count`` / ``sum`` / ``min`` / ``max`` and estimates
    quantiles from a uniform sample of at most ``reservoir_size``
    observations.  The reservoir RNG is seeded from the metric name, so a
    deterministic workload yields a deterministic snapshot.
    """

    name: str
    labels: LabelSet = ()
    reservoir_size: int = 256
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    _reservoir: list[float] = field(default_factory=list)
    _rng: random.Random = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.reservoir_size < 1:
            raise ConfigurationError("reservoir_size must be >= 1")
        if self._rng is None:
            self._rng = random.Random(zlib.crc32(self.name.encode()))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram of the same series into this one.

        Counts, sums and extrema combine exactly; the reservoirs are
        pooled and, when over capacity, downsampled with an RNG seeded
        from the metric name and the combined count — so merging the same
        shard histograms in the same order always yields the same
        reservoir, regardless of which process produced each shard.
        """
        combined = self.count + other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        pooled = self._reservoir + other._reservoir
        if len(pooled) > self.reservoir_size:
            rng = random.Random(zlib.crc32(self.name.encode()) ^ combined)
            pooled = rng.sample(pooled, self.reservoir_size)
        self._reservoir = pooled
        self.count = combined

    def quantile(self, q: float) -> float:
        """Reservoir quantile estimate (linear interpolation)."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if not self._reservoir:
            return math.nan
        ordered = sorted(self._reservoir)
        pos = q * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class MetricsRegistry:
    """All instruments of one run, keyed by ``(name, labels)``.

    A name is bound to one instrument kind on first use; reusing it with a
    different kind is a configuration error (it would silently split the
    series in every exporter).
    """

    def __init__(self, reservoir_size: int = 256) -> None:
        self.reservoir_size = reservoir_size
        self._kinds: dict[str, type] = {}
        self._metrics: dict[tuple[str, LabelSet], object] = {}

    def _get(self, kind: type, name: str, labels: dict[str, object], **kwargs):
        bound = self._kinds.setdefault(name, kind)
        if bound is not kind:
            raise ConfigurationError(
                f"metric {name!r} already registered as {bound.__name__}"
            )
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = kind(name=name, labels=key[1], **kwargs)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(
            Histogram, name, labels, reservoir_size=self.reservoir_size
        )

    def __iter__(self) -> Iterator[object]:
        """Instruments in registration order (stable for exporters)."""
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def families(self) -> dict[str, list]:
        """Instruments grouped by metric name, preserving order."""
        grouped: dict[str, list] = {}
        for (name, _), metric in self._metrics.items():
            grouped.setdefault(name, []).append(metric)
        return grouped

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one (fleet aggregation).

        Counters add, gauges take the incoming value (last merge wins,
        matching their last-write-wins semantics within a run), and
        histograms pool via :meth:`Histogram.merge`.  Merging per-shard
        registries in a deterministic shard order therefore yields a
        deterministic merged registry.
        """
        for (name, labels), metric in other._metrics.items():
            kind = type(metric)
            if kind is Counter:
                self._get(Counter, name, dict(labels)).inc(metric.value)
            elif kind is Gauge:
                if not math.isnan(metric.value):
                    self._get(Gauge, name, dict(labels)).set(metric.value)
            elif kind is Histogram:
                mine = self._get(
                    Histogram, name, dict(labels), reservoir_size=self.reservoir_size
                )
                mine.merge(metric)
            else:  # pragma: no cover - registry only hands out these kinds
                raise ConfigurationError(f"cannot merge metric kind {kind.__name__}")
        return self

    def to_state(self) -> list[dict]:
        """Lossless JSON-ready dump (unlike :meth:`snapshot`, mergeable).

        Preserves histogram reservoirs so registries round-trip through
        the shard ledger and still merge exactly.
        """
        state: list[dict] = []
        for (name, labels), metric in self._metrics.items():
            entry: dict[str, object] = {"name": name, "labels": [list(kv) for kv in labels]}
            if isinstance(metric, Counter):
                entry.update(kind="counter", value=metric.value)
            elif isinstance(metric, Gauge):
                entry.update(
                    kind="gauge",
                    value=None if math.isnan(metric.value) else metric.value,
                )
            else:
                entry.update(
                    kind="histogram",
                    count=metric.count,
                    total=metric.total,
                    min=metric.min if metric.count else None,
                    max=metric.max if metric.count else None,
                    reservoir=list(metric._reservoir),
                    reservoir_size=metric.reservoir_size,
                )
            state.append(entry)
        return state

    @classmethod
    def from_state(cls, state: list[dict]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_state` output."""
        registry = cls()
        for entry in state:
            labels = {k: v for k, v in entry.get("labels", [])}
            kind = entry["kind"]
            if kind == "counter":
                registry.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == "gauge":
                if entry["value"] is not None:
                    registry.gauge(entry["name"], **labels).set(entry["value"])
                else:
                    registry.gauge(entry["name"], **labels)
            elif kind == "histogram":
                hist = registry._get(
                    Histogram,
                    entry["name"],
                    labels,
                    reservoir_size=entry.get("reservoir_size", 256),
                )
                hist.count = int(entry["count"])
                hist.total = float(entry["total"])
                hist.min = math.inf if entry["min"] is None else float(entry["min"])
                hist.max = -math.inf if entry["max"] is None else float(entry["max"])
                hist._reservoir = [float(v) for v in entry["reservoir"]]
            else:
                raise ConfigurationError(f"unknown metric kind {kind!r} in state")
        return registry

    def snapshot(self) -> dict[str, object]:
        """JSON-ready dump of every instrument's current state."""
        doc: dict[str, object] = {}
        for (name, labels), metric in self._metrics.items():
            key = name if not labels else (
                name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"
            )
            if isinstance(metric, Histogram):
                doc[key] = {
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "p50": metric.quantile(0.5),
                    "p90": metric.quantile(0.9),
                    "p99": metric.quantile(0.99),
                }
            else:
                doc[key] = metric.value  # type: ignore[union-attr]
        return doc


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


#: The singleton every disabled hub hands out -- no allocation per call.
NULL_INSTRUMENT = _NullInstrument()
