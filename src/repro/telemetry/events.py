"""Telemetry events: the sim-time-keyed records the event bus carries.

Every observable happening inside the PFM stack -- a finished MEA span, a
raised warning episode, a circuit-breaker transition, a sanitized gauge
read -- becomes one :class:`TelemetryEvent`: a name, the *simulated* time
it happened, and a flat field dict.  Events are what sinks persist and
exporters serialize; metrics (counters/gauges/histograms) are the
aggregated view over the same happenings.

Event names are dotted ``layer.happening`` strings.  The stable schema
(documented in ``docs/observability.md``) currently comprises:

- ``span``                            -- a finished span (see spans.py)
- ``mea.step_failure``                -- a caught MEA step failure
- ``resilience.retry``                -- an in-iteration step retry
- ``resilience.breaker_transition``   -- circuit breaker state change
- ``resilience.predictor_fault``      -- primary predictor fault absorbed
- ``resilience.escalation``           -- escalation chain level bump
- ``sanitizer.substitution``          -- a bad gauge read substituted
- ``sanitizer.stale``                 -- a variable crossed the stale bar
- ``pfm.warning_episode``             -- a warning and what was done
- ``pfm.cooldown_suppressed``         -- a warning silenced by cooldown
- ``run.start`` / ``run.end``         -- run lifecycle markers
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Canonical event names (importable so tests and docs stay in sync).
SPAN = "span"
MEA_STEP_FAILURE = "mea.step_failure"
RETRY = "resilience.retry"
BREAKER_TRANSITION = "resilience.breaker_transition"
PREDICTOR_FAULT = "resilience.predictor_fault"
ESCALATION = "resilience.escalation"
SANITIZER_SUBSTITUTION = "sanitizer.substitution"
SANITIZER_STALE = "sanitizer.stale"
WARNING_EPISODE = "pfm.warning_episode"
COOLDOWN_SUPPRESSED = "pfm.cooldown_suppressed"
ARBITRATION_ATTRIBUTION = "arbitration.attribution"
RUN_START = "run.start"
RUN_END = "run.end"


@dataclass(frozen=True)
class TelemetryEvent:
    """One happening, keyed by simulated time."""

    time: float  # simulated seconds
    name: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Flat JSON-ready form: ``{"t": ..., "event": ..., **fields}``."""
        doc: dict[str, Any] = {"t": self.time, "event": self.name}
        doc.update(self.fields)
        return doc
