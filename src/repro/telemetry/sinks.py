"""Event sinks: where emitted telemetry goes.

A sink is anything with ``write(event)``.  Three are provided:

- :class:`NullSink` -- drops everything (the disabled-mode default),
- :class:`MemorySink` -- buffers events in a list (tests, exporters),
- :class:`JSONLSink` -- streams events to a JSON-lines file as they
  happen, one ``{"t": ..., "event": ..., ...}`` object per line.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.events import TelemetryEvent


class NullSink:
    """Swallow every event."""

    __slots__ = ()

    def write(self, event: TelemetryEvent) -> None:
        pass


#: Shared instance used by disabled hubs.
NULL_SINK = NullSink()


class MemorySink:
    """Keep every event in order in ``events``."""

    def __init__(self) -> None:
        self.events: list[TelemetryEvent] = []

    def write(self, event: TelemetryEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class JSONLSink:
    """Append events to a JSON-lines file (opened lazily, flushed on close)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle = None
        self.lines = 0

    def write(self, event: TelemetryEvent) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.lines += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
