"""The Monitor-Evaluate-Act cycle (paper Sect. 2, Fig. 1).

"The following three steps are continuously repeated during system
runtime": monitor the system, evaluate whether the current state is
failure-prone, and act on imminent failures.  The engine here is generic:
it takes a monitor callable, an evaluator callable and an actor callable
and repeats them as a simulation process, recording every iteration.

The cycle is hardened against its own steps: an exception in monitor,
evaluate or act is caught into a structured :class:`StepFailure` record
(optionally retried per a :class:`~repro.resilience.policies.RetryPolicy`)
instead of killing the ``mea-cycle`` process, and a step that declares a
simulated latency beyond its :class:`~repro.resilience.policies.StepTimeout`
budget is skipped as a timeout.  A fully-failed iteration delays the next
one by the policy's exponential backoff -- the cycle slows down under
sustained trouble but never dies silently.

The cycle is also self-observing: every iteration emits an ``mea.cycle``
span with child spans per executed step (status ``error`` / ``timeout``
on failure), plus ``mea.step_failure`` and ``resilience.retry`` events,
through the :mod:`repro.telemetry` hub it was built with.  The default
:data:`~repro.telemetry.hub.NULL_HUB` keeps all of it no-op.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.resilience.policies import RetryPolicy, StepTimeout
from repro.simulator.engine import Engine
from repro.simulator.events import Timeout
from repro.telemetry import events as tel_events
from repro.telemetry.hub import NULL_HUB, TelemetryHub

#: The three step names, in execution order.
STEPS = ("monitor", "evaluate", "act")


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of one Evaluate step."""

    score: float
    warning: bool
    confidence: float = 0.0
    target: str = ""


#: Placeholder evaluation used when the Evaluate step itself failed.
NULL_EVALUATION = EvaluationResult(score=math.nan, warning=False)


@dataclass(frozen=True)
class StepFailure:
    """A caught failure of one MEA step (the cycle survived it)."""

    time: float
    step: str  # "monitor" | "evaluate" | "act"
    error_type: str  # exception class name, or "StepTimeout"
    message: str
    attempts: int = 1  # how many tries were made this iteration


@dataclass
class MEARecord:
    """One full cycle iteration."""

    time: float
    observation: Any
    evaluation: EvaluationResult
    action_taken: str | None
    failed_steps: tuple[str, ...] = ()


@dataclass
class MEACycle:
    """The cycle engine.

    Parameters
    ----------
    engine:
        Simulation engine to run in.
    monitor:
        Zero-argument callable returning the current observation.
    evaluate:
        Maps the observation to an :class:`EvaluationResult`.
    act:
        Called with the evaluation when a warning is raised; returns a
        short description of the action taken (or None for "do nothing").
    period:
        Cycle period in simulated seconds.
    retry:
        Optional retry policy: failed steps are retried immediately up to
        ``max_attempts`` within an iteration, and iterations that still
        fail push the next cycle out by the policy's backoff.
    timeouts:
        Optional per-step :class:`StepTimeout` budgets (keyed by step
        name).  Enforced against :attr:`step_latency`.
    step_latency:
        Optional hook ``step_name -> simulated seconds`` declaring how
        long the upcoming step would take in simulated time (e.g. a
        predictor under injected latency).  Steps over budget are skipped
        and recorded as timeouts; on-budget latency is added to the sleep
        after the iteration so the simulated clock stays honest.
    on_step_failure:
        Optional callback invoked with every :class:`StepFailure`.
    telemetry:
        Telemetry hub receiving cycle/step spans and failure events
        (disabled :data:`~repro.telemetry.hub.NULL_HUB` by default).
    """

    engine: Engine
    monitor: Callable[[], Any]
    evaluate: Callable[[Any], EvaluationResult]
    act: Callable[[EvaluationResult], str | None]
    period: float = 30.0
    history: list[MEARecord] = field(default_factory=list)
    running: bool = False
    retry: RetryPolicy | None = None
    timeouts: dict[str, StepTimeout] = field(default_factory=dict)
    step_latency: Callable[[str], float] | None = None
    on_step_failure: Callable[[StepFailure], None] | None = None
    telemetry: TelemetryHub = NULL_HUB
    failures: list[StepFailure] = field(default_factory=list)
    consecutive_failed_cycles: int = field(default=0, init=False)
    _pending_latency: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("period must be positive")
        unknown = set(self.timeouts) - set(STEPS)
        if unknown:
            raise ConfigurationError(f"timeouts for unknown steps: {sorted(unknown)}")

    def start(self) -> None:
        """Launch the repeating cycle (idempotent)."""
        if self.running:
            return
        self.running = True
        self.engine.process(self._run(), name="mea-cycle")

    def stop(self) -> None:
        """Stop the repeating cycle after the current iteration."""
        self.running = False

    # ------------------------------------------------------------------
    # Resilient step execution
    # ------------------------------------------------------------------

    def note_failure(
        self, step: str, error: BaseException | str, attempts: int = 1
    ) -> StepFailure:
        """Record a step failure observed by a collaborator (e.g. the
        controller catching an action exception it handled itself)."""
        if isinstance(error, BaseException):
            failure = StepFailure(
                time=self.engine.now,
                step=step,
                error_type=type(error).__name__,
                message=str(error),
                attempts=attempts,
            )
        else:
            failure = StepFailure(
                time=self.engine.now,
                step=step,
                error_type="StepFailure",
                message=str(error),
                attempts=attempts,
            )
        self.failures.append(failure)
        self.telemetry.emit(
            tel_events.MEA_STEP_FAILURE,
            step=failure.step,
            error_type=failure.error_type,
            message=failure.message,
            attempts=failure.attempts,
        )
        self.telemetry.counter("mea_step_failures_total", step=failure.step).inc()
        if self.on_step_failure is not None:
            self.on_step_failure(failure)
        return failure

    def _run_step(self, step: str, fn: Callable, *args) -> tuple[Any, bool]:
        """Run one step with timeout + retry guards.

        Returns ``(result, ok)``; on failure the result is ``None`` and a
        :class:`StepFailure` has been recorded.
        """
        with self.telemetry.span("mea." + step) as span:
            timeout = self.timeouts.get(step)
            if timeout is not None and self.step_latency is not None:
                latency = float(self.step_latency(step))
                if timeout.exceeded(latency):
                    span.status = "timeout"
                    span.annotate(declared_latency=latency, budget=timeout.budget)
                    self.note_failure(
                        step,
                        f"declared simulated latency {latency:.1f}s exceeds "
                        f"budget {timeout.budget:.1f}s",
                    )
                    return None, False
                self._pending_latency += max(latency, 0.0)
            attempts = self.retry.max_attempts if self.retry is not None else 1
            last_error: BaseException | None = None
            for attempt in range(1, attempts + 1):
                try:
                    return fn(*args), True
                except Exception as exc:  # broad by design - the whole point
                    last_error = exc
                    if attempt < attempts:
                        self.telemetry.emit(
                            tel_events.RETRY,
                            step=step,
                            attempt=attempt,
                            error_type=type(exc).__name__,
                        )
                        self.telemetry.counter(
                            "mea_retries_total", step=step
                        ).inc()
            assert last_error is not None
            span.status = "error"
            span.annotate(error_type=type(last_error).__name__)
            self.note_failure(step, last_error, attempts=attempts)
            return None, False

    def step(self) -> MEARecord:
        """One M-E-A iteration right now.

        Step failures are absorbed: a failed monitor or evaluate yields a
        null (non-warning) evaluation, a failed act yields no action, and
        the record lists which steps failed.
        """
        tel = self.telemetry
        with tel.span("mea.cycle", iteration=len(self.history)) as cycle:
            failed: list[str] = []
            observation, ok = self._run_step("monitor", self.monitor)
            if not ok:
                failed.append("monitor")
            evaluation = NULL_EVALUATION
            if ok:
                evaluation, ok = self._run_step(
                    "evaluate", self.evaluate, observation
                )
                if not ok:
                    failed.append("evaluate")
                    evaluation = NULL_EVALUATION
            action: str | None = None
            if evaluation.warning:
                action, ok = self._run_step("act", self.act, evaluation)
                if not ok:
                    failed.append("act")
                    action = None
            record = MEARecord(
                time=self.engine.now,
                observation=observation,
                evaluation=evaluation,
                action_taken=action,
                failed_steps=tuple(failed),
            )
            self.history.append(record)
            if failed:
                self.consecutive_failed_cycles += 1
                cycle.annotate(failed_steps=failed)
            else:
                self.consecutive_failed_cycles = 0
            cycle.annotate(warning=evaluation.warning, action=action)
        tel.counter("mea_cycles_total").inc()
        if evaluation.warning:
            tel.counter("mea_warnings_total").inc()
        if action is not None:
            tel.counter("mea_actions_total").inc()
        if failed:
            tel.counter("mea_degraded_cycles_total").inc()
        tel.gauge("mea_consecutive_failed_cycles").set(
            float(self.consecutive_failed_cycles)
        )
        return record

    def _run(self):
        while self.running:
            self._pending_latency = 0.0
            self.step()
            delay = self.period + self._pending_latency
            if self.retry is not None and self.consecutive_failed_cycles > 0:
                delay += self.retry.backoff(self.consecutive_failed_cycles)
            yield Timeout(delay)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def warnings_raised(self) -> int:
        """Number of iterations whose evaluation raised a warning."""
        return sum(1 for r in self.history if r.evaluation.warning)

    @property
    def actions_taken(self) -> int:
        """Number of iterations in which a countermeasure actually ran."""
        return sum(1 for r in self.history if r.action_taken is not None)

    @property
    def degraded_iterations(self) -> int:
        """Number of iterations in which at least one step failed."""
        return sum(1 for r in self.history if r.failed_steps)

    def failures_by_step(self) -> dict[str, int]:
        """Count of recorded step failures keyed by step name."""
        counts: dict[str, int] = {}
        for failure in self.failures:
            counts[failure.step] = counts.get(failure.step, 0) + 1
        return counts
