"""The Monitor-Evaluate-Act cycle (paper Sect. 2, Fig. 1).

"The following three steps are continuously repeated during system
runtime": monitor the system, evaluate whether the current state is
failure-prone, and act on imminent failures.  The engine here is generic:
it takes a monitor callable, an evaluator callable and an actor callable
and repeats them as a simulation process, recording every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.simulator.engine import Engine
from repro.simulator.events import Timeout


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of one Evaluate step."""

    score: float
    warning: bool
    confidence: float = 0.0
    target: str = ""


@dataclass
class MEARecord:
    """One full cycle iteration."""

    time: float
    observation: Any
    evaluation: EvaluationResult
    action_taken: str | None


@dataclass
class MEACycle:
    """The cycle engine.

    Parameters
    ----------
    engine:
        Simulation engine to run in.
    monitor:
        Zero-argument callable returning the current observation.
    evaluate:
        Maps the observation to an :class:`EvaluationResult`.
    act:
        Called with the evaluation when a warning is raised; returns a
        short description of the action taken (or None for "do nothing").
    period:
        Cycle period in simulated seconds.
    """

    engine: Engine
    monitor: Callable[[], Any]
    evaluate: Callable[[Any], EvaluationResult]
    act: Callable[[EvaluationResult], str | None]
    period: float = 30.0
    history: list[MEARecord] = field(default_factory=list)
    running: bool = False

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError("period must be positive")

    def start(self) -> None:
        """Launch the repeating cycle (idempotent)."""
        if self.running:
            return
        self.running = True
        self.engine.process(self._run(), name="mea-cycle")

    def stop(self) -> None:
        """Stop the repeating cycle after the current iteration."""
        self.running = False

    def step(self) -> MEARecord:
        """One M-E-A iteration right now."""
        observation = self.monitor()
        evaluation = self.evaluate(observation)
        action = self.act(evaluation) if evaluation.warning else None
        record = MEARecord(
            time=self.engine.now,
            observation=observation,
            evaluation=evaluation,
            action_taken=action,
        )
        self.history.append(record)
        return record

    def _run(self):
        while self.running:
            self.step()
            yield Timeout(self.period)

    @property
    def warnings_raised(self) -> int:
        """Number of iterations whose evaluation raised a warning."""
        return sum(1 for r in self.history if r.evaluation.warning)

    @property
    def actions_taken(self) -> int:
        """Number of iterations in which a countermeasure actually ran."""
        return sum(1 for r in self.history if r.action_taken is not None)
