"""Translucency: insight into dependability and performance at all levels.

Paper Sect. 6: "we need to find out at which level we will achieve the
highest payoff in terms of dependability gain with minimum performance
degradation when PFM methods are used.  We call such a desirable system
property *translucency* which means that we have an insight into
dependability and performance at all levels while applying specific MEA
methods."

:class:`TranslucencyReport` aggregates exactly that: per-layer predictor
quality, the combiner's learned layer weights, countermeasure statistics,
and the modeled dependability payoff of improving each layer's predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.blueprint import BlueprintArchitecture
from repro.errors import ConfigurationError
from repro.prediction.metrics import auc
from repro.reliability.rates import PFMParameters
from repro.reliability.reliability_fn import asymptotic_unavailability_ratio
from repro.reporting import table


@dataclass(frozen=True)
class LayerInsight:
    """One layer's contribution to the system's PFM."""

    layer: str
    auc: float
    combiner_weight: float
    variables: list[str]


@dataclass
class TranslucencyReport:
    """Cross-layer dependability / performance insight."""

    layers: list[LayerInsight] = field(default_factory=list)
    fused_auc: float = 0.0
    action_counts: dict[str, int] = field(default_factory=dict)
    model_ratio: float = 1.0

    @classmethod
    def from_blueprint(
        cls,
        blueprint: BlueprintArchitecture,
        x_test: np.ndarray,
        labels_test: np.ndarray,
        variables: list[str],
        action_counts: dict[str, int] | None = None,
        model_params: PFMParameters | None = None,
    ) -> "TranslucencyReport":
        """Build the report from a fitted blueprint and test data."""
        labels_test = np.asarray(labels_test, dtype=bool)
        if not labels_test.any() or labels_test.all():
            raise ConfigurationError("test labels need both classes")
        layer_scores = blueprint.layer_scores(x_test)
        weights = blueprint.layer_report()
        insights = []
        for i, layer_predictor in enumerate(blueprint.layers):
            name = layer_predictor.layer.value
            insights.append(
                LayerInsight(
                    layer=name,
                    auc=auc(layer_scores[:, i], labels_test),
                    combiner_weight=float(weights[name]),
                    variables=[variables[j] for j in layer_predictor.variable_indices],
                )
            )
        fused = auc(blueprint.score_samples(x_test), labels_test)
        ratio = (
            asymptotic_unavailability_ratio(model_params)
            if model_params is not None
            else 1.0
        )
        return cls(
            layers=insights,
            fused_auc=fused,
            action_counts=dict(action_counts or {}),
            model_ratio=ratio,
        )

    def highest_payoff_layer(self) -> str:
        """The layer where predictor improvement pays off most.

        Heuristic: the layer the combiner leans on most per unit of AUC it
        currently delivers -- heavy weight on a weak predictor means
        improving that predictor moves the fused score most.
        """
        if not self.layers:
            raise ConfigurationError("report has no layers")
        def leverage(insight: LayerInsight) -> float:
            headroom = max(1.0 - insight.auc, 0.0)
            return abs(insight.combiner_weight) * headroom
        return max(self.layers, key=leverage).layer

    def render(self) -> str:
        """Human-readable report."""
        rows = [
            (
                insight.layer,
                f"{insight.auc:.3f}",
                f"{insight.combiner_weight:+.2f}",
                ", ".join(insight.variables),
            )
            for insight in self.layers
        ]
        lines = [
            table(["layer", "AUC", "weight", "variables"], rows),
            f"fused AUC: {self.fused_auc:.3f}",
            f"highest-payoff layer: {self.highest_payoff_layer()}",
        ]
        if self.action_counts:
            actions = ", ".join(
                f"{name}: {count}" for name, count in sorted(self.action_counts.items())
            )
            lines.append(f"countermeasures executed: {actions}")
        if self.model_ratio < 1.0:
            lines.append(
                f"modeled unavailability ratio at current quality: {self.model_ratio:.3f}"
            )
        return "\n".join(lines)
