"""Closed-loop PFM experiments on the simulated SCP.

The experiment the paper could not run on the commercial system ("we could
not apply countermeasures in the commercial system, [so] we assumed
reasonable and moderate values"): train a predictor on one simulated
period, then run the *same* faultload twice -- once plain, once with the
PFM controller attached -- and compare failures, availability and the
Table 1 behaviour matrix.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

import numpy as np

from repro.actions.checkpoint import PreparedRepairAction, RepairBreakdown
from repro.core.controller import PFMController
from repro.fleet.spec import RunSpec
from repro.prediction.base import SymptomPredictor
from repro.prediction.registry import make_predictor
from repro.simulator.events import Timeout
from repro.telecom.dataset import DatasetConfig, prepare_simulation

#: Default monitoring variables for the online controller (system gauges).
DEFAULT_VARIABLES = [
    "cpu_utilization",
    "memory_free_mb",
    "swap_activity",
    "max_stretch",
    "response_time_ms",
    "error_rate",
    "violation_prob",
    "db_utilization",
    "request_rate",
]


@dataclass
class ClosedLoopResult:
    """Comparison of the same faultload with and without PFM."""

    baseline_failures: int
    pfm_failures: int
    baseline_window_availability: float
    pfm_window_availability: float
    warnings_raised: int
    actions_taken: int
    actions_by_name: dict[str, int]
    outcome_matrix: dict[str, dict[str, int]]
    predictor_threshold: float
    mea_iterations: int = 0

    @property
    def unavailability_ratio(self) -> float:
        """Measured counterpart of the model's Eq. 14 ratio."""
        baseline_unavail = 1.0 - self.baseline_window_availability
        pfm_unavail = 1.0 - self.pfm_window_availability
        if baseline_unavail <= 0:
            return 1.0
        return pfm_unavail / baseline_unavail

    def summary(self) -> str:
        """Human-readable multi-line result summary."""
        lines = [
            f"failures: {self.baseline_failures} -> {self.pfm_failures}",
            (
                f"window availability: {self.baseline_window_availability:.4f} -> "
                f"{self.pfm_window_availability:.4f}"
            ),
            f"unavailability ratio (measured Eq.14): {self.unavailability_ratio:.3f}",
            f"warnings: {self.warnings_raised}, actions: {self.actions_taken}",
            f"actions by type: {self.actions_by_name}",
        ]
        for outcome, cells in self.outcome_matrix.items():
            lines.append(
                f"  {outcome}: {cells['count']} predictions, {cells['acted']} acted on"
            )
        return "\n".join(lines)


def _default_predictor(rng: np.random.Generator) -> SymptomPredictor:
    """A fast UBF configuration for the online controller.

    Thin wrapper over the declarative registry — ``"ubf"`` with its
    defaults IS this configuration, so fleet grids naming ``ubf``
    reproduce historical closed-loop runs exactly.
    """
    return make_predictor("ubf", rng=rng)


def train_predictor(
    config: DatasetConfig,
    variables: list[str] | None = None,
    predictor: SymptomPredictor | None = None,
) -> tuple[SymptomPredictor, np.ndarray]:
    """Fit and threshold-calibrate a predictor on a training simulation.

    Works for any unified :class:`~repro.prediction.base.Predictor`: the
    training bundle carries whichever views the predictor declares it
    consumes (feature samples, event sequences, or — for a mixed
    arbitration panel — both), scores come from the aligned calibration
    batch, and the warning threshold is set at the max-F point.

    Returns ``(predictor, training_scores)``.
    """
    variables = variables or DEFAULT_VARIABLES
    dataset = prepare_simulation(config).run()
    predictor = predictor or _default_predictor(np.random.default_rng(config.seed))
    consumes = getattr(predictor, "consumes", frozenset({"samples"}))
    data = dataset.training_data(
        variables=variables,
        consumes=consumes,
        rng=np.random.default_rng(config.seed + 917),
    )
    predictor.fit(data)
    scores = predictor.score_batch(data.batch())
    predictor.calibrate_threshold(scores, data.labels)
    return predictor, scores


@dataclass
class ReplicatedResult:
    """Closed-loop results over several evaluation seeds."""

    results: list[ClosedLoopResult]

    def _stats(self, values: list[float]) -> tuple[float, float]:
        arr = np.asarray(values, dtype=float)
        return float(arr.mean()), float(arr.std())

    @property
    def mean_unavailability_ratio(self) -> float:
        """Mean measured Eq. 14 ratio across replicates."""
        return self._stats([r.unavailability_ratio for r in self.results])[0]

    @property
    def std_unavailability_ratio(self) -> float:
        """Standard deviation of the measured ratio across replicates."""
        return self._stats([r.unavailability_ratio for r in self.results])[1]

    @property
    def always_improves(self) -> bool:
        """True when PFM reduced unavailability on every replicate."""
        return all(r.unavailability_ratio < 1.0 for r in self.results)

    def summary(self) -> str:
        ratios = [r.unavailability_ratio for r in self.results]
        lines = [
            f"replicates: {len(self.results)}",
            "per-seed unavailability ratios: "
            + ", ".join(f"{r:.3f}" for r in ratios),
            (
                f"mean ratio = {self.mean_unavailability_ratio:.3f} "
                f"+/- {self.std_unavailability_ratio:.3f}"
            ),
        ]
        return "\n".join(lines)


def replicate_closed_loop(
    eval_seeds: list[int],
    train_seed: int = 11,
    horizon: float = 2 * 86_400.0,
    variables: list[str] | None = None,
    config: DatasetConfig | None = None,
) -> ReplicatedResult:
    """Run the closed-loop comparison over several faultload seeds.

    One predictor is trained once (on ``train_seed``) and evaluated against
    every seed's faultload -- separating predictor luck from faultload
    luck.

    .. deprecated::
        Superseded by :func:`repro.fleet.run_fleet`, which runs the same
        multi-seed design sharded across workers with checkpoint/resume
        (pin ``train_seed`` and ``eval_seed`` on the specs to reproduce
        this exact layout).  This shim keeps the old serial behaviour.
    """
    warnings.warn(
        "replicate_closed_loop is deprecated; use repro.fleet.run_fleet "
        "with RunSpec(scenario='closed-loop', train_seed=..., eval_seed=...) "
        "shards instead",
        DeprecationWarning,
        stacklevel=2,
    )
    if not eval_seeds:
        raise ValueError("need at least one evaluation seed")
    base_config = config or DatasetConfig()
    train_config = replace(base_config, seed=train_seed, horizon=horizon)
    trained = train_predictor(train_config, variables or DEFAULT_VARIABLES)
    results = [
        run_closed_loop(
            train_seed=train_seed,
            eval_seed=seed,
            horizon=horizon,
            variables=variables,
            config=config,
            trained=trained,
        )
        for seed in eval_seeds
    ]
    return ReplicatedResult(results=results)


@dataclass
class TTRComparison:
    """Measured time-to-repair with vs without prediction-driven preparation."""

    prepared_repairs: list[RepairBreakdown]
    classical_repairs: list[RepairBreakdown]

    @staticmethod
    def _mean_total(repairs: list[RepairBreakdown]) -> float:
        if not repairs:
            return float("nan")
        return float(np.mean([r.total for r in repairs]))

    @property
    def mean_prepared_ttr(self) -> float:
        """Mean TTR in the PFM run (prepared when a warning armed the spare)."""
        return self._mean_total(self.prepared_repairs)

    @property
    def mean_classical_ttr(self) -> float:
        """Mean TTR in the baseline run (always classical recovery)."""
        return self._mean_total(self.classical_repairs)

    @property
    def k_measured(self) -> float:
        """The measured Eq. 6 factor ``MTTR / MTTR_prepared``."""
        prepared = self.mean_prepared_ttr
        if not prepared or np.isnan(prepared):
            return float("nan")
        return self.mean_classical_ttr / prepared


def _attach_repair_measurement(
    sim,
    action: PreparedRepairAction,
    breakdowns: list[RepairBreakdown],
    checkpoint_interval: float,
    burst_gap: float,
) -> None:
    """Wire a PreparedRepairAction as the repair mechanism of one run.

    Periodic checkpoints are saved on schedule; every SLA failure episode
    (bursts deduplicated) triggers :meth:`PreparedRepairAction.repair` on
    the most degraded container and records the TTR breakdown.  Whether
    the repair takes the prepared or the classical path depends solely on
    whether a warning armed the spare beforehand.
    """
    system = sim.system
    state = {"last_repair": -np.inf}

    def checkpoints():
        while True:
            action.store.save(system.engine.now, tag="periodic")
            yield Timeout(checkpoint_interval)

    system.engine.process(checkpoints(), name="periodic-checkpoints")
    original_on_failure = system.sla.on_failure

    def on_failure(record) -> None:
        original_on_failure(record)
        if record.time - state["last_repair"] < burst_gap:
            return
        state["last_repair"] = record.time
        worst = max(
            system.containers,
            key=lambda c: c.swap_activity + c.corruption + c.degraded_fraction,
        )
        breakdowns.append(action.repair(system, worst.name, record.time))

    system.sla.on_failure = on_failure


def measure_repair_improvement(
    train_seed: int = 11,
    eval_seed: int = 21,
    horizon: float = 3 * 86_400.0,
    checkpoint_interval: float = 1_200.0,
    burst_gap: float = 900.0,
    variables: list[str] | None = None,
    config: DatasetConfig | None = None,
) -> TTRComparison:
    """Measure the Eq. 6 repair improvement factor ``k`` in closed loop.

    Two runs of the same faultload, both repairing failures through the
    checkpoint/spare machinery: in the PFM run warnings boot the spare and
    save fresh checkpoints ahead of failures (prepared path); the baseline
    run has no warnings, so every repair is classical.
    """
    variables = variables or DEFAULT_VARIABLES
    base_config = config or DatasetConfig()
    train_config = replace(base_config, seed=train_seed, horizon=horizon)
    eval_config = replace(base_config, seed=eval_seed, horizon=horizon)
    predictor, training_scores = train_predictor(train_config, variables)

    # Baseline: classical repairs only.
    classical_breakdowns: list[RepairBreakdown] = []
    baseline_sim = prepare_simulation(eval_config)
    _attach_repair_measurement(
        baseline_sim,
        PreparedRepairAction(),
        classical_breakdowns,
        checkpoint_interval,
        burst_gap,
    )
    baseline_sim.run()

    # PFM: the controller's only countermeasure is preparation, so the
    # fault process (and thus the failure set) stays comparable.
    prepared_breakdowns: list[RepairBreakdown] = []
    pfm_sim = prepare_simulation(eval_config)
    prepare_action = PreparedRepairAction()
    controller = PFMController(
        system=pfm_sim.system,
        predictor=predictor,
        variables=variables,
        lead_time=eval_config.lead_time,
        repertoire=[prepare_action],
    )
    controller.calibrate_confidence(training_scores)
    _attach_repair_measurement(
        pfm_sim, prepare_action, prepared_breakdowns, checkpoint_interval, burst_gap
    )
    controller.start()
    pfm_sim.run()

    return TTRComparison(
        prepared_repairs=prepared_breakdowns,
        classical_repairs=classical_breakdowns,
    )


def run_closed_loop(
    train_seed: int = 11,
    eval_seed: int = 21,
    horizon: float = 4 * 86_400.0,
    variables: list[str] | None = None,
    predictor: SymptomPredictor | None = None,
    config: DatasetConfig | None = None,
    trained: tuple[SymptomPredictor, np.ndarray] | None = None,
    telemetry=None,
    spec: RunSpec | None = None,
) -> ClosedLoopResult:
    """Train, then compare baseline vs PFM on an identical faultload.

    A :class:`~repro.fleet.spec.RunSpec` is the preferred way to describe
    the run: ``run_closed_loop(spec=RunSpec(seed=21, horizon=86_400.0))``
    resolves seeds, horizon, variables and the predictor (through
    :func:`repro.prediction.make_predictor`) from the spec; the legacy
    keyword arguments remain for existing callers and must not be mixed
    with a spec.

    Pass ``trained = (fitted_predictor, training_scores)`` to skip the
    training simulation (used by :func:`replicate_closed_loop`).  Pass a
    :class:`~repro.telemetry.hub.TelemetryHub` as ``telemetry`` to
    instrument the PFM run (spans, events and live quality gauges); the
    hub is finalized (pending predictions settled, ``run.end`` emitted)
    before this returns.
    """
    if spec is not None:
        seeds = spec.seeds()
        train_seed = seeds["train"]
        eval_seed = seeds["eval"]
        horizon = spec.horizon
        if spec.variables is not None:
            variables = list(spec.variables)
        if predictor is None and trained is None:
            predictor = make_predictor(
                spec.predictor,
                rng=np.random.default_rng(train_seed),
                **spec.params(),
            )
    variables = variables or DEFAULT_VARIABLES
    base_config = config or DatasetConfig()
    train_config = replace(base_config, seed=train_seed, horizon=horizon)
    eval_config = replace(base_config, seed=eval_seed, horizon=horizon)

    if trained is not None:
        predictor, training_scores = trained
    else:
        predictor, training_scores = train_predictor(
            train_config, variables, predictor
        )

    # Baseline run: same faultload, no PFM.
    baseline = prepare_simulation(eval_config).run()

    # PFM run: identical configuration and seed, controller attached.
    from repro.telemetry.hub import NULL_HUB

    hub = telemetry if telemetry is not None else NULL_HUB
    pfm_sim = prepare_simulation(eval_config)
    controller = PFMController(
        system=pfm_sim.system,
        predictor=predictor,
        variables=variables,
        lead_time=eval_config.lead_time,
        telemetry=hub,
    )
    controller.calibrate_confidence(training_scores)
    hub.emit(
        "run.start",
        train_seed=train_seed,
        eval_seed=eval_seed,
        horizon=horizon,
    )
    controller.start()
    pfm_dataset = pfm_sim.run()
    controller.finalize_telemetry()

    actions_by_name: dict[str, int] = {}
    for episode in controller.warnings:
        if episode.action:
            actions_by_name[episode.action] = actions_by_name.get(episode.action, 0) + 1

    return ClosedLoopResult(
        baseline_failures=len(baseline.failure_log),
        pfm_failures=len(pfm_dataset.failure_log),
        baseline_window_availability=baseline.system.sla.overall_availability(),
        pfm_window_availability=pfm_dataset.system.sla.overall_availability(),
        warnings_raised=controller.mea.warnings_raised,
        actions_taken=controller.mea.actions_taken,
        actions_by_name=actions_by_name,
        outcome_matrix=controller.outcome_matrix(),
        predictor_threshold=predictor.threshold,
        mea_iterations=len(controller.mea.history),
    )
