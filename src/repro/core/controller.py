"""The PFM controller: a trained predictor driving countermeasures.

Binds together, on a live (simulated) SCP:

- **Monitor**: reads the system gauges into a feature vector,
- **Evaluate**: scores the vector with a trained symptom predictor and
  identifies the most suspect container,
- **Act**: picks the most effective applicable countermeasure via the
  objective function and executes it (optionally deferred to low load).

The controller also keeps the bookkeeping needed to reconstruct the
paper's Table 1 after the run: every evaluation is a prediction point that
can be classified TP/FP/TN/FN against the failure log.

The MEA wiring is hardened by the :mod:`repro.resilience` layer:

- gauge reads pass through a :class:`GaugeSanitizer` (NaN / stuck / stale
  detection with last-known-good substitution),
- scoring goes through a :class:`FallbackPredictor` so a repeatedly
  faulting primary fails over to a secondary model instead of silencing
  the Evaluate step,
- every action runs behind a per-action :class:`CircuitBreaker`, and an
  executed action that reports failure escalates the target along a
  cleanup -> failover -> restart :class:`EscalationChain`,
- step exceptions become :class:`~repro.core.mea.StepFailure` records via
  the cycle's retry/backoff machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.actions.base import Action, ActionOutcome
from repro.actions.cleanup import StateCleanupAction
from repro.actions.failover import PreventiveFailoverAction
from repro.actions.load import LowerLoadAction, RestoreLoadAction
from repro.actions.restart import PreventiveRestartAction
from repro.actions.selection import ActionSelector, SelectionContext
from repro.core.mea import EvaluationResult, MEACycle
from repro.errors import ConfigurationError
from repro.prediction.base import SymptomPredictor
from repro.prediction.calibration import PlattScaling
from repro.prediction.online import OnlineEventScorer
from repro.resilience.escalation import EscalationChain
from repro.resilience.fallback import FallbackPredictor
from repro.resilience.policies import CircuitBreaker, RetryPolicy, StepTimeout
from repro.resilience.sanitizer import GaugeSanitizer
from repro.telecom.system import SCPSystem
from repro.telemetry import events as tel_events
from repro.telemetry.hub import NULL_HUB, TelemetryHub
from repro.telemetry.rolling import RollingQualityTracker


def default_repertoire() -> list[Action]:
    """A sensible countermeasure mix covering both Fig. 7 goals."""
    return [
        StateCleanupAction(),
        PreventiveFailoverAction(fraction=0.8),
        LowerLoadAction(min_admission=0.5),
        PreventiveRestartAction(restart_duration=45.0),
    ]


@dataclass
class WarningEpisode:
    """A raised warning and what was done about it."""

    time: float
    score: float
    confidence: float
    target: str
    action: str | None


@dataclass
class PFMController:
    """Online PFM on a running SCP simulation."""

    system: SCPSystem
    predictor: SymptomPredictor
    variables: list[str]
    lead_time: float = 300.0
    eval_period: float = 30.0
    repertoire: list[Action] = field(default_factory=default_repertoire)
    failure_cost: float = 12.0
    cooldown: float = 120.0
    event_scorer: OnlineEventScorer | None = None
    warnings: list[WarningEpisode] = field(default_factory=list)
    evaluations: list[tuple[float, float, bool]] = field(default_factory=list)
    # --- resilience layer ---------------------------------------------
    fallback_predictor: SymptomPredictor | None = None
    fallback_confidence: float = 0.7
    sanitizer: GaugeSanitizer | None = None
    escalation: EscalationChain | None = None
    retry: RetryPolicy | None = field(default_factory=RetryPolicy)
    step_timeouts: dict[str, float] = field(default_factory=dict)
    evaluate_latency_budget: float | None = None
    breaker_failure_threshold: int = 3
    breaker_cooldown: float = 600.0
    predictor_fault_threshold: int = 3
    predictor_retry_cooldown: float = 1_800.0
    action_outcomes: list[ActionOutcome] = field(default_factory=list)
    # --- criticality-aware arbitration --------------------------------
    #: Per-target service criticality in [0, 1]; unnamed targets get
    #: ``default_criticality``.  Scales the Act objective's expected
    #: benefit, so the same confidence clears the actuation bar sooner
    #: for critical services (criticality-weighted risk, Sect. 6).
    target_criticality: dict[str, float] = field(default_factory=dict)
    default_criticality: float = 1.0
    #: Event-window length fed to a fused panel's event members when the
    #: predictor (e.g. a Noisy-OR arbitrator) asks for a live error
    #: window; matches DatasetConfig.data_window's default.
    data_window: float = 1_800.0
    max_window_events: int = 200
    # --- telemetry ----------------------------------------------------
    telemetry: TelemetryHub = NULL_HUB
    rolling_window: int | None = 200

    def __post_init__(self) -> None:
        if not self.variables:
            raise ConfigurationError("need at least one monitored variable")
        self._gauges = {g.variable: g for g in self.system.all_gauges()}
        missing = [v for v in self.variables if v not in self._gauges]
        if missing:
            raise ConfigurationError(f"unknown gauges: {missing}")
        self.selector = ActionSelector(list(self.repertoire))
        self._restore_load = RestoreLoadAction()
        self._throttled = False
        self._last_action_time = -np.inf
        self._last_warning_time = -np.inf
        self._score_scale: tuple[float, float] | None = None
        self._calibrator: PlattScaling | None = None
        if self.sanitizer is None:
            self.sanitizer = GaugeSanitizer()
        if self.escalation is None:
            self.escalation = EscalationChain()
        #: Perturbation hooks ``(variable, value) -> value`` applied to raw
        #: gauge reads *before* sanitization -- the seam PFM-layer fault
        #: injectors attack (monitoring dropouts, corrupted observations).
        self.observation_taps: list = []
        self.breakers: dict[str, CircuitBreaker] = {}
        # The evaluate latency budget defaults to the lead time: a score
        # that arrives after the failure it predicts is worthless.
        if self.evaluate_latency_budget is None:
            self.evaluate_latency_budget = self.lead_time
        # Wire the hub through every instrumented collaborator; the
        # simulated clock comes from the engine so every event/span is
        # keyed by sim time (first binding wins if the caller pre-bound).
        self.telemetry.bind_clock(lambda: self.system.engine.now)
        self.sanitizer.telemetry = self.telemetry
        # Online prediction quality (paper Sect. 3.3 metrics as live
        # gauges): a prediction at t resolves once now >= t + 2*lead_time,
        # matching outcome_matrix()'s imminence window.
        self.quality = RollingQualityTracker(
            horizon=2 * self.lead_time,
            window=self.rolling_window,
            telemetry=self.telemetry,
        )
        # Predictors that support profiling spans (hsmm.score_batch etc.)
        # get the same hub so the hot path shows up in the span profile.
        if hasattr(self.predictor, "telemetry"):
            self.predictor.telemetry = self.telemetry
        if self.event_scorer is not None and hasattr(
            self.event_scorer.predictor, "telemetry"
        ):
            self.event_scorer.predictor.telemetry = self.telemetry
        # A fused panel (Noisy-OR arbitrator) may sit behind wrapper
        # layers (fault-injection proxies, adapters); find the innermost
        # object that owns the arbitration seams and wire them up.  The
        # walk uses each object's own __dict__ so delegating __getattr__
        # proxies are traversed rather than mistaken for the arbitrator.
        self._arbitrator = None
        target, hops = self.predictor, 0
        while target is not None and hops < 8:
            owned = vars(target) if hasattr(target, "__dict__") else {}
            if "live_window" in owned:
                self._arbitrator = target
                target.live_window = self._live_windows
                if hasattr(target, "telemetry"):
                    target.telemetry = self.telemetry
                break
            target = owned.get("inner")
            hops += 1
        self.scoring = FallbackPredictor(
            primary=self.predictor,
            secondary=self.fallback_predictor,
            clock=lambda: self.system.engine.now,
            failure_threshold=self.predictor_fault_threshold,
            cooldown=self.predictor_retry_cooldown,
            latency_budget=self.evaluate_latency_budget,
            telemetry=self.telemetry,
        )
        self.mea = MEACycle(
            engine=self.system.engine,
            monitor=self._monitor,
            evaluate=self._evaluate,
            act=self._act,
            period=self.eval_period,
            retry=self.retry,
            timeouts={
                step: StepTimeout(budget)
                for step, budget in self.step_timeouts.items()
            },
            step_latency=self._step_latency,
            telemetry=self.telemetry,
        )

    # ------------------------------------------------------------------
    # MEA steps
    # ------------------------------------------------------------------

    def _breaker(self, action_name: str) -> CircuitBreaker:
        breaker = self.breakers.get(action_name)
        if breaker is None:
            breaker = CircuitBreaker(
                name=action_name,
                failure_threshold=self.breaker_failure_threshold,
                cooldown=self.breaker_cooldown,
                on_transition=self._breaker_transition,
            )
            self.breakers[action_name] = breaker
        return breaker

    def _breaker_transition(
        self, name: str, old: str, new: str, now: float
    ) -> None:
        self.telemetry.emit(
            tel_events.BREAKER_TRANSITION, breaker=name, from_state=old, to=new
        )
        self.telemetry.counter(
            "breaker_transitions_total", breaker=name, to=new
        ).inc()

    def _step_latency(self, step: str) -> float:
        """Declared simulated latency of the upcoming step (for timeouts)."""
        if step == "evaluate":
            return float(getattr(self.predictor, "simulated_latency", 0.0) or 0.0)
        return 0.0

    def _read_variable(self, variable: str) -> float:
        def raw() -> float:
            value = float(self._gauges[variable].read())
            for tap in self.observation_taps:
                value = tap(variable, value)
            return value

        return self.sanitizer.read(variable, raw).value

    def _monitor(self) -> np.ndarray:
        return np.array([self._read_variable(v) for v in self.variables])

    def _live_windows(self, n: int) -> list:
        """``n`` copies of the error window ending now (arbitration seam).

        Mirrors :meth:`OnlineEventScorer.window_at`, so a panel's event
        members see exactly the window shape they were calibrated on.
        """
        from repro.monitoring.records import EventSequence

        now = self.system.engine.now
        records = self.system.error_log.window(now - self.data_window, now)[
            -self.max_window_events :
        ]
        window = EventSequence(
            times=[r.time for r in records],
            message_ids=[r.message_id for r in records],
            origin=now - self.data_window,
        )
        return [window] * n

    def calibrate_confidence(
        self,
        training_scores: np.ndarray,
        training_labels: np.ndarray | None = None,
    ) -> None:
        """Learn a score -> confidence mapping from training data.

        With labels, fits Platt scaling so confidence is a calibrated
        failure probability; without labels, falls back to the score's
        position between the threshold and the training maximum.
        """
        scores = np.asarray(training_scores, dtype=float)
        if scores.size == 0:
            raise ConfigurationError(
                "calibrate_confidence needs at least one training score"
            )
        if training_labels is not None:
            labels = np.asarray(training_labels, dtype=bool)
            if labels.any() and not labels.all():
                self._calibrator = PlattScaling().fit(scores, labels)
                return
        self._score_scale = (self.predictor.threshold, float(scores.max()))

    def _confidence(self, score: float) -> float:
        # A fused arbitration score already IS a calibrated probability;
        # re-mapping it through Platt/scale would double-calibrate.
        source = self._arbitrator if self._arbitrator is not None else self.predictor
        if getattr(source, "scores_are_probabilities", False):
            return float(np.clip(score, 0.0, 1.0))
        if self._calibrator is not None:
            return self._calibrator(score)
        if self._score_scale is None:
            return 1.0 if score >= self.predictor.threshold else 0.0
        low, high = self._score_scale
        if high <= low:
            return 1.0 if score >= low else 0.0
        return float(np.clip((score - low) / (high - low), 0.0, 1.0))

    def _suspect(self) -> str:
        """The most degraded container (simple diagnosis step)."""

        def badness(component) -> float:
            return (
                component.swap_activity * 3.0
                + component.corruption
                + component.degraded_fraction * 2.0
                + max(component.utilization - 0.5, 0.0)
            )

        return max(self.system.containers, key=badness).name

    def _evaluate(self, observation: np.ndarray) -> EvaluationResult:
        result = self.scoring.score(observation)
        score, warning = result.score, result.warning
        if result.source == "primary":
            confidence = self._confidence(score)
        elif result.source == "secondary":
            # Secondary scores live on a different scale than the
            # calibrated primary; use a fixed moderate confidence.
            confidence = self.fallback_confidence
        else:
            confidence = 0.0
        # Multi-source fusion (blueprint, Sect. 6): an event-based
        # predictor over the live error log can raise the warning too;
        # confidences combine as max (either source suffices to act).
        if self.event_scorer is not None:
            event_prediction = self.event_scorer.score_at(
                self.system.error_log, self.system.engine.now
            )
            if event_prediction.warning:
                warning = True
                confidence = max(confidence, 0.8)
        now = self.system.engine.now
        self.evaluations.append((now, score, warning))
        self.quality.record(now, warning)
        self.quality.resolve(now, self.system.failure_log.failure_times())
        # Per-member attribution makes a fused warning explainable: emit
        # who owns how much of the crossed risk alongside the episode.
        attribution = getattr(self._arbitrator, "last_attribution", None)
        if warning and attribution is not None and result.source == "primary":
            self.telemetry.emit(
                tel_events.ARBITRATION_ATTRIBUTION,
                fused=attribution.fused,
                leak_share=attribution.leak_share,
                member_shares=dict(attribution.member_shares),
            )
            self.telemetry.counter("arbitration_warnings_total").inc()
        # Diagnosis is a full pass over all containers -- only pay for it
        # when a warning actually needs a target.
        target = self._suspect() if warning else ""
        return EvaluationResult(
            score=score,
            warning=warning,
            confidence=confidence,
            target=target,
        )

    def _choose_action(self, now: float, context: SelectionContext) -> Action | None:
        """Pick the countermeasure: escalation chain first, then utility.

        A target with a pending escalation (a previous action against it
        reported failure) walks the cleanup -> failover -> restart ladder
        from its current level, skipping circuit-broken or inapplicable
        levels; otherwise the objective function ranks the repertoire,
        with open-breaker actions excluded from consideration.
        """
        for action in self.escalation.candidates(context.target, now):
            if not self._breaker(action.name).allow(now):
                continue
            if action.applicable(self.system, context.target):
                return action
        excluded = {
            action.name
            for action in self.selector.repertoire
            if not self._breaker(action.name).allow(now)
        }
        return self.selector.select(self.system, context, exclude=excluded)

    def _act(self, evaluation: EvaluationResult) -> str | None:
        now = self.system.engine.now
        self._last_warning_time = now
        if now - self._last_action_time < self.cooldown:
            # Still a raised warning: record the episode (with no action)
            # so outcome_matrix() sees every acted-upon evaluation and
            # maybe_restore_load() sees fresh warning times during the
            # cooldown window.
            episode = WarningEpisode(
                time=now,
                score=evaluation.score,
                confidence=evaluation.confidence,
                target=evaluation.target,
                action=None,
            )
            self.warnings.append(episode)
            self.telemetry.emit(
                tel_events.COOLDOWN_SUPPRESSED,
                target=evaluation.target,
                since_last_action=now - self._last_action_time,
            )
            self.telemetry.counter("pfm_cooldown_suppressed_total").inc()
            self._emit_episode(episode)
            return None
        context = SelectionContext(
            confidence=evaluation.confidence,
            target=evaluation.target,
            failure_cost=self.failure_cost,
            criticality=self.target_criticality.get(
                evaluation.target, self.default_criticality
            ),
        )
        action = self._choose_action(now, context)
        name = None
        if action is not None:
            name = action.name
            inner = getattr(action, "inner", action)
            if isinstance(inner, LowerLoadAction):
                action.set_confidence(evaluation.confidence)
                self._throttled = True
            try:
                outcome = action.execute(self.system, evaluation.target)
            except Exception as exc:  # broad by design - degrade, don't die
                self.mea.note_failure("act", exc)
                outcome = ActionOutcome(
                    action=name,
                    target=evaluation.target,
                    time=now,
                    success=False,
                    details={"error": repr(exc)},
                )
            self.action_outcomes.append(outcome)
            self._last_action_time = now
            breaker = self._breaker(name)
            if outcome.success:
                breaker.record_success(now)
                self.escalation.record_success(evaluation.target, now)
            else:
                breaker.record_failure(now)
                self.escalation.record_failure(evaluation.target, now)
                self.telemetry.emit(
                    tel_events.ESCALATION,
                    target=evaluation.target,
                    action=name,
                    level=self.escalation.level(evaluation.target, now),
                )
                self.telemetry.counter("pfm_escalations_total").inc()
        episode = WarningEpisode(
            time=now,
            score=evaluation.score,
            confidence=evaluation.confidence,
            target=evaluation.target,
            action=name,
        )
        self.warnings.append(episode)
        self._emit_episode(episode)
        return name

    def _emit_episode(self, episode: WarningEpisode) -> None:
        self.telemetry.emit(
            tel_events.WARNING_EPISODE,
            score=episode.score,
            confidence=episode.confidence,
            target=episode.target,
            action=episode.action,
        )
        self.telemetry.counter(
            "pfm_warning_episodes_total",
            acted="yes" if episode.action else "no",
        ).inc()

    def maybe_restore_load(self) -> None:
        """Lift admission control once no warning has fired recently."""
        if not self._throttled:
            return
        now = self.system.engine.now
        if now - self._last_warning_time >= 2 * self.lead_time:
            self._restore_load.execute(self.system, "scp")
            self._throttled = False

    def start(self) -> None:
        """Begin the MEA cycle plus the load-restoration housekeeping."""
        self.mea.start()
        self.system.engine.process(self._housekeeping(), name="pfm-housekeeping")

    def _housekeeping(self):
        from repro.simulator.events import Timeout

        while self.mea.running:
            self.maybe_restore_load()
            yield Timeout(self.eval_period * 4)

    # ------------------------------------------------------------------
    # Telemetry finalization
    # ------------------------------------------------------------------

    def finalize_telemetry(self) -> None:
        """Settle pending quality predictions against the final failure log.

        Call once after the simulation finishes: predictions whose
        resolution horizon extends past the end of the run are settled
        against the complete failure log (no failure recorded => TN/FN by
        the same rule as :meth:`outcome_matrix`), and a ``run.end`` event
        closes the trace.
        """
        self.quality.flush(self.system.failure_log.failure_times())
        self.telemetry.emit(
            tel_events.RUN_END,
            cycles=len(self.mea.history),
            warnings=len(self.warnings),
            **{k: int(v) for k, v in self.quality.counts.items()},
        )

    # ------------------------------------------------------------------
    # Resilience introspection
    # ------------------------------------------------------------------

    def open_breakers(self) -> list[str]:
        """Names of actions whose circuit breaker is currently open."""
        from repro.resilience.policies import BreakerState

        return sorted(
            name
            for name, breaker in self.breakers.items()
            if breaker.state is BreakerState.OPEN
        )

    def resilience_summary(self) -> dict:
        """One dict of everything the resilience layer absorbed this run."""
        return {
            "step_failures": self.mea.failures_by_step(),
            "degraded_iterations": self.mea.degraded_iterations,
            "sanitizer_events": {
                var: dict(reasons) for var, reasons in self.sanitizer.events.items()
            },
            "stale_variables": self.sanitizer.stale_variables(),
            "predictor_faults": self.scoring.primary_faults,
            "fallback_scores": self.scoring.secondary_scores,
            "null_scores": self.scoring.null_scores,
            "breaker_opens": sum(b.times_opened for b in self.breakers.values()),
            "open_breakers": self.open_breakers(),
            "calls_rejected": sum(b.calls_rejected for b in self.breakers.values()),
            "escalations": self.escalation.escalations,
            "failed_actions": sum(
                1 for outcome in self.action_outcomes if not outcome.success
            ),
        }

    # ------------------------------------------------------------------
    # Post-hoc accounting (Table 1)
    # ------------------------------------------------------------------

    def outcome_matrix(self) -> dict[str, dict[str, int]]:
        """Classify every evaluation against the failure log.

        Returns ``{outcome: {"count": n, "acted": m}}`` for outcomes
        TP / FP / TN / FN, where a prediction at time ``t`` is positive if
        a warning fired and the truth is "a failure starts within
        ``[t, t + 2 * lead_time]``".
        """
        failure_times = np.asarray(self.system.failure_log.failure_times())
        acted_times = {
            round(episode.time, 6) for episode in self.warnings if episode.action
        }
        matrix = {
            key: {"count": 0, "acted": 0} for key in ("TP", "FP", "TN", "FN")
        }
        for time, _score, warning in self.evaluations:
            imminent = bool(
                failure_times.size
                and np.any(
                    (failure_times >= time)
                    & (failure_times <= time + 2 * self.lead_time)
                )
            )
            if warning and imminent:
                key = "TP"
            elif warning:
                key = "FP"
            elif imminent:
                key = "FN"
            else:
                key = "TN"
            matrix[key]["count"] += 1
            if round(time, 6) in acted_times:
                matrix[key]["acted"] += 1
        return matrix
