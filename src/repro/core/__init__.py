"""The PFM architecture (paper Sects. 2 and 6).

- :mod:`~repro.core.mea` -- the Monitor-Evaluate-Act cycle engine,
- :mod:`~repro.core.controller` -- a PFM controller binding a trained
  predictor and a countermeasure repertoire to the running SCP,
- :mod:`~repro.core.blueprint` -- the Fig. 11 multi-layer architecture
  with per-layer predictors and a meta-learning combiner,
- :mod:`~repro.core.experiment` -- closed-loop experiments measuring the
  effect of PFM on the simulated system (Table 1 behaviour, availability
  improvement, TTR).
"""

from repro.core.blueprint import BlueprintArchitecture, Layer, LayerPredictor
from repro.core.controller import PFMController
from repro.core.experiment import (
    ClosedLoopResult,
    ReplicatedResult,
    TTRComparison,
    measure_repair_improvement,
    replicate_closed_loop,
    run_closed_loop,
)
from repro.core.mea import EvaluationResult, MEACycle, MEARecord, StepFailure
from repro.core.translucency import LayerInsight, TranslucencyReport

__all__ = [
    "BlueprintArchitecture",
    "Layer",
    "LayerPredictor",
    "PFMController",
    "ClosedLoopResult",
    "ReplicatedResult",
    "TTRComparison",
    "measure_repair_improvement",
    "replicate_closed_loop",
    "run_closed_loop",
    "EvaluationResult",
    "MEACycle",
    "MEARecord",
    "StepFailure",
    "LayerInsight",
    "TranslucencyReport",
]
