"""The architectural blueprint (paper Sect. 6, Fig. 11).

"We propose to have separate failure predictors for each system layer ...
[and] to have the 'Act' component of the MEA cycle span all system
layers: It incorporates the predictions of its level predictors in order
to select the most appropriate countermeasure ... we propose to apply
techniques known as meta-learning [stacked generalization]."

:class:`BlueprintArchitecture` holds one predictor per layer, each looking
only at its layer's variables, plus a stacked-generalization combiner
producing the system-level failure-proneness score for the cross-layer
Act component.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, NotFittedError
from repro.prediction.base import SymptomPredictor
from repro.prediction.meta import StackedGeneralization


class Layer(enum.Enum):
    """System layers of the Fig. 11 stack."""

    HARDWARE = "hardware"
    VMM = "vmm"
    OS = "os"
    MIDDLEWARE = "middleware"
    APPLICATION = "application"


@dataclass
class LayerPredictor:
    """One layer's predictor with its variable subset."""

    layer: Layer
    predictor: SymptomPredictor
    variable_indices: list[int]

    def scores(self, x: np.ndarray) -> np.ndarray:
        """This layer's failure-proneness scores on its variable subset."""
        return self.predictor.score_samples(
            np.atleast_2d(x)[:, self.variable_indices]
        )


class BlueprintArchitecture:
    """Per-layer predictors combined by stacked generalization."""

    def __init__(self, layers: list[LayerPredictor]) -> None:
        if not layers:
            raise ConfigurationError("need at least one layer predictor")
        seen = set()
        for layer in layers:
            if layer.layer in seen:
                raise ConfigurationError(f"duplicate layer {layer.layer}")
            seen.add(layer.layer)
        self.layers = layers
        self.combiner = StackedGeneralization(
            predictor_names=[lp.layer.value for lp in layers]
        )
        self._fitted = False

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        labels: np.ndarray,
        holdout_fraction: float = 0.5,
    ) -> "BlueprintArchitecture":
        """Train layer predictors, then the combiner on held-out scores.

        The training period is split chronologically: the first part fits
        the level-0 layer predictors, the second produces their
        out-of-sample scores on which the level-1 combiner is trained
        (the standard stacking discipline).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        labels = np.asarray(labels, dtype=bool).ravel()
        if not 0 < holdout_fraction < 1:
            raise ConfigurationError("holdout_fraction must be in (0, 1)")
        cut = int((1.0 - holdout_fraction) * x.shape[0])
        if cut < 1 or cut >= x.shape[0]:
            raise ConfigurationError("training set too small to split for stacking")
        for layer in self.layers:
            layer.predictor.fit_samples(x[:cut, layer.variable_indices], y[:cut])
        holdout_scores = self.layer_scores(x[cut:])
        self.combiner.fit(holdout_scores, labels[cut:])
        self._fitted = True
        return self

    def layer_scores(self, x: np.ndarray) -> np.ndarray:
        """Level-0 score matrix: one column per layer."""
        return np.column_stack([layer.scores(x) for layer in self.layers])

    def score_samples(self, x: np.ndarray) -> np.ndarray:
        """System-level fused failure probability."""
        if not self._fitted:
            raise NotFittedError("BlueprintArchitecture has not been fitted")
        return self.combiner.score(self.layer_scores(x))

    def layer_report(self) -> dict[str, float]:
        """Learned combiner weight per layer (translucency aid)."""
        return self.combiner.weights()
