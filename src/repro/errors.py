"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still being able to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class ModelError(ReproError):
    """Raised for structurally invalid stochastic models."""


class NotFittedError(ReproError):
    """Raised when a predictor is used before it has been trained."""


class ConvergenceError(ReproError):
    """Raised when an iterative fitting procedure fails to converge."""


class ConfigurationError(ReproError):
    """Raised for invalid user-supplied configuration values."""


class ActionError(ReproError):
    """Raised when a countermeasure cannot be applied."""


class ActionExecutionError(ActionError):
    """Raised when a countermeasure dies mid-execution."""


class PFMFaultError(ReproError):
    """Raised by injected faults attacking the PFM stack itself."""
