"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the library may raise with a single ``except`` clause while
still being able to discriminate by subsystem.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class ModelError(ReproError):
    """Raised for structurally invalid stochastic models."""


class NotFittedError(ReproError):
    """Raised when a predictor is used before it has been trained."""


class ConvergenceError(ReproError):
    """Raised when an iterative fitting procedure fails to converge."""


class ConfigurationError(ReproError):
    """Raised for invalid user-supplied configuration values."""


class ActionError(ReproError):
    """Raised when a countermeasure cannot be applied."""


class ActionExecutionError(ActionError):
    """Raised when a countermeasure dies mid-execution."""


class PFMFaultError(ReproError):
    """Raised by injected faults attacking the PFM stack itself."""


class WorkerCrashError(ReproError):
    """A fleet worker died (or simulated dying) instead of returning.

    Raised by the chaos harness when a hard ``os._exit`` would take down
    the calling process itself (the serial backend runs shards in the
    parent), and usable by custom executors to report a lost worker.
    Always classified as an *infrastructure* failure: the shard did not
    fail, the machinery under it did, so the supervisor retries it."""


class FleetExecutionError(ReproError):
    """One or more fleet shards failed deterministically.

    Unlike an infrastructure failure (worker death, broken pool, torn
    artifact read — which the supervisor retries), a deterministic
    failure is the shard's own code raising: re-running it reproduces
    the same exception.  ``run_fleet`` finishes checkpointing every
    completed shard, then raises this with *every* failure attached —
    ``failures`` is a spec-key-sorted list of
    ``{"key", "error", "source"}`` dicts (``source`` is ``"run"`` for
    failures observed this run, ``"ledger"`` for known failures resumed
    past), and ``causes`` holds the live exception objects where one
    exists.  The first live cause is chained as ``__cause__``."""

    def __init__(self, message: str, failures: list | None = None,
                 causes: list | None = None) -> None:
        super().__init__(message)
        self.failures = failures or []
        self.causes = causes or []


class ReproWarning(UserWarning):
    """Base class for all warnings emitted by the repro library."""


class FleetConfigWarning(ReproWarning):
    """A fleet configuration value is accepted but has no effect."""


class LedgerRoundTripWarning(ReproWarning):
    """A ledger line will not survive resume (spec key mismatch on re-parse).

    The shard completed and its line was written, but the spec's options
    do not JSON-round-trip, so on resume the tolerant reader will drop
    the line and the shard will re-run — work is burned, not lost."""


class ArtifactStoreWarning(ReproWarning):
    """A trained-model artifact was unreadable and will be re-trained."""
