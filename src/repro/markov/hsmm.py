"""Hidden semi-Markov models with explicit state durations.

This is the pattern-recognition engine behind the paper's HSMM failure
predictor (Sect. 3.2): error sequences are mapped to discrete-time symbol
sequences and scored by sequence log-likelihood under two trained models
(failure vs. non-failure).

The implementation is an explicit-duration ("segment") HSMM:

- hidden states do not self-transition; instead each visit to state ``j``
  lasts ``d`` time slots with probability ``p_j(d)`` given by a pluggable
  :class:`~repro.markov.distributions.DiscreteDuration`,
- one observation symbol is emitted per time slot from the state's
  categorical emission distribution.

Inference (forward likelihood, Viterbi segmentation) runs in log space in
``O(T * N^2 * D)``.  Two trainers are provided:

- segmental hard-EM (Viterbi re-estimation) -- fast and robust, the
  default for the short error sequences the predictor operates on;
- full Baum-Welch soft EM over segment posteriors (``algorithm="soft"``)
  -- the textbook explicit-duration HSMM re-estimation, monotone in true
  sequence likelihood.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy.special import logsumexp

from repro.errors import ModelError, NotFittedError
from repro.markov.distributions import DiscreteDuration, EmpiricalDuration

_EPS = 1e-12
_LOG_EPS = np.log(_EPS)


@dataclass(frozen=True)
class Segment:
    """A maximal run of one hidden state in a Viterbi segmentation."""

    state: int
    start: int  # inclusive slot index
    end: int  # inclusive slot index

    @property
    def duration(self) -> int:
        return self.end - self.start + 1


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    matrix = np.clip(matrix, 0.0, None)
    sums = matrix.sum(axis=1, keepdims=True)
    sums[sums <= 0] = 1.0
    return matrix / sums


class HiddenSemiMarkovModel:
    """Explicit-duration HSMM over a discrete observation alphabet.

    Parameters
    ----------
    n_states:
        Number of hidden states.
    n_symbols:
        Observation alphabet size.
    max_duration:
        Longest representable state duration (in time slots).
    duration_factory:
        Callable producing a fresh duration distribution per state;
        defaults to nonparametric :class:`EmpiricalDuration`.
    rng:
        Generator for random initialization and sampling.
    """

    def __init__(
        self,
        n_states: int,
        n_symbols: int,
        max_duration: int = 10,
        duration_factory: Callable[[int], DiscreteDuration] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_states < 1 or n_symbols < 1:
            raise ModelError("need at least one state and one symbol")
        self.n_states = int(n_states)
        self.n_symbols = int(n_symbols)
        self.max_duration = int(max_duration)
        rng = rng or np.random.default_rng(0)
        factory = duration_factory or (lambda d: EmpiricalDuration(d))
        self._duration_factory = factory
        self.initial = np.full(n_states, 1.0 / n_states)
        transition = rng.random((n_states, n_states)) + 0.5
        if n_states > 1:
            np.fill_diagonal(transition, 0.0)
        self.transition = _normalize_rows(transition)
        self.emission = _normalize_rows(rng.random((n_states, n_symbols)) + 0.5)
        self.durations: list[DiscreteDuration] = [
            factory(self.max_duration) for _ in range(n_states)
        ]
        self._fitted = False

    # ------------------------------------------------------------------
    # Log-space helpers
    # ------------------------------------------------------------------

    def _check_sequence(self, sequence: Sequence[int]) -> np.ndarray:
        obs = np.asarray(sequence, dtype=int)
        if obs.ndim != 1 or obs.size == 0:
            raise ModelError("sequence must be a non-empty 1-D array of symbols")
        if obs.min() < 0 or obs.max() >= self.n_symbols:
            raise ModelError("sequence contains symbols outside the alphabet")
        return obs

    def _log_params(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        log_pi = np.log(self.initial + _EPS)
        log_a = np.log(self.transition + _EPS)
        log_b = np.log(self.emission + _EPS)
        log_d = np.log(
            np.vstack([dist.pmf() for dist in self.durations]) + _EPS
        )  # (n_states, max_duration)
        return log_pi, log_a, log_b, log_d

    def _segment_emissions(self, obs: np.ndarray, log_b: np.ndarray) -> np.ndarray:
        """Cumulative per-state emission log-probs.

        ``cum[t, j]`` is the log-probability that state ``j`` emitted
        ``obs[0..t]``; segment scores are differences of this array.
        """
        step = log_b[:, obs].T  # (T, n_states)
        return np.cumsum(step, axis=0)

    def _forward_table(self, obs: np.ndarray) -> np.ndarray:
        """Log forward table: ``alpha[t, j]`` = log P(obs[0..t], segment of
        state ``j`` ends exactly at slot ``t``)."""
        log_pi, log_a, log_b, log_d = self._log_params()
        n = obs.size
        cum = self._segment_emissions(obs, log_b)
        alpha = np.full((n, self.n_states), -np.inf)
        for t in range(n):
            d_max = min(self.max_duration, t + 1)
            # Contributions for each admissible duration d (vectorized over states).
            terms = np.full((d_max, self.n_states), -np.inf)
            for d in range(1, d_max + 1):
                start = t - d + 1
                emis = cum[t] - (cum[start - 1] if start > 0 else 0.0)
                dur = log_d[:, d - 1]
                if start == 0:
                    terms[d - 1] = log_pi + dur + emis
                else:
                    prev = logsumexp(
                        alpha[start - 1][:, None] + log_a, axis=0
                    )  # (n_states,)
                    terms[d - 1] = prev + dur + emis
            alpha[t] = logsumexp(terms, axis=0)
        return alpha

    def _backward_table(self, obs: np.ndarray) -> np.ndarray:
        """Log backward table: ``beta[t, j]`` = log P(obs[t+1..] | a segment
        of state ``j`` ends exactly at slot ``t``)."""
        _, log_a, log_b, log_d = self._log_params()
        n = obs.size
        cum = self._segment_emissions(obs, log_b)
        beta = np.full((n, self.n_states), -np.inf)
        beta[n - 1] = 0.0
        for t in range(n - 2, -1, -1):
            # eta[j'] = log P(a segment of j' starts at t+1 and the rest
            # of the sequence follows).
            d_max = min(self.max_duration, n - 1 - t)
            terms = np.full((d_max, self.n_states), -np.inf)
            for d in range(1, d_max + 1):
                end = t + d
                emis = cum[end] - cum[t]
                terms[d - 1] = log_d[:, d - 1] + emis + beta[end]
            eta = logsumexp(terms, axis=0)  # (n_states,)
            beta[t] = logsumexp(log_a + eta[None, :], axis=1)
        return beta

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def log_likelihood(self, sequence: Sequence[int]) -> float:
        """Log-probability that the model generated ``sequence``.

        A segment boundary is assumed at the end of the sequence (the
        standard right-boundary convention for segment models).
        """
        obs = self._check_sequence(sequence)
        alpha = self._forward_table(obs)
        return float(logsumexp(alpha[-1]))

    def viterbi(self, sequence: Sequence[int]) -> list[Segment]:
        """Most likely segmentation of ``sequence`` into state runs."""
        obs = self._check_sequence(sequence)
        log_pi, log_a, log_b, log_d = self._log_params()
        n = obs.size
        cum = self._segment_emissions(obs, log_b)
        delta = np.full((n, self.n_states), -np.inf)
        best_dur = np.zeros((n, self.n_states), dtype=int)
        best_prev = np.full((n, self.n_states), -1, dtype=int)
        for t in range(n):
            d_max = min(self.max_duration, t + 1)
            for d in range(1, d_max + 1):
                start = t - d + 1
                emis = cum[t] - (cum[start - 1] if start > 0 else 0.0)
                dur = log_d[:, d - 1]
                if start == 0:
                    scores = log_pi + dur + emis
                    prev_state = np.full(self.n_states, -1, dtype=int)
                else:
                    candidates = delta[start - 1][:, None] + log_a
                    prev_state = np.argmax(candidates, axis=0)
                    scores = (
                        candidates[prev_state, np.arange(self.n_states)] + dur + emis
                    )
                better = scores > delta[t]
                delta[t][better] = scores[better]
                best_dur[t][better] = d
                best_prev[t][better] = prev_state[better]
        # Backtrack.
        segments: list[Segment] = []
        t = n - 1
        state = int(np.argmax(delta[t]))
        while t >= 0:
            d = int(best_dur[t, state])
            if d <= 0:
                raise ModelError("Viterbi backtrack failed (zero duration)")
            segments.append(Segment(state=state, start=t - d + 1, end=t))
            prev = int(best_prev[t, state])
            t -= d
            state = prev
        segments.reverse()
        return segments

    # ------------------------------------------------------------------
    # Training (segmental hard-EM)
    # ------------------------------------------------------------------

    def fit(
        self,
        sequences: Sequence[Sequence[int]],
        max_iter: int = 20,
        tol: float = 1e-4,
        pseudocount: float = 0.05,
        n_restarts: int = 1,
        restart_rng: np.random.Generator | None = None,
        algorithm: str = "hard",
    ) -> list[float]:
        """Train the model; returns the per-iteration score trace.

        ``algorithm="hard"`` runs segmental hard-EM (Viterbi
        re-estimation; the trace is the total Viterbi-path score);
        ``algorithm="soft"`` runs full Baum-Welch over segment posteriors
        (the trace is the true total log-likelihood, non-decreasing).
        Both converge to local optima, so ``n_restarts > 1`` re-randomizes
        the parameters and keeps the best-scoring solution.
        """
        if algorithm not in ("hard", "soft"):
            raise ModelError(f"unknown algorithm {algorithm!r}")
        if n_restarts < 1:
            raise ModelError("n_restarts must be >= 1")
        if n_restarts > 1:
            rng = restart_rng or np.random.default_rng(0)
            best_score = -np.inf
            best_state: tuple | None = None
            best_trace: list[float] = []
            for _ in range(n_restarts):
                self._randomize(rng)
                trace = self.fit(
                    sequences, max_iter=max_iter, tol=tol,
                    pseudocount=pseudocount, n_restarts=1,
                    algorithm=algorithm,
                )
                if trace[-1] > best_score:
                    best_score = trace[-1]
                    best_trace = trace
                    best_state = (
                        self.initial.copy(),
                        self.transition.copy(),
                        self.emission.copy(),
                        copy.deepcopy(self.durations),
                    )
            assert best_state is not None
            self.initial, self.transition, self.emission, self.durations = best_state
            self._fitted = True
            return best_trace

        observations = [self._check_sequence(seq) for seq in sequences]
        if not observations:
            raise ModelError("need at least one training sequence")
        if algorithm == "soft":
            return self._fit_soft(observations, max_iter, tol, pseudocount)
        trace: list[float] = []
        for _ in range(max_iter):
            init_acc = np.zeros(self.n_states)
            trans_acc = np.zeros((self.n_states, self.n_states))
            emit_acc = np.zeros((self.n_states, self.n_symbols))
            dur_acc = np.zeros((self.n_states, self.max_duration))
            total_score = 0.0
            for obs in observations:
                segments = self.viterbi(obs)
                total_score += self._segmentation_score(obs, segments)
                init_acc[segments[0].state] += 1.0
                for prev, cur in zip(segments, segments[1:]):
                    trans_acc[prev.state, cur.state] += 1.0
                for seg in segments:
                    dur_acc[seg.state, seg.duration - 1] += 1.0
                    for symbol in obs[seg.start : seg.end + 1]:
                        emit_acc[seg.state, symbol] += 1.0
            self.initial = (init_acc + pseudocount) / (
                init_acc.sum() + pseudocount * self.n_states
            )
            trans = trans_acc + pseudocount
            if self.n_states > 1:
                np.fill_diagonal(trans, 0.0)
            self.transition = _normalize_rows(trans)
            self.emission = _normalize_rows(emit_acc + pseudocount)
            for j, dist in enumerate(self.durations):
                dist.fit(dur_acc[j])
            trace.append(total_score)
            if len(trace) >= 2 and abs(trace[-1] - trace[-2]) <= tol * (
                abs(trace[-2]) + _EPS
            ):
                break
        self._fitted = True
        return trace

    def _fit_soft(
        self,
        observations: list[np.ndarray],
        max_iter: int,
        tol: float,
        pseudocount: float,
    ) -> list[float]:
        """Full Baum-Welch for the explicit-duration HSMM.

        The E-step enumerates candidate segments ``(state j, start s,
        duration d)`` and weighs each by its posterior probability::

            w(j, s, d) = P(segment | obs)
                       = in(s, j) * p_j(d) * emis(s..s+d-1, j) * beta[s+d-1, j] / L

        where ``in(s, j)`` is the probability mass of entering state ``j``
        at slot ``s`` (initial law at s=0, alpha-weighted transitions
        otherwise).  All segment statistics (durations, emissions,
        transitions, initial law) are the corresponding weighted sums.
        """
        trace: list[float] = []
        for _ in range(max_iter):
            init_acc = np.full(self.n_states, pseudocount)
            trans_acc = np.full((self.n_states, self.n_states), pseudocount)
            if self.n_states > 1:
                np.fill_diagonal(trans_acc, 0.0)
            emit_acc = np.full((self.n_states, self.n_symbols), pseudocount)
            dur_acc = np.full((self.n_states, self.max_duration), pseudocount)
            total_ll = 0.0
            log_pi, log_a, log_b, log_d = self._log_params()
            for obs in observations:
                n = obs.size
                cum = self._segment_emissions(obs, log_b)
                alpha = self._forward_table(obs)
                beta = self._backward_table(obs)
                log_likelihood = float(logsumexp(alpha[-1]))
                total_ll += log_likelihood
                # in_log[s, j]: log-mass of entering state j at slot s.
                in_log = np.full((n, self.n_states), -np.inf)
                in_log[0] = log_pi
                for s in range(1, n):
                    in_log[s] = logsumexp(alpha[s - 1][:, None] + log_a, axis=0)
                # Segment posteriors.
                for s in range(n):
                    d_max = min(self.max_duration, n - s)
                    for d in range(1, d_max + 1):
                        end = s + d - 1
                        emis = cum[end] - (cum[s - 1] if s > 0 else 0.0)
                        log_w = (
                            in_log[s]
                            + log_d[:, d - 1]
                            + emis
                            + beta[end]
                            - log_likelihood
                        )
                        w = np.exp(np.clip(log_w, -700.0, 50.0))
                        if not w.any():
                            continue
                        dur_acc[:, d - 1] += w
                        if s == 0:
                            init_acc += w
                        for symbol in obs[s : end + 1]:
                            emit_acc[:, symbol] += w
                # Transition posteriors at each boundary t -> t+1.
                for t in range(n - 1):
                    # eta[j'] = log P(segment of j' starts at t+1, rest follows).
                    d_max = min(self.max_duration, n - 1 - t)
                    terms = np.full((d_max, self.n_states), -np.inf)
                    for d in range(1, d_max + 1):
                        end = t + d
                        terms[d - 1] = (
                            log_d[:, d - 1] + (cum[end] - cum[t]) + beta[end]
                        )
                    eta = logsumexp(terms, axis=0)
                    log_xi = (
                        alpha[t][:, None] + log_a + eta[None, :] - log_likelihood
                    )
                    trans_acc += np.exp(np.clip(log_xi, -700.0, 50.0))
            # M-step.
            self.initial = init_acc / init_acc.sum()
            if self.n_states > 1:
                np.fill_diagonal(trans_acc, 0.0)
            self.transition = _normalize_rows(trans_acc)
            self.emission = _normalize_rows(emit_acc)
            for j, dist in enumerate(self.durations):
                dist.fit(dur_acc[j])
            trace.append(total_ll)
            if len(trace) >= 2 and abs(trace[-1] - trace[-2]) <= tol * (
                abs(trace[-2]) + _EPS
            ):
                break
        self._fitted = True
        return trace

    def _randomize(self, rng: np.random.Generator) -> None:
        """Re-randomize all parameters (used between EM restarts).

        Emissions are drawn sharply (Dirichlet with small concentration)
        so restarts explore genuinely different state/symbol assignments,
        and durations are reset to fresh factory instances -- otherwise all
        restarts inherit the previous run's duration model and land in the
        same basin.
        """
        self.initial = np.full(self.n_states, 1.0 / self.n_states)
        transition = rng.random((self.n_states, self.n_states)) + 0.5
        if self.n_states > 1:
            np.fill_diagonal(transition, 0.0)
        self.transition = _normalize_rows(transition)
        self.emission = rng.dirichlet(
            np.full(self.n_symbols, 0.5), size=self.n_states
        )
        self.durations = [
            self._duration_factory(self.max_duration) for _ in range(self.n_states)
        ]

    def _segmentation_score(self, obs: np.ndarray, segments: list[Segment]) -> float:
        log_pi, log_a, log_b, log_d = self._log_params()
        score = log_pi[segments[0].state]
        for prev, cur in zip(segments, segments[1:]):
            score += log_a[prev.state, cur.state]
        for seg in segments:
            score += log_d[seg.state, seg.duration - 1]
            score += log_b[seg.state, obs[seg.start : seg.end + 1]].sum()
        return float(score)

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def require_fitted(self) -> None:
        """Raise :class:`NotFittedError` if :meth:`fit` has not run."""
        if not self._fitted:
            raise NotFittedError("HSMM has not been fitted")

    def clone(self) -> "HiddenSemiMarkovModel":
        """Deep copy (useful for restarts and model comparison)."""
        return copy.deepcopy(self)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def sample(
        self, length: int, rng: np.random.Generator
    ) -> tuple[list[int], list[int]]:
        """Sample ``(states_per_slot, observations)`` of exactly ``length``."""
        if length < 1:
            raise ModelError("length must be >= 1")
        states: list[int] = []
        observations: list[int] = []
        state = int(rng.choice(self.n_states, p=self.initial))
        while len(observations) < length:
            duration = self.durations[state].sample(rng)
            for _ in range(duration):
                if len(observations) >= length:
                    break
                states.append(state)
                observations.append(
                    int(rng.choice(self.n_symbols, p=self.emission[state]))
                )
            state = int(rng.choice(self.n_states, p=self.transition[state]))
        return states, observations

    def __repr__(self) -> str:
        return (
            f"HiddenSemiMarkovModel(n_states={self.n_states}, "
            f"n_symbols={self.n_symbols}, max_duration={self.max_duration})"
        )
